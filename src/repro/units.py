"""Unit helpers used across the library.

Conventions
-----------
* **Time** is measured in seconds, stored as ``float``.
* **Data sizes** are measured in bytes, stored as ``int``.
* **Rates** are bytes per second (``float``).

The helpers below keep experiment definitions readable ("5 GB", "128 MB")
while the internal representation stays in base units.
"""

from __future__ import annotations

from .exceptions import ValidationError

#: Number of bytes in one kibibyte / mebibyte / gibibyte / tebibyte.
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

#: Convenience aliases matching the loose "MB"/"GB" used in the paper.
MB = MiB
GB = GiB

#: Number of seconds in common time spans.
MILLISECOND = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0

_SIZE_SUFFIXES = {
    "b": 1,
    "kb": KiB,
    "kib": KiB,
    "mb": MiB,
    "mib": MiB,
    "gb": GiB,
    "gib": GiB,
    "tb": TiB,
    "tib": TiB,
}


def megabytes(value: float) -> int:
    """Return ``value`` mebibytes expressed in bytes."""
    return int(round(value * MiB))


def gigabytes(value: float) -> int:
    """Return ``value`` gibibytes expressed in bytes."""
    return int(round(value * GiB))


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable data size into a positive number of bytes.

    Accepts an ``int``/``float`` (interpreted as bytes) or a string such as
    ``"128MB"``, ``"5 GB"``, ``"64 MiB"``, ``"1.5GB"`` (case-insensitive,
    optional space, fractional values allowed).

    Raises
    ------
    ValidationError
        If the text cannot be interpreted as a data size, or the size is not
        strictly positive (a zero-byte input or block makes no scenario
        well-defined).
    """

    def _positive_bytes(num_bytes: int, original) -> int:
        if num_bytes <= 0:
            raise ValidationError(f"data size must be positive, got {original!r}")
        return num_bytes

    if isinstance(text, (int, float)):
        return _positive_bytes(int(text), text)
    stripped = text.strip().lower().replace(" ", "")
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if stripped.endswith(suffix):
            number_part = stripped[: -len(suffix)]
            try:
                number = float(number_part)
            except ValueError as exc:
                raise ValidationError(f"cannot parse data size {text!r}") from exc
            return _positive_bytes(int(round(number * _SIZE_SUFFIXES[suffix])), text)
    try:
        return _positive_bytes(int(float(stripped)), text)
    except ValueError as exc:
        raise ValidationError(f"cannot parse data size {text!r}") from exc


def format_size(num_bytes: int) -> str:
    """Format a byte count using the largest suffix that keeps value >= 1."""
    if num_bytes < 0:
        raise ValidationError(f"data size must be non-negative, got {num_bytes!r}")
    for suffix, factor in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if num_bytes >= factor:
            return f"{num_bytes / factor:.2f} {suffix}"
    return f"{num_bytes} B"


def format_seconds(seconds: float) -> str:
    """Format a duration in seconds as a short human-readable string."""
    if seconds < 0:
        raise ValidationError(f"duration must be non-negative, got {seconds!r}")
    if seconds < 1.0:
        return f"{seconds * 1000:.1f} ms"
    if seconds < MINUTE:
        return f"{seconds:.2f} s"
    if seconds < HOUR:
        minutes, rest = divmod(seconds, MINUTE)
        return f"{int(minutes)} min {rest:.0f} s"
    hours, rest = divmod(seconds, HOUR)
    minutes = rest / MINUTE
    return f"{int(hours)} h {minutes:.0f} min"
