"""Static MapReduce performance models from related work (paper Section 2.1).

These models ignore queueing and synchronisation delays but are important for
two reasons:

* **Herodotou's phase-level cost model** is the initialisation source the
  paper recommends for the modified-MVA loop (Section 4.2.1, "obtaining from
  the existing static cost models ... leads to faster algorithm convergence");
* **ARIA** (Verma et al.) and **Vianna et al.'s Hadoop 1.x model** are the
  baselines the paper positions itself against; the Vianna model in
  particular is the reference whose ~15 % error the paper improves to
  11–13.5 %.
"""

from .herodotou import (
    HadoopEnvironment,
    HerodotouJobEstimate,
    HerodotouJobModel,
    MapPhaseCosts,
    ReducePhaseCosts,
    WordcountStatistics,
)
from .aria import AriaBounds, AriaJobProfile, AriaModel
from .vianna import ViannaHadoop1Model, ViannaPrediction

__all__ = [
    "HadoopEnvironment",
    "HerodotouJobEstimate",
    "HerodotouJobModel",
    "MapPhaseCosts",
    "ReducePhaseCosts",
    "WordcountStatistics",
    "AriaBounds",
    "AriaJobProfile",
    "AriaModel",
    "ViannaHadoop1Model",
    "ViannaPrediction",
]
