"""Reduce-task phase costs (shuffle, merge, reduce, write).

Simplified but structurally faithful version of Herodotou's reduce-task
model.  The shuffle phase moves the reducer's share of every map output over
the network; the merge phase performs the multi-pass on-disk merge of the
fetched segments; the reduce phase applies the user reduce function; the
write phase writes the final output to HDFS with replication.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .parameters import CostStatistics, DataflowStatistics


@dataclass(frozen=True)
class ReducePhaseCosts:
    """Per-phase costs (seconds) of one reduce task."""

    shuffle: float
    merge: float
    reduce: float
    write: float
    startup: float

    @property
    def total(self) -> float:
        """Total reduce task execution time."""
        return self.shuffle + self.merge + self.reduce + self.write + self.startup

    @property
    def shuffle_sort(self) -> float:
        """Cost of the paper's *shuffle-sort* subtask (shuffle + partial sorts)."""
        return self.shuffle

    @property
    def final_merge(self) -> float:
        """Cost of the paper's *merge* subtask (final sort + reduce + write)."""
        return self.merge + self.reduce + self.write

    def as_dict(self) -> dict[str, float]:
        """Phase-name → cost mapping (useful for reports)."""
        return {
            "shuffle": self.shuffle,
            "merge": self.merge,
            "reduce": self.reduce,
            "write": self.write,
            "startup": self.startup,
            "total": self.total,
        }


def estimate_reduce_phases(
    dataflow: DataflowStatistics,
    costs: CostStatistics,
    remote_fraction: float = 1.0,
) -> ReducePhaseCosts:
    """Estimate the phase costs of one reduce task.

    Parameters
    ----------
    dataflow / costs:
        Statistics of the job and the environment.
    remote_fraction:
        Fraction of the reduce input that must be fetched over the network
        (``(n - 1) / n`` for a uniform placement over ``n`` nodes; 1.0 is the
        conservative default the static model uses when the cluster size is
        unknown).
    """
    reduce_input = float(dataflow.reduce_input_bytes)
    reduce_output = float(dataflow.reduce_output_bytes)

    shuffle_network = reduce_input * remote_fraction * costs.network_cost
    # The fetched segments are spilled to local disk as they arrive.
    shuffle_disk = reduce_input * costs.local_io_cost
    shuffle_cost = shuffle_network + shuffle_disk

    # Multi-pass merge: one full read+write pass per merge level.
    merge_passes = max(1, math.ceil(math.log2(max(2.0, dataflow.num_maps))) - 3)
    merge_cost = reduce_input * merge_passes * 2.0 * costs.local_io_cost

    reduce_cost = reduce_input * costs.reduce_cpu_cost
    write_cost = reduce_output * costs.hdfs_write_cost * dataflow.output_replication

    return ReducePhaseCosts(
        shuffle=shuffle_cost,
        merge=merge_cost,
        reduce=reduce_cost,
        write=write_cost,
        startup=costs.task_startup_seconds,
    )
