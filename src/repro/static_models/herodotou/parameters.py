"""Dataflow and cost statistics for the Herodotou phase model.

Herodotou's model is driven by two groups of parameters:

* **dataflow statistics** — how many bytes flow through each phase
  (selectivities, split sizes, number of reducers);
* **cost statistics** — how many seconds it takes to push one byte through
  each resource (HDFS read/write, local disk, network, and the CPU cost of
  the map / reduce / combine / sort functions).

:class:`HadoopEnvironment` derives the I/O cost statistics from a
:class:`~repro.config.NodeSpec`, so the static model and the simulator agree
on the hardware; :class:`WordcountStatistics` bundles the dataflow and CPU
statistics of the WordCount-like job used in the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...config import JobConfig, NodeSpec
from ...exceptions import ConfigurationError
from ...hadoop.job import JobResourceProfile
from ...units import MiB


@dataclass(frozen=True)
class DataflowStatistics:
    """Byte-level dataflow of one MapReduce job."""

    input_bytes: int
    split_bytes: int
    num_maps: int
    num_reduces: int
    #: Map selectivity: map-output bytes per map-input byte.
    map_output_ratio: float
    #: Reduce selectivity: reduce-output bytes per reduce-input byte.
    reduce_output_ratio: float
    #: In-memory sort buffer of a map task (bytes); spills happen above this.
    sort_buffer_bytes: int = 100 * MiB
    #: HDFS replication factor of the job output.
    output_replication: int = 3

    def __post_init__(self) -> None:
        if self.input_bytes <= 0 or self.split_bytes <= 0:
            raise ConfigurationError("input and split sizes must be positive")
        if self.num_maps <= 0 or self.num_reduces <= 0:
            raise ConfigurationError("task counts must be positive")
        if self.map_output_ratio < 0 or self.reduce_output_ratio < 0:
            raise ConfigurationError("selectivities must be non-negative")
        if self.sort_buffer_bytes <= 0:
            raise ConfigurationError("sort buffer must be positive")
        if self.output_replication <= 0:
            raise ConfigurationError("output replication must be positive")

    @property
    def map_output_bytes(self) -> float:
        """Intermediate bytes produced by one map task."""
        return self.split_bytes * self.map_output_ratio

    @property
    def total_map_output_bytes(self) -> float:
        """Intermediate bytes produced by all map tasks."""
        return self.map_output_bytes * self.num_maps

    @property
    def reduce_input_bytes(self) -> float:
        """Intermediate bytes consumed by one reduce task."""
        return self.total_map_output_bytes / self.num_reduces

    @property
    def reduce_output_bytes(self) -> float:
        """Output bytes written by one reduce task."""
        return self.reduce_input_bytes * self.reduce_output_ratio

    @classmethod
    def from_job_config(cls, job_config: JobConfig) -> "DataflowStatistics":
        """Build dataflow statistics from a :class:`~repro.config.JobConfig`."""
        return cls(
            input_bytes=job_config.input_size_bytes,
            split_bytes=job_config.split_size_bytes,
            num_maps=job_config.num_maps,
            num_reduces=job_config.num_reduces,
            map_output_ratio=job_config.map_output_ratio,
            reduce_output_ratio=job_config.reduce_output_ratio,
        )


@dataclass(frozen=True)
class CostStatistics:
    """Per-byte cost statistics (seconds/byte) plus fixed per-task overheads."""

    hdfs_read_cost: float
    hdfs_write_cost: float
    local_io_cost: float
    network_cost: float
    map_cpu_cost: float
    reduce_cpu_cost: float
    sort_cpu_cost: float
    #: Fixed per-task overhead (container + JVM start-up), seconds.
    task_startup_seconds: float = 2.0

    def __post_init__(self) -> None:
        for name in (
            "hdfs_read_cost",
            "hdfs_write_cost",
            "local_io_cost",
            "network_cost",
            "map_cpu_cost",
            "reduce_cpu_cost",
            "sort_cpu_cost",
            "task_startup_seconds",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class HadoopEnvironment:
    """Cluster-side inputs of the static model (slots + cost statistics)."""

    num_nodes: int
    map_slots_per_node: int
    reduce_slots_per_node: int
    costs: CostStatistics

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if self.map_slots_per_node <= 0 or self.reduce_slots_per_node <= 0:
            raise ConfigurationError("slot counts must be positive")

    @property
    def total_map_slots(self) -> int:
        """Cluster-wide number of map slots."""
        return self.num_nodes * self.map_slots_per_node

    @property
    def total_reduce_slots(self) -> int:
        """Cluster-wide number of reduce slots."""
        return self.num_nodes * self.reduce_slots_per_node

    @classmethod
    def from_specs(
        cls,
        node: NodeSpec,
        profile: JobResourceProfile,
        num_nodes: int,
        map_slots_per_node: int,
        reduce_slots_per_node: int,
    ) -> "HadoopEnvironment":
        """Derive cost statistics from the same specs the simulator uses.

        I/O costs are the reciprocal of the node bandwidths; CPU costs are the
        per-MiB CPU times of the job profile divided by the node speed.
        """
        costs = CostStatistics(
            hdfs_read_cost=1.0 / node.disk_bandwidth,
            hdfs_write_cost=1.0 / node.disk_bandwidth,
            local_io_cost=1.0 / (node.disk_bandwidth * node.disk_count),
            network_cost=1.0 / node.network_bandwidth,
            map_cpu_cost=profile.map_cpu_seconds_per_mib / MiB / node.cpu_speed_factor,
            reduce_cpu_cost=profile.reduce_cpu_seconds_per_mib / MiB / node.cpu_speed_factor,
            sort_cpu_cost=0.05 * profile.map_cpu_seconds_per_mib / MiB / node.cpu_speed_factor,
            task_startup_seconds=profile.startup_cpu_seconds,
        )
        return cls(
            num_nodes=num_nodes,
            map_slots_per_node=map_slots_per_node,
            reduce_slots_per_node=reduce_slots_per_node,
            costs=costs,
        )


def WordcountStatistics(job_config: JobConfig) -> DataflowStatistics:
    """Dataflow statistics of the WordCount-like job used in the evaluation.

    WordCount is "map-and-reduce-input heavy" (paper Section 5, citing Shi et
    al.): it reads a large input and produces sizeable intermediate data.  The
    defaults of :class:`~repro.config.JobConfig` already encode its
    selectivities, so this is a thin naming wrapper kept for readability in
    experiment code.
    """
    return DataflowStatistics.from_job_config(job_config)
