"""Herodotou-style phase-level cost model (Hadoop 1.x).

Herodotou's technical report "Hadoop Performance Models" describes the
execution of a MapReduce job at the granularity of task phases:

* map task: **read, map, collect, spill, merge**;
* reduce task: **shuffle, merge, reduce, write**;

and estimates the job execution time as the sum of all phase costs, given a
static number of map/reduce slots per node (paper Section 2.1).

The paper uses this model in two ways, and so do we:

* as the **initialisation** of the modified MVA loop (Section 4.2.1): assume
  all map tasks run first using all available resources, then all reduce
  tasks — which yields initial per-task response times;
* as a **static baseline** whose error against the simulator can be compared
  with the dynamic model's error.
"""

from .parameters import CostStatistics, DataflowStatistics, HadoopEnvironment, WordcountStatistics
from .map_model import MapPhaseCosts, estimate_map_phases
from .reduce_model import ReducePhaseCosts, estimate_reduce_phases
from .job_model import HerodotouJobEstimate, HerodotouJobModel
from .batch import (
    HerodotouBatchEstimate,
    batch_estimate,
    batch_map_task_seconds,
    batch_reduce_task_seconds,
)

__all__ = [
    "CostStatistics",
    "DataflowStatistics",
    "HadoopEnvironment",
    "WordcountStatistics",
    "MapPhaseCosts",
    "estimate_map_phases",
    "ReducePhaseCosts",
    "estimate_reduce_phases",
    "HerodotouJobEstimate",
    "HerodotouJobModel",
    "HerodotouBatchEstimate",
    "batch_estimate",
    "batch_map_task_seconds",
    "batch_reduce_task_seconds",
]
