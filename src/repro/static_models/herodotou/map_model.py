"""Map-task phase costs (read, map, collect, spill, merge).

Simplified but structurally faithful version of Herodotou's map-task model:
each phase cost is the product of the bytes flowing through the phase and the
corresponding per-byte cost statistic, with the spill/merge phases accounting
for multiple passes when the map output exceeds the in-memory sort buffer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .parameters import CostStatistics, DataflowStatistics


@dataclass(frozen=True)
class MapPhaseCosts:
    """Per-phase costs (seconds) of one map task."""

    read: float
    map: float
    collect: float
    spill: float
    merge: float
    startup: float

    @property
    def total(self) -> float:
        """Total map task execution time."""
        return self.read + self.map + self.collect + self.spill + self.merge + self.startup

    def as_dict(self) -> dict[str, float]:
        """Phase-name → cost mapping (useful for reports)."""
        return {
            "read": self.read,
            "map": self.map,
            "collect": self.collect,
            "spill": self.spill,
            "merge": self.merge,
            "startup": self.startup,
            "total": self.total,
        }


def estimate_map_phases(
    dataflow: DataflowStatistics,
    costs: CostStatistics,
) -> MapPhaseCosts:
    """Estimate the phase costs of one map task.

    Phases:

    * **read** — read the input split from HDFS;
    * **map** — apply the user map function to every input byte;
    * **collect** — serialise map output into the sort buffer (CPU);
    * **spill** — sort and write spill files to local disk (one spill per
      buffer fill);
    * **merge** — merge spill files into the final map output file (only when
      more than one spill was produced).
    """
    split = float(dataflow.split_bytes)
    output = float(dataflow.map_output_bytes)

    read_cost = split * costs.hdfs_read_cost
    map_cost = split * costs.map_cpu_cost
    collect_cost = output * costs.sort_cpu_cost

    num_spills = max(1, math.ceil(output / dataflow.sort_buffer_bytes))
    # Each spill sorts its buffer (CPU, n log n approximated linearly with a
    # log factor on the spill count) and writes it to local disk.
    sort_factor = 1.0 + math.log2(max(2.0, output / max(dataflow.sort_buffer_bytes, 1)))
    spill_cost = output * (costs.local_io_cost + costs.sort_cpu_cost * sort_factor)

    if num_spills > 1:
        # One merge pass reads and re-writes the whole map output.
        merge_cost = output * (2.0 * costs.local_io_cost + costs.sort_cpu_cost)
    else:
        merge_cost = 0.0

    return MapPhaseCosts(
        read=read_cost,
        map=map_cost,
        collect=collect_cost,
        spill=spill_cost,
        merge=merge_cost,
        startup=costs.task_startup_seconds,
    )
