"""Whole-job estimate from the Herodotou phase model.

With the slot-based resource model of Hadoop 1.x, map tasks execute in waves
over the available map slots and reduce tasks in waves over the reduce slots;
the overall job execution time is "simply the sum of the costs from all map
and reduce phases" (paper Section 2.1), i.e. there is no modelling of
contention or of the map/shuffle pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .map_model import MapPhaseCosts, estimate_map_phases
from .parameters import DataflowStatistics, HadoopEnvironment
from .reduce_model import ReducePhaseCosts, estimate_reduce_phases


@dataclass(frozen=True)
class HerodotouJobEstimate:
    """Static estimate of one job's execution."""

    map_phases: MapPhaseCosts
    reduce_phases: ReducePhaseCosts
    map_waves: int
    reduce_waves: int
    map_stage_seconds: float
    reduce_stage_seconds: float

    @property
    def total_seconds(self) -> float:
        """Estimated job execution time (map stage + reduce stage)."""
        return self.map_stage_seconds + self.reduce_stage_seconds


class HerodotouJobModel:
    """Static job-level model built from dataflow statistics and an environment."""

    def __init__(self, environment: HadoopEnvironment) -> None:
        self.environment = environment

    def estimate_map_task_seconds(self, dataflow: DataflowStatistics) -> float:
        """Execution time of a single map task."""
        return estimate_map_phases(dataflow, self.environment.costs).total

    def estimate_reduce_task_seconds(self, dataflow: DataflowStatistics) -> float:
        """Execution time of a single reduce task."""
        remote_fraction = (
            (self.environment.num_nodes - 1) / self.environment.num_nodes
            if self.environment.num_nodes > 1
            else 0.0
        )
        return estimate_reduce_phases(
            dataflow, self.environment.costs, remote_fraction=remote_fraction
        ).total

    def estimate(self, dataflow: DataflowStatistics) -> HerodotouJobEstimate:
        """Estimate the full job execution time."""
        map_phases = estimate_map_phases(dataflow, self.environment.costs)
        remote_fraction = (
            (self.environment.num_nodes - 1) / self.environment.num_nodes
            if self.environment.num_nodes > 1
            else 0.0
        )
        reduce_phases = estimate_reduce_phases(
            dataflow, self.environment.costs, remote_fraction=remote_fraction
        )
        map_waves = math.ceil(dataflow.num_maps / self.environment.total_map_slots)
        reduce_waves = math.ceil(
            dataflow.num_reduces / self.environment.total_reduce_slots
        )
        return HerodotouJobEstimate(
            map_phases=map_phases,
            reduce_phases=reduce_phases,
            map_waves=map_waves,
            reduce_waves=reduce_waves,
            map_stage_seconds=map_waves * map_phases.total,
            reduce_stage_seconds=reduce_waves * reduce_phases.total,
        )
