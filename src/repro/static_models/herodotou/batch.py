"""Vectorised Herodotou phase costs — the batched twin of the scalar model.

:func:`~repro.static_models.herodotou.map_model.estimate_map_phases` and
:func:`~repro.static_models.herodotou.reduce_model.estimate_reduce_phases`
evaluate one job at a time; a parameter sweep re-runs the same closed-form
arithmetic once per grid point.  The functions here take stacked NumPy arrays
(one element per grid point) and mirror the scalar formulas operation for
operation, so a whole grid evaluates in a handful of array expressions and
the results are bit-equal to the scalar path (pinned by the batch-equivalence
tests).

Cost statistics are passed as arrays too: a grid may mix workloads or
clusters, so every per-byte cost can vary per point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class HerodotouBatchEstimate:
    """Stage/total second arrays of one vectorised grid evaluation."""

    map_task_seconds: np.ndarray
    reduce_task_seconds: np.ndarray
    map_waves: np.ndarray
    reduce_waves: np.ndarray

    @property
    def map_stage_seconds(self) -> np.ndarray:
        """Map-stage seconds (waves × per-task cost) per grid point."""
        return self.map_waves * self.map_task_seconds

    @property
    def reduce_stage_seconds(self) -> np.ndarray:
        """Reduce-stage seconds (waves × per-task cost) per grid point."""
        return self.reduce_waves * self.reduce_task_seconds

    @property
    def total_seconds(self) -> np.ndarray:
        """Estimated job execution time per grid point."""
        return self.map_stage_seconds + self.reduce_stage_seconds


def batch_map_task_seconds(
    split_bytes: np.ndarray,
    map_output_bytes: np.ndarray,
    sort_buffer_bytes: np.ndarray,
    hdfs_read_cost: np.ndarray,
    map_cpu_cost: np.ndarray,
    sort_cpu_cost: np.ndarray,
    local_io_cost: np.ndarray,
    task_startup_seconds: np.ndarray,
) -> np.ndarray:
    """Per-map-task seconds; vectorised mirror of ``estimate_map_phases``."""
    split = split_bytes.astype(float)
    output = map_output_bytes.astype(float)
    read_cost = split * hdfs_read_cost
    map_cost = split * map_cpu_cost
    collect_cost = output * sort_cpu_cost
    num_spills = np.maximum(1, np.ceil(output / sort_buffer_bytes))
    sort_factor = 1.0 + np.log2(
        np.maximum(2.0, output / np.maximum(sort_buffer_bytes, 1))
    )
    spill_cost = output * (local_io_cost + sort_cpu_cost * sort_factor)
    merge_cost = np.where(
        num_spills > 1, output * (2.0 * local_io_cost + sort_cpu_cost), 0.0
    )
    return (
        read_cost + map_cost + collect_cost + spill_cost + merge_cost
        + task_startup_seconds
    )


def batch_reduce_task_seconds(
    reduce_input_bytes: np.ndarray,
    reduce_output_bytes: np.ndarray,
    num_maps: np.ndarray,
    output_replication: np.ndarray,
    remote_fraction: np.ndarray,
    hdfs_write_cost: np.ndarray,
    local_io_cost: np.ndarray,
    network_cost: np.ndarray,
    reduce_cpu_cost: np.ndarray,
    task_startup_seconds: np.ndarray,
) -> np.ndarray:
    """Per-reduce-task seconds; vectorised mirror of ``estimate_reduce_phases``."""
    reduce_input = reduce_input_bytes.astype(float)
    reduce_output = reduce_output_bytes.astype(float)
    shuffle_cost = (
        reduce_input * remote_fraction * network_cost + reduce_input * local_io_cost
    )
    merge_passes = np.maximum(
        1, np.ceil(np.log2(np.maximum(2.0, num_maps.astype(float)))) - 3
    )
    merge_cost = reduce_input * merge_passes * 2.0 * local_io_cost
    reduce_cost = reduce_input * reduce_cpu_cost
    write_cost = reduce_output * hdfs_write_cost * output_replication
    return shuffle_cost + merge_cost + reduce_cost + write_cost + task_startup_seconds


def batch_estimate(
    split_bytes: np.ndarray,
    map_output_bytes: np.ndarray,
    sort_buffer_bytes: np.ndarray,
    reduce_input_bytes: np.ndarray,
    reduce_output_bytes: np.ndarray,
    num_maps: np.ndarray,
    num_reduces: np.ndarray,
    output_replication: np.ndarray,
    remote_fraction: np.ndarray,
    total_map_slots: np.ndarray,
    total_reduce_slots: np.ndarray,
    hdfs_read_cost: np.ndarray,
    hdfs_write_cost: np.ndarray,
    local_io_cost: np.ndarray,
    network_cost: np.ndarray,
    map_cpu_cost: np.ndarray,
    reduce_cpu_cost: np.ndarray,
    sort_cpu_cost: np.ndarray,
    task_startup_seconds: np.ndarray,
) -> HerodotouBatchEstimate:
    """Whole-job estimates over a grid; mirror of ``HerodotouJobModel.estimate``."""
    map_task = batch_map_task_seconds(
        split_bytes,
        map_output_bytes,
        sort_buffer_bytes,
        hdfs_read_cost,
        map_cpu_cost,
        sort_cpu_cost,
        local_io_cost,
        task_startup_seconds,
    )
    reduce_task = batch_reduce_task_seconds(
        reduce_input_bytes,
        reduce_output_bytes,
        num_maps,
        output_replication,
        remote_fraction,
        hdfs_write_cost,
        local_io_cost,
        network_cost,
        reduce_cpu_cost,
        task_startup_seconds,
    )
    map_waves = np.ceil(num_maps / total_map_slots)
    reduce_waves = np.ceil(num_reduces / total_reduce_slots)
    return HerodotouBatchEstimate(
        map_task_seconds=map_task,
        reduce_task_seconds=reduce_task,
        map_waves=map_waves,
        reduce_waves=reduce_waves,
    )
