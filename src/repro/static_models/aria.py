"""ARIA: makespan bounds and deadline-driven resource provisioning.

Verma, Cherkasova & Campbell's ARIA framework (paper Section 2.1) estimates
the completion time of a MapReduce job from its *job profile* (average and
maximum task durations for the map, shuffle and reduce stages) and the number
of allocated map/reduce slots, using the makespan theorem for greedy task
assignment::

    T_low  = n_tasks * avg_duration / slots
    T_up   = (n_tasks - 1) * avg_duration / slots + max_duration
    T_avg  = (T_up + T_low) / 2

ARIA also inverts these bounds to answer "how many slots do I need to finish
by deadline D", which we expose as :meth:`AriaModel.slots_for_deadline` and
use in the deadline-provisioning example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, ModelError


@dataclass(frozen=True)
class AriaJobProfile:
    """Stage-level job profile extracted from past executions."""

    num_maps: int
    num_reduces: int
    avg_map_seconds: float
    max_map_seconds: float
    avg_shuffle_seconds: float
    max_shuffle_seconds: float
    avg_reduce_seconds: float
    max_reduce_seconds: float

    def __post_init__(self) -> None:
        if self.num_maps <= 0 or self.num_reduces <= 0:
            raise ConfigurationError("task counts must be positive")
        pairs = (
            (self.avg_map_seconds, self.max_map_seconds),
            (self.avg_shuffle_seconds, self.max_shuffle_seconds),
            (self.avg_reduce_seconds, self.max_reduce_seconds),
        )
        for avg, maximum in pairs:
            if avg < 0 or maximum < 0:
                raise ConfigurationError("durations must be non-negative")
            if maximum + 1e-9 < avg:
                raise ConfigurationError("max duration cannot be below the average")


@dataclass(frozen=True)
class AriaBounds:
    """Lower/upper/average completion-time estimates."""

    lower_seconds: float
    upper_seconds: float

    @property
    def average_seconds(self) -> float:
        """The T_avg estimate ARIA recommends for deadline planning."""
        return 0.5 * (self.lower_seconds + self.upper_seconds)


def _stage_bounds(num_tasks: int, avg: float, maximum: float, slots: int) -> AriaBounds:
    """Makespan-theorem bounds for one stage executed on ``slots`` slots."""
    if slots <= 0:
        raise ModelError("slots must be positive")
    lower = num_tasks * avg / slots
    upper = (num_tasks - 1) * avg / slots + maximum
    return AriaBounds(lower_seconds=lower, upper_seconds=upper)


def batch_stage_bounds(
    num_tasks: np.ndarray,
    avg: np.ndarray,
    maximum: np.ndarray,
    slots: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`_stage_bounds`: (lower, upper) arrays over a grid.

    Element ``i`` applies the makespan theorem to grid point ``i`` with the
    exact arithmetic of the scalar path, so the batch values are bit-equal to
    per-point :meth:`AriaModel.job_bounds` calls.
    """
    if np.any(slots <= 0):
        raise ModelError("slots must be positive")
    lower = num_tasks * avg / slots
    upper = (num_tasks - 1) * avg / slots + maximum
    return lower, upper


class AriaModel:
    """ARIA completion-time bounds and slot provisioning."""

    def __init__(self, profile: AriaJobProfile) -> None:
        self.profile = profile

    # -- completion time --------------------------------------------------------

    def map_stage_bounds(self, map_slots: int) -> AriaBounds:
        """Bounds for the map stage on ``map_slots`` slots."""
        return _stage_bounds(
            self.profile.num_maps,
            self.profile.avg_map_seconds,
            self.profile.max_map_seconds,
            map_slots,
        )

    def shuffle_stage_bounds(self, reduce_slots: int) -> AriaBounds:
        """Bounds for the shuffle stage on ``reduce_slots`` slots."""
        return _stage_bounds(
            self.profile.num_reduces,
            self.profile.avg_shuffle_seconds,
            self.profile.max_shuffle_seconds,
            reduce_slots,
        )

    def reduce_stage_bounds(self, reduce_slots: int) -> AriaBounds:
        """Bounds for the reduce stage on ``reduce_slots`` slots."""
        return _stage_bounds(
            self.profile.num_reduces,
            self.profile.avg_reduce_seconds,
            self.profile.max_reduce_seconds,
            reduce_slots,
        )

    def job_bounds(self, map_slots: int, reduce_slots: int) -> AriaBounds:
        """Bounds for the whole job (map, then shuffle, then reduce stages)."""
        map_bounds = self.map_stage_bounds(map_slots)
        shuffle_bounds = self.shuffle_stage_bounds(reduce_slots)
        reduce_bounds = self.reduce_stage_bounds(reduce_slots)
        return AriaBounds(
            lower_seconds=(
                map_bounds.lower_seconds
                + shuffle_bounds.lower_seconds
                + reduce_bounds.lower_seconds
            ),
            upper_seconds=(
                map_bounds.upper_seconds
                + shuffle_bounds.upper_seconds
                + reduce_bounds.upper_seconds
            ),
        )

    def estimate_seconds(self, map_slots: int, reduce_slots: int) -> float:
        """The T_avg completion-time estimate for a given slot allocation."""
        return self.job_bounds(map_slots, reduce_slots).average_seconds

    # -- provisioning ------------------------------------------------------------

    def slots_for_deadline(
        self,
        deadline_seconds: float,
        max_slots: int = 10_000,
        reduce_slots: int | None = None,
    ) -> tuple[int, int]:
        """Smallest (map_slots, reduce_slots) meeting ``deadline_seconds``.

        A simple sweep over slot counts using the T_avg estimate, mirroring
        ARIA's resource-inference component.  When ``reduce_slots`` is given
        it is kept fixed and only map slots are sized.

        Raises
        ------
        ModelError
            If the deadline cannot be met with ``max_slots`` slots.
        """
        if deadline_seconds <= 0:
            raise ModelError("deadline must be positive")
        reduce_candidates = (
            [reduce_slots]
            if reduce_slots is not None
            else list(range(1, min(self.profile.num_reduces, max_slots) + 1))
        )
        best: tuple[int, int] | None = None
        for reduce_count in reduce_candidates:
            for map_count in range(1, max_slots + 1):
                estimate = self.estimate_seconds(map_count, reduce_count)
                if estimate <= deadline_seconds:
                    candidate = (map_count, reduce_count)
                    if best is None or sum(candidate) < sum(best):
                        best = candidate
                    break
        if best is None:
            raise ModelError(
                f"deadline of {deadline_seconds:.1f}s cannot be met with "
                f"{max_slots} slots"
            )
        return best

    @staticmethod
    def minimum_slots(num_tasks: int, avg: float, maximum: float, deadline: float) -> int:
        """Closed-form lower bound on slots needed for one stage.

        From ``(n - 1) * avg / s + max <= D`` it follows that
        ``s >= (n - 1) * avg / (D - max)``.
        """
        if deadline <= maximum:
            raise ModelError("deadline must exceed the largest task duration")
        return max(1, math.ceil((num_tasks - 1) * avg / (deadline - maximum)))
