"""Vianna et al.'s Hadoop 1.x performance model (the paper's starting point).

Vianna et al. combine a precedence tree with a closed queueing network for
MapReduce on Hadoop 1.x, where every node has a *fixed* number of map and
reduce slots.  The paper adapts that model to YARN's dynamic containers; the
original serves as the baseline whose ~15 % single-job error the new model
improves to 11–13.5 % (paper Section 5.2).

We reuse the same solver machinery (:mod:`repro.core`) with two differences
that characterise the Hadoop 1.x model:

* the per-node concurrency comes from the static slot configuration, not from
  container sizing (``map_slots_per_node`` / ``reduce_slots_per_node``);
* the job response time uses the original fork/join estimate with the full
  harmonic premium (``literal`` fork/join), which is what makes it slightly
  more pessimistic than the Hadoop 2.x model's estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.estimators import EstimatorKind, ForkJoinEstimator
from ..core.mva_solver import ModifiedMVASolver, Residences, SolverTrace
from ..core.parameters import ModelInput, TaskClass
from ..exceptions import ConfigurationError, ModelError


@dataclass(frozen=True)
class ViannaPrediction:
    """Prediction of the Hadoop 1.x baseline model."""

    job_response_time: float
    class_response_times: dict[TaskClass, float]
    iterations: int
    converged: bool


class ViannaHadoop1Model:
    """Slot-based Hadoop 1.x baseline model."""

    def __init__(
        self,
        model_input: ModelInput,
        map_slots_per_node: int = 2,
        reduce_slots_per_node: int = 2,
        epsilon: float = 1e-7,
        max_iterations: int = 60,
        fast_timeline: bool = False,
    ) -> None:
        if map_slots_per_node <= 0 or reduce_slots_per_node <= 0:
            raise ConfigurationError("slot counts must be positive")
        #: The Hadoop 1.x view of the same workload: static slots per node.
        self.model_input = model_input.with_updates(
            max_maps_per_node=map_slots_per_node,
            max_reduces_per_node=reduce_slots_per_node,
        )
        self.map_slots_per_node = map_slots_per_node
        self.reduce_slots_per_node = reduce_slots_per_node
        self._solver = ModifiedMVASolver(
            estimator=ForkJoinEstimator(literal=True),
            epsilon=epsilon,
            max_iterations=max_iterations,
            fast_timeline=fast_timeline,
        )
        self._trace: SolverTrace | None = None

    def predict(
        self, initial_residences: Residences | None = None
    ) -> ViannaPrediction:
        """Estimate the average job response time with the Hadoop 1.x model.

        ``initial_residences`` warm-starts the solver from a neighbouring
        solve's converged state (see :meth:`ModifiedMVASolver.solve`).
        """
        trace = self._solver.solve(
            self.model_input, initial_residences=initial_residences
        )
        self._trace = trace
        return ViannaPrediction(
            job_response_time=trace.job_response_time,
            class_response_times=trace.class_response_times,
            iterations=trace.num_iterations,
            converged=trace.converged,
        )

    @property
    def trace(self) -> SolverTrace:
        """Solver trace of the last :meth:`predict` call."""
        if self._trace is None:
            raise ModelError("no prediction has been computed yet")
        return self._trace

    @property
    def estimator_kind(self) -> EstimatorKind:
        """The baseline uses the (literal) fork/join estimate."""
        return EstimatorKind.FORK_JOIN
