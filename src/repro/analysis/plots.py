"""Minimal ASCII line plots for terminal output.

The paper presents its results as line plots (Figures 10–15); the benches
print a textual table plus an ASCII sketch so the trend (who is above whom,
how the curves fall with more nodes / rise with more jobs) is visible without
a plotting library.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exceptions import ValidationError


def ascii_series_plot(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
) -> str:
    """Render one or more series as a crude ASCII scatter/line plot."""
    if not series:
        raise ValidationError("at least one series is required")
    if width < 10 or height < 4:
        raise ValidationError("plot must be at least 10x4 characters")
    all_values = [value for values in series.values() for value in values]
    if not all_values:
        raise ValidationError("series contain no values")
    minimum = min(all_values)
    maximum = max(all_values)
    if maximum == minimum:
        maximum = minimum + 1.0
    x_min = min(x_values)
    x_max = max(x_values)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]
    markers = "o+x*#@"
    for series_index, (name, values) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        for x_value, y_value in zip(x_values, values):
            column = int(round((x_value - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((y_value - minimum) / (maximum - minimum) * (height - 1)))
            grid[height - 1 - row][column] = marker
    lines = ["".join(row) for row in grid]
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    header = f"y: {minimum:.1f} .. {maximum:.1f}   x: {x_min:g} .. {x_max:g}"
    return "\n".join([header] + lines + [legend])
