"""Per-backend accuracy statistics against a baseline backend.

The paper's evaluation is, at heart, a table of error bands: each analytic
predictor approximates the simulator within a known envelope (fork/join
11–13.5 %, Tripathi 19–23 %, the Hadoop 1.x baseline ~15 %).  This module
turns one evaluated scenario grid into that table — per backend:

* signed and absolute relative-error aggregates against the baseline;
* percentile bands of the absolute error (p50 / p90 / p95 / p100);
* the worst-case scenario (which grid point the maximum error came from);
* a per-phase breakdown attributing the error to map / shuffle-sort / merge.

The statistics never crash on degenerate grids: a backend missing from some
(or all) rows degrades to ``status="incomplete"`` with stats over the points
it does have, points whose baseline value is non-positive are skipped and
counted, and zero-duration baseline phases are excluded from the per-phase
attribution.  This module is the computation layer only; the artifact and
regression-gate machinery on top of it lives in :mod:`repro.api.dashboard`.

Results are consumed structurally (``total_seconds`` / ``phases``
attributes), keeping this module below :mod:`repro.api` in the layering —
``repro.api.results`` already imports :mod:`repro.analysis.errors`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Protocol, runtime_checkable

from ..exceptions import ValidationError
from .errors import relative_error, summarize_errors

#: Version of the accuracy-report semantics.  Bump whenever the meaning of a
#: statistic changes in a way that makes previously written dashboard
#: artifacts (or committed baselines) incomparable.
ACCURACY_FORMAT_VERSION = 1

#: Absolute-error percentile bands every report carries, as (label, fraction).
PERCENTILE_BANDS = (("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p100", 1.0))

#: ``BackendAccuracy.status`` values.
STATUS_OK = "ok"
STATUS_BASELINE = "baseline"
STATUS_INCOMPLETE = "incomplete"


@runtime_checkable
class AccuracyResult(Protocol):
    """The slice of a prediction result the accuracy statistics consume."""

    total_seconds: float
    phases: Mapping[str, float]


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linearly interpolated percentile of ``values`` (``fraction`` in [0, 1]).

    Matches NumPy's default (``linear``) interpolation so the bands are
    reproducible with standard tooling.
    """
    if not values:
        raise ValidationError("cannot take a percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValidationError(f"percentile fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass(frozen=True)
class PhaseAccuracy:
    """Error attribution of one execution phase (map / shuffle-sort / merge)."""

    phase: str
    #: Points where both the baseline and the estimate phase were comparable.
    count: int
    #: Points skipped because the baseline phase had no (positive) duration.
    skipped: int
    mean_abs: float | None = None
    max_abs: float | None = None
    mean_signed: float | None = None

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "count": self.count,
            "skipped": self.skipped,
            "mean_abs": self.mean_abs,
            "max_abs": self.max_abs,
            "mean_signed": self.mean_signed,
        }


@dataclass(frozen=True)
class WorstCase:
    """The grid point a backend's maximum absolute error came from."""

    index: int
    scenario: str
    error: float
    estimate_seconds: float
    baseline_seconds: float

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "scenario": self.scenario,
            "error": self.error,
            "estimate_seconds": self.estimate_seconds,
            "baseline_seconds": self.baseline_seconds,
        }


@dataclass(frozen=True)
class BackendAccuracy:
    """One backend's error band against the baseline over a scenario grid."""

    backend: str
    #: ``ok`` (every point compared), ``baseline`` (the reference itself), or
    #: ``incomplete`` (the backend was missing from one or more rows).
    status: str
    #: Points with a comparable (estimate, baseline) pair.
    count: int
    #: Points where this backend's result was absent (e.g. not in the store).
    missing_points: int
    #: Points skipped because the baseline total was not positive.
    skipped_points: int
    mean_abs: float | None = None
    max_abs: float | None = None
    mean_signed: float | None = None
    #: Absolute-error percentile bands (``p50`` / ``p90`` / ``p95`` / ``p100``).
    percentiles: Mapping[str, float] = field(default_factory=dict)
    worst: WorstCase | None = None
    phases: tuple[PhaseAccuracy, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "percentiles", MappingProxyType(dict(self.percentiles)))

    @property
    def comparable(self) -> bool:
        """Whether this backend produced at least one comparable error."""
        return self.count > 0

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "status": self.status,
            "count": self.count,
            "missing_points": self.missing_points,
            "skipped_points": self.skipped_points,
            "mean_abs": self.mean_abs,
            "max_abs": self.max_abs,
            "mean_signed": self.mean_signed,
            "percentiles": dict(self.percentiles),
            "worst": self.worst.to_dict() if self.worst is not None else None,
            "phases": [phase.to_dict() for phase in self.phases],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BackendAccuracy":
        try:
            worst = data.get("worst")
            return cls(
                backend=data["backend"],
                status=data["status"],
                count=int(data["count"]),
                missing_points=int(data.get("missing_points", 0)),
                skipped_points=int(data.get("skipped_points", 0)),
                mean_abs=data.get("mean_abs"),
                max_abs=data.get("max_abs"),
                mean_signed=data.get("mean_signed"),
                percentiles=dict(data.get("percentiles", {})),
                worst=WorstCase(**worst) if worst is not None else None,
                phases=tuple(
                    PhaseAccuracy(**phase) for phase in data.get("phases", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"invalid backend accuracy record: {exc}") from exc


@dataclass(frozen=True)
class AccuracyReport:
    """Every backend's error band over one evaluated grid."""

    grid: str
    baseline: str
    num_scenarios: int
    backends: tuple[BackendAccuracy, ...]
    format_version: int = ACCURACY_FORMAT_VERSION

    def backend(self, name: str) -> BackendAccuracy:
        """Look up one backend's accuracy row by name."""
        for entry in self.backends:
            if entry.backend == name:
                return entry
        raise ValidationError(
            f"backend {name!r} is not in the report; have: {self.backend_names()}"
        )

    def backend_names(self) -> list[str]:
        """Backend names in report order."""
        return [entry.backend for entry in self.backends]

    @property
    def complete(self) -> bool:
        """Whether every backend compared on every grid point."""
        return all(entry.status != STATUS_INCOMPLETE for entry in self.backends)

    def to_dict(self) -> dict:
        return {
            "format": self.format_version,
            "grid": self.grid,
            "baseline": self.baseline,
            "num_scenarios": self.num_scenarios,
            "backends": [entry.to_dict() for entry in self.backends],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AccuracyReport":
        if not isinstance(data, Mapping):
            raise ValidationError(
                f"accuracy report must be a mapping, got {type(data).__name__}"
            )
        try:
            return cls(
                grid=data["grid"],
                baseline=data["baseline"],
                num_scenarios=int(data["num_scenarios"]),
                backends=tuple(
                    BackendAccuracy.from_dict(entry) for entry in data["backends"]
                ),
                format_version=int(data.get("format", ACCURACY_FORMAT_VERSION)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"invalid accuracy report: {exc}") from exc


def _phase_accuracy(
    phase: str,
    pairs: Sequence[tuple[AccuracyResult, AccuracyResult]],
) -> PhaseAccuracy:
    """Error attribution of one phase over the comparable grid points.

    A baseline phase with no positive duration (a zero-duration phase) has no
    well-defined relative error and is skipped; an estimate that simply lacks
    the phase is compared as predicting zero seconds for it (that *is* the
    backend's claim — e.g. Herodotou folds shuffle into the reduce stage).
    """
    errors: list[float] = []
    skipped = 0
    for estimate, reference in pairs:
        measured = reference.phases.get(phase, 0.0)
        if measured <= 0:
            skipped += 1
            continue
        errors.append(relative_error(estimate.phases.get(phase, 0.0), measured))
    if not errors:
        return PhaseAccuracy(phase=phase, count=0, skipped=skipped)
    summary = summarize_errors(errors)
    return PhaseAccuracy(
        phase=phase,
        count=summary.count,
        skipped=skipped,
        mean_abs=summary.mean_absolute,
        max_abs=summary.max_absolute,
        mean_signed=summary.mean_signed,
    )


def compute_backend_accuracy(
    backend: str,
    estimates: Sequence[AccuracyResult | None],
    baselines: Sequence[AccuracyResult | None],
    scenario_labels: Sequence[str],
    baseline: str,
) -> BackendAccuracy:
    """One backend's error band from aligned estimate / baseline sequences.

    ``estimates[i]`` and ``baselines[i]`` answer ``scenario_labels[i]``;
    either may be ``None`` (the point is then counted as missing).  Points
    whose baseline total is not positive are skipped rather than raising —
    a degenerate grid must degrade the report, not crash the dashboard.
    """
    if not (len(estimates) == len(baselines) == len(scenario_labels)):
        raise ValidationError("estimates, baselines and labels must align")
    errors: list[float] = []
    worst: WorstCase | None = None
    pairs: list[tuple[AccuracyResult, AccuracyResult]] = []
    missing = 0
    skipped = 0
    for index, (estimate, reference) in enumerate(zip(estimates, baselines)):
        if estimate is None or reference is None:
            missing += 1
            continue
        if reference.total_seconds <= 0:
            skipped += 1
            continue
        error = relative_error(estimate.total_seconds, reference.total_seconds)
        errors.append(error)
        pairs.append((estimate, reference))
        if worst is None or abs(error) > abs(worst.error):
            worst = WorstCase(
                index=index,
                scenario=scenario_labels[index],
                error=error,
                estimate_seconds=estimate.total_seconds,
                baseline_seconds=reference.total_seconds,
            )
    if backend == baseline:
        status = STATUS_BASELINE if missing == 0 else STATUS_INCOMPLETE
    else:
        status = STATUS_OK if missing == 0 else STATUS_INCOMPLETE
    if not errors:
        return BackendAccuracy(
            backend=backend,
            status=status,
            count=0,
            missing_points=missing,
            skipped_points=skipped,
        )
    summary = summarize_errors(errors)
    absolute = [abs(error) for error in errors]
    phase_names = sorted({name for _, reference in pairs for name in reference.phases})
    return BackendAccuracy(
        backend=backend,
        status=status,
        count=summary.count,
        missing_points=missing,
        skipped_points=skipped,
        mean_abs=summary.mean_absolute,
        max_abs=summary.max_absolute,
        mean_signed=summary.mean_signed,
        percentiles={
            label: percentile(absolute, fraction)
            for label, fraction in PERCENTILE_BANDS
        },
        worst=worst,
        phases=tuple(_phase_accuracy(name, pairs) for name in phase_names),
    )


def compute_accuracy(
    grid: str,
    rows: Sequence[Mapping[str, Any]],
    backends: Sequence[str],
    scenario_labels: Sequence[str],
    baseline: str,
) -> AccuracyReport:
    """Accuracy report over an evaluated grid.

    ``rows[i]`` maps backend names to results for scenario ``i``; a backend
    absent from a row (not evaluated, not in the store) is treated as a
    missing point and degrades that backend to ``incomplete``.  The baseline
    backend itself is reported too (status ``baseline``, zero errors) so the
    artifact demonstrably covers every backend of the grid.
    """
    if len(rows) != len(scenario_labels):
        raise ValidationError("rows and scenario_labels must align")
    if baseline not in backends:
        raise ValidationError(
            f"baseline {baseline!r} is not among the report backends {list(backends)}"
        )
    baselines = [row.get(baseline) for row in rows]
    return AccuracyReport(
        grid=grid,
        baseline=baseline,
        num_scenarios=len(rows),
        backends=tuple(
            compute_backend_accuracy(
                name,
                [row.get(name) for row in rows],
                baselines,
                scenario_labels,
                baseline,
            )
            for name in backends
        ),
    )
