"""Error metrics used by the evaluation (relative error, summaries)."""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ValidationError


def relative_error(estimate: float, measured: float) -> float:
    """Relative error of ``estimate`` against ``measured`` (signed).

    Positive values mean the estimate over-estimates the measurement; the
    paper reports absolute relative errors (11–13.5 % etc.).
    """
    if measured <= 0:
        raise ValidationError("measured value must be positive")
    return (estimate - measured) / measured


@dataclass(frozen=True)
class ErrorSummary:
    """Aggregate of relative errors over a set of experiment points."""

    mean_absolute: float
    max_absolute: float
    min_absolute: float
    mean_signed: float
    count: int

    @property
    def overestimates(self) -> bool:
        """Whether the estimates are, on average, above the measurements."""
        return self.mean_signed > 0


def summarize_errors(errors: list[float]) -> ErrorSummary:
    """Summarise a list of signed relative errors."""
    if not errors:
        raise ValidationError("cannot summarise an empty error list")
    absolute = [abs(value) for value in errors]
    return ErrorSummary(
        mean_absolute=sum(absolute) / len(absolute),
        max_absolute=max(absolute),
        min_absolute=min(absolute),
        mean_signed=sum(errors) / len(errors),
        count=len(errors),
    )
