"""Analysis helpers: error metrics, textual reports, ASCII plots."""

from .errors import ErrorSummary, relative_error, summarize_errors
from .report import format_series_table, format_table
from .plots import ascii_series_plot

__all__ = [
    "ErrorSummary",
    "relative_error",
    "summarize_errors",
    "format_series_table",
    "format_table",
    "ascii_series_plot",
]
