"""Analysis helpers: error metrics, accuracy reports, tables, ASCII plots."""

from .accuracy import (
    ACCURACY_FORMAT_VERSION,
    AccuracyReport,
    BackendAccuracy,
    PhaseAccuracy,
    WorstCase,
    compute_accuracy,
    compute_backend_accuracy,
    percentile,
)
from .errors import ErrorSummary, relative_error, summarize_errors
from .report import format_series_table, format_table
from .plots import ascii_series_plot

__all__ = [
    "ACCURACY_FORMAT_VERSION",
    "AccuracyReport",
    "BackendAccuracy",
    "ErrorSummary",
    "PhaseAccuracy",
    "WorstCase",
    "compute_accuracy",
    "compute_backend_accuracy",
    "percentile",
    "relative_error",
    "summarize_errors",
    "format_series_table",
    "format_table",
    "ascii_series_plot",
]
