"""Plain-text tables for experiment results.

The benches print the same rows/series the paper's figures report:
one row per x-value (number of nodes or number of jobs) with the measured
("HadoopSetup") value and the two model estimates.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exceptions import ValidationError


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple aligned text table."""
    if not headers:
        raise ValidationError("table needs at least one column")
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValidationError("row length does not match header length")
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    precision: int = 1,
) -> str:
    """Render a figure-style table: one column per series, one row per x value."""
    headers = [x_label] + list(series.keys())
    rows = []
    for index, x_value in enumerate(x_values):
        row: list[object] = [x_value]
        for name in series:
            values = series[name]
            if index >= len(values):
                raise ValidationError(f"series {name!r} is shorter than x_values")
            row.append(f"{values[index]:.{precision}f}")
        rows.append(row)
    return format_table(headers, rows)
