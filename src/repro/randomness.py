"""Seeded random-number helpers.

Every stochastic component of the library (simulator service-time jitter,
workload generators) receives its randomness through :func:`make_rng` so that
all experiments are reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

#: Default seed used by examples and benchmarks when none is supplied.
DEFAULT_SEED = 20170321  # date of the EDBT/ICDT 2017 workshop day


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a numpy :class:`~numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` → use :data:`DEFAULT_SEED`; an ``int`` → seed a new
        generator; an existing generator → returned unchanged (so callers can
        thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators."""
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
