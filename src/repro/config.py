"""Configuration objects shared by the simulator and the analytic model.

The paper's evaluation (Section 5.1) fixes a homogeneous cluster: every node
has the same CPU, memory, disk, and network characteristics.  We mirror that
with a :class:`NodeSpec` shared by all nodes of a :class:`ClusterConfig`.

Three configuration layers exist:

* :class:`NodeSpec` — hardware of a single worker node;
* :class:`ClusterConfig` — number of nodes + node spec + YARN container
  sizing, from which the per-node container caps of Table 2
  (``MaxMapPerNode`` / ``MaxReducePerNode``) are derived;
* :class:`SchedulerConfig` — Capacity-scheduler relevant knobs (slow start
  threshold, locality, reduce ramp-up);
* :class:`FailureSpec` — deterministic failure injection for the simulator
  (stragglers, task-attempt failures with re-execution, whole-node loss,
  speculative execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from .exceptions import ConfigurationError
from .units import GiB, MiB


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of a single worker node.

    Defaults follow the paper's testbed (Section 5.1): 2x Intel Xeon
    E5-2630L v2 (6 cores each, 12 physical cores), 128 GB RAM, one SATA-3
    disk, gigabit Ethernet.
    """

    cpu_cores: int = 12
    memory_bytes: int = 128 * GiB
    disk_count: int = 1
    #: Sustained sequential disk bandwidth (bytes/second).
    disk_bandwidth: float = 150.0 * MiB
    #: Node network bandwidth (bytes/second); 1 GbE ~ 117 MiB/s payload.
    network_bandwidth: float = 117.0 * MiB
    #: Relative CPU speed factor (1.0 = reference speed used by profiles).
    cpu_speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.cpu_cores <= 0:
            raise ConfigurationError("cpu_cores must be positive")
        if self.memory_bytes <= 0:
            raise ConfigurationError("memory_bytes must be positive")
        if self.disk_count <= 0:
            raise ConfigurationError("disk_count must be positive")
        if self.disk_bandwidth <= 0:
            raise ConfigurationError("disk_bandwidth must be positive")
        if self.network_bandwidth <= 0:
            raise ConfigurationError("network_bandwidth must be positive")
        if self.cpu_speed_factor <= 0:
            raise ConfigurationError("cpu_speed_factor must be positive")


@dataclass(frozen=True)
class ContainerSpec:
    """Resource ask for one YARN container (memory + virtual cores)."""

    memory_bytes: int = 1 * GiB
    vcores: int = 1

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ConfigurationError("container memory must be positive")
        if self.vcores <= 0:
            raise ConfigurationError("container vcores must be positive")


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster-level configuration.

    ``max_maps_per_node`` / ``max_reduces_per_node`` can be given explicitly;
    when left ``None`` they are derived from the node capacity and the
    container specs exactly as in Section 4.3 of the paper::

        pMaxMapsPerNode    = floor(TotalNodeCapacity / SizeOfContainerForMapTask)
        pMaxReducePerNode  = floor(TotalNodeCapacity / SizeOfContainerForReduceTask)

    where "capacity" is whichever dimension (memory or vcores) is the
    binding constraint.
    """

    num_nodes: int = 4
    node: NodeSpec = field(default_factory=NodeSpec)
    map_container: ContainerSpec = field(default_factory=ContainerSpec)
    reduce_container: ContainerSpec = field(default_factory=ContainerSpec)
    #: Fraction of node memory YARN may hand out to containers.
    yarn_memory_fraction: float = 0.75
    #: Fraction of node vcores YARN may hand out to containers.
    yarn_vcore_fraction: float = 1.0
    max_maps_per_node: int | None = None
    max_reduces_per_node: int | None = None
    #: Number of racks the nodes are spread over (for locality modelling).
    num_racks: int = 1

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if not 0.0 < self.yarn_memory_fraction <= 1.0:
            raise ConfigurationError("yarn_memory_fraction must be in (0, 1]")
        if not 0.0 < self.yarn_vcore_fraction <= 1.0:
            raise ConfigurationError("yarn_vcore_fraction must be in (0, 1]")
        if self.max_maps_per_node is not None and self.max_maps_per_node <= 0:
            raise ConfigurationError("max_maps_per_node must be positive")
        if self.max_reduces_per_node is not None and self.max_reduces_per_node <= 0:
            raise ConfigurationError("max_reduces_per_node must be positive")
        if self.num_racks <= 0:
            raise ConfigurationError("num_racks must be positive")
        if self.num_racks > self.num_nodes:
            raise ConfigurationError("num_racks cannot exceed num_nodes")

    # -- derived capacities -------------------------------------------------

    @property
    def yarn_memory_per_node(self) -> int:
        """Memory (bytes) YARN can allocate to containers on one node."""
        return int(self.node.memory_bytes * self.yarn_memory_fraction)

    @property
    def yarn_vcores_per_node(self) -> int:
        """Virtual cores YARN can allocate to containers on one node."""
        return max(1, int(self.node.cpu_cores * self.yarn_vcore_fraction))

    def _containers_per_node(self, spec: ContainerSpec) -> int:
        by_memory = self.yarn_memory_per_node // spec.memory_bytes
        by_vcores = self.yarn_vcores_per_node // spec.vcores
        count = int(min(by_memory, by_vcores))
        if count <= 0:
            raise ConfigurationError(
                "node capacity is too small for a single container: "
                f"{spec!r} on {self.node!r}"
            )
        return count

    def maps_per_node(self) -> int:
        """``MaxMapPerNode`` of Table 2 (explicit value or derived)."""
        if self.max_maps_per_node is not None:
            return self.max_maps_per_node
        return self._containers_per_node(self.map_container)

    def reduces_per_node(self) -> int:
        """``MaxReducePerNode`` of Table 2 (explicit value or derived)."""
        if self.max_reduces_per_node is not None:
            return self.max_reduces_per_node
        return self._containers_per_node(self.reduce_container)

    def total_map_capacity(self) -> int:
        """Cluster-wide number of concurrent map containers."""
        return self.num_nodes * self.maps_per_node()

    def total_reduce_capacity(self) -> int:
        """Cluster-wide number of concurrent reduce containers."""
        return self.num_nodes * self.reduces_per_node()

    def with_nodes(self, num_nodes: int) -> "ClusterConfig":
        """Return a copy of this configuration with a different node count."""
        return replace(self, num_nodes=num_nodes)


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduling knobs relevant to the model and the simulator.

    ``slowstart_completed_maps`` mirrors
    ``mapreduce.job.reduce.slowstart.completedmaps`` (default 0.05): the
    fraction of finished map tasks after which reduce containers may be
    requested.
    """

    #: Scheduler implementation name: ``capacity``, ``fifo`` or ``fair``.
    scheduler_name: str = "capacity"
    slowstart_enabled: bool = True
    slowstart_completed_maps: float = 0.05
    #: Consider node-locality when placing map containers.
    respect_map_locality: bool = True
    #: Priority values observed in RMContainerAllocator (paper Section 3.3).
    map_priority: int = 20
    reduce_priority: int = 10
    #: Heartbeat period between AM and RM in seconds.
    heartbeat_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.scheduler_name not in {"capacity", "fifo", "fair"}:
            raise ConfigurationError(
                f"unknown scheduler {self.scheduler_name!r}; "
                "expected 'capacity', 'fifo' or 'fair'"
            )
        if not 0.0 <= self.slowstart_completed_maps <= 1.0:
            raise ConfigurationError("slowstart_completed_maps must be in [0, 1]")
        if self.heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be positive")
        if self.map_priority <= 0 or self.reduce_priority <= 0:
            raise ConfigurationError("priorities must be positive")


@dataclass(frozen=True)
class FailureSpec:
    """Deterministic failure model for the YARN simulator.

    All randomness is derived from seeded hash draws keyed on
    ``(seed, kind, task_id, attempt)``, so an identical
    ``(Scenario, FailureSpec, seed)`` triple reproduces the exact same
    failure schedule regardless of event interleaving.  The default spec is
    a no-op: a ``FailureSpec()`` (or ``None``) leaves simulator traces
    bit-identical to a failure-free run.
    """

    #: Probability that any given task attempt fails partway through.
    task_failure_rate: float = 0.0
    #: Maximum attempts per task; the last allowed attempt always succeeds,
    #: mirroring ``mapreduce.map.maxattempts`` semantics with a bounded tail.
    max_attempts: int = 4
    #: Fraction of task attempts that run as stragglers.
    straggler_fraction: float = 0.0
    #: Runtime multiplier applied to straggler attempts (>= 1).
    straggler_slowdown: float = 2.5
    #: Simulation times (seconds) at which a whole node fails.
    node_failure_times: tuple[float, ...] = ()
    #: Launch a backup attempt for stragglers; first finisher wins.
    speculative: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.task_failure_rate < 1.0:
            raise ConfigurationError("task_failure_rate must be in [0, 1)")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if not 0.0 <= self.straggler_fraction <= 1.0:
            raise ConfigurationError("straggler_fraction must be in [0, 1]")
        if self.straggler_slowdown < 1.0:
            raise ConfigurationError("straggler_slowdown must be at least 1.0")
        times = tuple(sorted(float(t) for t in self.node_failure_times))
        if any(t < 0 for t in times):
            raise ConfigurationError("node_failure_times must be non-negative")
        object.__setattr__(self, "node_failure_times", times)

    @property
    def is_noop(self) -> bool:
        """True when this spec injects no failures at all."""
        return (
            self.task_failure_rate == 0.0
            and self.straggler_fraction == 0.0
            and not self.node_failure_times
            and not self.speculative
        )

    def to_dict(self) -> dict:
        """JSON-serialisable representation (round-trips via :meth:`from_dict`)."""
        return {
            "task_failure_rate": self.task_failure_rate,
            "max_attempts": self.max_attempts,
            "straggler_fraction": self.straggler_fraction,
            "straggler_slowdown": self.straggler_slowdown,
            "node_failure_times": list(self.node_failure_times),
            "speculative": self.speculative,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FailureSpec":
        """Rebuild a spec from :meth:`to_dict` output (strict on keys)."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(f"unknown FailureSpec fields: {sorted(unknown)}")
        data = dict(payload)
        if "node_failure_times" in data:
            data["node_failure_times"] = tuple(data["node_failure_times"])
        return cls(**data)


@dataclass(frozen=True)
class JobConfig:
    """Definition of one MapReduce job submitted to the cluster.

    The number of map tasks follows from the input size and the HDFS block
    size (one split per block, as in Hadoop), while the number of reduce
    tasks is a user parameter — exactly the "static resource requirements"
    described in Section 3.3 of the paper.
    """

    name: str = "wordcount"
    input_size_bytes: int = 1 * GiB
    block_size_bytes: int = 128 * MiB
    num_reduces: int = 1
    #: Ratio of map-output bytes to map-input bytes (job selectivity).
    map_output_ratio: float = 0.4
    #: Ratio of reduce-output bytes to reduce-input bytes.
    reduce_output_ratio: float = 0.1
    #: Submission time of the job relative to the start of the experiment.
    submission_time: float = 0.0

    def __post_init__(self) -> None:
        if self.input_size_bytes <= 0:
            raise ConfigurationError("input_size_bytes must be positive")
        if self.block_size_bytes <= 0:
            raise ConfigurationError("block_size_bytes must be positive")
        if self.num_reduces <= 0:
            raise ConfigurationError("num_reduces must be positive")
        if self.map_output_ratio < 0:
            raise ConfigurationError("map_output_ratio must be non-negative")
        if self.reduce_output_ratio < 0:
            raise ConfigurationError("reduce_output_ratio must be non-negative")
        if self.submission_time < 0:
            raise ConfigurationError("submission_time must be non-negative")

    @property
    def num_maps(self) -> int:
        """Number of map tasks = number of input splits (ceil of size/block)."""
        blocks, remainder = divmod(self.input_size_bytes, self.block_size_bytes)
        return int(blocks + (1 if remainder else 0))

    @property
    def split_size_bytes(self) -> int:
        """Size of a full input split (== block size)."""
        return self.block_size_bytes

    @property
    def last_split_size_bytes(self) -> int:
        """Size of the final (possibly short) input split."""
        remainder = self.input_size_bytes % self.block_size_bytes
        return remainder if remainder else self.block_size_bytes

    def with_submission_time(self, submission_time: float) -> "JobConfig":
        """Return a copy with a different submission time."""
        return replace(self, submission_time=submission_time)
