"""Frozen capacity-planning specifications: what to optimise, under what.

The planner inverts the prediction API: instead of "how long does this job
take on this cluster?" it answers "what is the cheapest cluster that meets
my deadline?".  Three new frozen, hashable, JSON-round-trippable specs make
that question first-class:

* :class:`Objective` — what "best" means (minimise cost, makespan, or
  node count) plus the cost model (a flat $/node-hour rate);
* :class:`Constraint` — what a candidate must satisfy to be feasible
  (deadline on the predicted response time, budget on the modelled cost,
  ceiling on the per-container memory ask);
* :class:`SearchSpace` — which knobs the planner may turn, as explicit
  candidate values per axis: cluster size × container memory × reduce
  count (the config knob workload profiles declare as plannable).

A :class:`PlanSpec` combines them with a base
:class:`~repro.api.scenario.Scenario`, the backend that evaluates probes,
and the search budget.  Like scenarios, plan specs serialise canonically
(:meth:`PlanSpec.cache_key`), so a plan is cacheable, resumable through the
result store, and replayable bit-identically.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from ..api.scenario import Scenario
from ..config import ClusterConfig
from ..exceptions import ConfigurationError, ValidationError
from ..units import parse_size
from ..workloads.generators import paper_cluster
from ..workloads.profiles import plan_knobs

#: Version of the plan-spec semantics; bump when the meaning of a field (or
#: how the planner consumes one) changes in a way that invalidates reports.
PLAN_SPEC_VERSION = 1

#: Accepted objective kinds.
OBJECTIVE_KINDS = ("min-cost", "min-makespan", "min-nodes")


def _positive(name: str, value: float | int | None) -> None:
    if value is not None and value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class Objective:
    """What the planner minimises, and the cost model it charges with.

    The modelled cost of a candidate is ``num_nodes × predicted hours ×
    node_cost_per_hour`` — node-hours scaled by a flat rate.  Every
    objective reports that cost; ``kind`` selects which quantity is
    actually minimised (ties always break deterministically towards fewer
    nodes, then smaller containers, then fewer reduces).
    """

    kind: str = "min-cost"
    #: Flat price of one node for one hour (any currency; 1.0 = node-hours).
    node_cost_per_hour: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in OBJECTIVE_KINDS:
            raise ValidationError(
                f"unknown objective kind {self.kind!r}; known: {list(OBJECTIVE_KINDS)}"
            )
        _positive("node_cost_per_hour", self.node_cost_per_hour)

    def cost(self, num_nodes: int, total_seconds: float) -> float:
        """Modelled cost of running the workload on ``num_nodes`` nodes."""
        return num_nodes * (total_seconds / 3600.0) * self.node_cost_per_hour

    def value(self, num_nodes: int, total_seconds: float) -> float:
        """The quantity this objective minimises for one candidate."""
        if self.kind == "min-cost":
            return self.cost(num_nodes, total_seconds)
        if self.kind == "min-makespan":
            return total_seconds
        return float(num_nodes)

    def to_dict(self) -> dict:
        """JSON-serialisable view; inverse of :meth:`from_dict`."""
        return {"kind": self.kind, "node_cost_per_hour": self.node_cost_per_hour}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Objective":
        """Build an objective from a dictionary."""
        return _from_mapping(cls, data, "objective")


@dataclass(frozen=True)
class Constraint:
    """Feasibility requirements a candidate plan must satisfy.

    All fields are optional; ``None`` means unconstrained.  The memory
    ceiling is *static* (it prunes search-space points before any
    evaluation); deadline and budget are checked against each probe's
    predicted response time and modelled cost.
    """

    #: Predicted job response time must not exceed this (seconds).
    deadline_seconds: float | None = None
    #: Modelled cost (see :meth:`Objective.cost`) must not exceed this.
    budget: float | None = None
    #: Per-container memory ask must not exceed this (bytes).
    memory_ceiling_bytes: int | None = None

    def __post_init__(self) -> None:
        _positive("deadline_seconds", self.deadline_seconds)
        _positive("budget", self.budget)
        _positive("memory_ceiling_bytes", self.memory_ceiling_bytes)

    @property
    def is_noop(self) -> bool:
        """Whether every candidate is trivially feasible."""
        return (
            self.deadline_seconds is None
            and self.budget is None
            and self.memory_ceiling_bytes is None
        )

    def admits(self, point: "PlanPoint") -> bool:
        """Static pre-check: can ``point`` possibly be feasible?"""
        return (
            self.memory_ceiling_bytes is None
            or point.container_memory_bytes is None
            or point.container_memory_bytes <= self.memory_ceiling_bytes
        )

    def violations(self, total_seconds: float, cost: float) -> tuple[str, ...]:
        """Names of the constraints a predicted outcome violates."""
        violated = []
        if self.deadline_seconds is not None and total_seconds > self.deadline_seconds:
            violated.append("deadline")
        if self.budget is not None and cost > self.budget:
            violated.append("budget")
        return tuple(violated)

    def to_dict(self) -> dict:
        """JSON-serialisable view; inverse of :meth:`from_dict`."""
        return {
            "deadline_seconds": self.deadline_seconds,
            "budget": self.budget,
            "memory_ceiling_bytes": self.memory_ceiling_bytes,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Constraint":
        """Build a constraint from a dictionary (sizes may be strings)."""
        payload = dict(data) if isinstance(data, Mapping) else data
        if isinstance(payload, dict) and payload.get("memory_ceiling_bytes") is not None:
            payload["memory_ceiling_bytes"] = parse_size(payload["memory_ceiling_bytes"])
        return _from_mapping(cls, payload, "constraint")


@dataclass(frozen=True)
class PlanPoint:
    """One candidate of the search space (a coordinate, not a scenario)."""

    num_nodes: int
    #: ``None`` keeps the base scenario's container sizing untouched.
    container_memory_bytes: int | None = None
    #: ``None`` keeps the base scenario's reduce count untouched.
    num_reduces: int | None = None

    def describe(self) -> str:
        """Short human-readable label for tables and logs."""
        parts = [f"{self.num_nodes} nodes"]
        if self.container_memory_bytes is not None:
            parts.append(f"{self.container_memory_bytes / (1 << 30):g}GiB containers")
        if self.num_reduces is not None:
            parts.append(f"r={self.num_reduces}")
        return ", ".join(parts)

    def to_dict(self) -> dict:
        """JSON-serialisable view; inverse of :meth:`from_dict`."""
        return {
            "num_nodes": self.num_nodes,
            "container_memory_bytes": self.container_memory_bytes,
            "num_reduces": self.num_reduces,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlanPoint":
        """Build a point from a dictionary."""
        return _from_mapping(cls, data, "plan point")

    def scenario(self, base: Scenario) -> Scenario:
        """Materialise this candidate as a concrete scenario on top of ``base``.

        Raises :class:`~repro.exceptions.ValidationError` when the candidate
        is not constructible (e.g. a container larger than the node's YARN
        envelope) — the planner prunes such points instead of evaluating.
        """
        changes: dict = {"num_nodes": self.num_nodes}
        if self.num_reduces is not None:
            changes["num_reduces"] = self.num_reduces
        cluster: ClusterConfig | None = base.cluster
        if cluster is not None:
            cluster = cluster.with_nodes(self.num_nodes)
        if self.container_memory_bytes is not None:
            cluster = cluster if cluster is not None else paper_cluster(self.num_nodes)
            try:
                cluster = dataclasses.replace(
                    cluster,
                    map_container=dataclasses.replace(
                        cluster.map_container,
                        memory_bytes=self.container_memory_bytes,
                    ),
                    reduce_container=dataclasses.replace(
                        cluster.reduce_container,
                        memory_bytes=self.container_memory_bytes,
                    ),
                )
                cluster.maps_per_node()  # raises when no container fits
            except ConfigurationError as exc:
                raise ValidationError(f"candidate {self.describe()}: {exc}") from exc
        if cluster is not None:
            changes["cluster"] = cluster
        return base.with_updates(**changes)


@dataclass(frozen=True)
class SearchSpace:
    """Candidate values per plannable knob (the planner's grid).

    ``num_nodes`` is mandatory and drives the search; the other axes
    default to "do not vary" (an empty tuple keeps the base scenario's
    value for that knob).  Values are stored sorted and deduplicated so two
    spaces naming the same candidates hash and serialise identically.
    """

    num_nodes: tuple[int, ...]
    container_memory_bytes: tuple[int, ...] = ()
    num_reduces: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for axis in ("num_nodes", "container_memory_bytes", "num_reduces"):
            values = getattr(self, axis)
            if not isinstance(values, tuple):
                values = tuple(values)
            if any(
                not isinstance(value, int) or isinstance(value, bool) or value <= 0
                for value in values
            ):
                raise ValidationError(f"{axis} candidates must be positive integers")
            object.__setattr__(self, axis, tuple(sorted(set(values))))
        if not self.num_nodes:
            raise ValidationError("search space needs at least one num_nodes candidate")

    @classmethod
    def for_workload(cls, workload: str, **overrides) -> "SearchSpace":
        """The search space a workload profile declares as plannable.

        Profiles register their plannable knobs through
        :func:`repro.workloads.profiles.register_plan_knobs`; explicit
        ``overrides`` (axis name → candidate values) replace the declared
        defaults axis by axis.
        """
        axes = dict(plan_knobs(workload))
        axes.update(overrides)
        return cls(**axes)

    def axes(self) -> dict[str, tuple]:
        """The concrete iteration values of every axis (``None`` = keep base)."""
        return {
            "num_nodes": self.num_nodes,
            "container_memory_bytes": self.container_memory_bytes or (None,),
            "num_reduces": self.num_reduces or (None,),
        }

    def points(self) -> list[PlanPoint]:
        """Every candidate point, in deterministic ascending order."""
        axes = self.axes()
        return [
            PlanPoint(
                num_nodes=nodes, container_memory_bytes=memory, num_reduces=reduces
            )
            for nodes in axes["num_nodes"]
            for memory in axes["container_memory_bytes"]
            for reduces in axes["num_reduces"]
        ]

    def __len__(self) -> int:
        axes = self.axes()
        total = 1
        for values in axes.values():
            total *= len(values)
        return total

    def to_dict(self) -> dict:
        """JSON-serialisable view; inverse of :meth:`from_dict`."""
        return {
            "num_nodes": list(self.num_nodes),
            "container_memory_bytes": list(self.container_memory_bytes),
            "num_reduces": list(self.num_reduces),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SearchSpace":
        """Build a search space from a dictionary (sizes may be strings)."""
        payload = dict(data) if isinstance(data, Mapping) else data
        if isinstance(payload, dict) and payload.get("container_memory_bytes"):
            payload["container_memory_bytes"] = tuple(
                parse_size(value) for value in payload["container_memory_bytes"]
            )
        if isinstance(payload, dict):
            payload = {
                key: tuple(value) if isinstance(value, list) else value
                for key, value in payload.items()
            }
        return _from_mapping(cls, payload, "search space")


@dataclass(frozen=True)
class PlanSpec:
    """One complete capacity-planning question, frozen and cacheable."""

    #: The workload being provisioned; its cluster knobs are what the
    #: planner varies, everything else (input size, jobs, seed, ...) is
    #: taken as given.
    scenario: Scenario
    objective: Objective = field(default_factory=Objective)
    constraint: Constraint = field(default_factory=Constraint)
    #: ``None`` resolves to the knobs the workload's profile declares.
    space: SearchSpace | None = None
    #: Backend that evaluates search probes (fast analytic by default).
    backend: str = "mva-forkjoin"
    #: Backend that confirms the reported optimum (``None`` = no separate
    #: confirmation; the probing backend's answer stands).
    confirm_backend: str | None = None
    #: Fit an interpolation surrogate after the coarse pass and let it
    #: nominate candidates (each nomination is confirmed by the real
    #: backend before it can become the optimum).
    surrogate: bool = False
    #: Hard ceiling on (scenario, backend) evaluations a plan may spend.
    max_evaluations: int = 64
    #: Candidate values per axis in the coarse pass (endpoints included).
    coarse: int = 3

    def __post_init__(self) -> None:
        if self.max_evaluations < 1:
            raise ValidationError(
                f"max_evaluations must be at least 1, got {self.max_evaluations}"
            )
        if self.coarse < 2:
            raise ValidationError(f"coarse must be at least 2, got {self.coarse}")
        if not self.backend:
            raise ValidationError("backend must be non-empty")

    def resolved_space(self) -> SearchSpace:
        """The explicit space, or the workload profile's declared knobs."""
        if self.space is not None:
            return self.space
        return SearchSpace.for_workload(self.scenario.workload)

    def to_dict(self) -> dict:
        """JSON-serialisable view; inverse of :meth:`from_dict`."""
        return {
            "version": PLAN_SPEC_VERSION,
            "scenario": self.scenario.to_dict(),
            "objective": self.objective.to_dict(),
            "constraint": self.constraint.to_dict(),
            "space": None if self.space is None else self.space.to_dict(),
            "backend": self.backend,
            "confirm_backend": self.confirm_backend,
            "surrogate": self.surrogate,
            "max_evaluations": self.max_evaluations,
            "coarse": self.coarse,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlanSpec":
        """Build a plan spec from a dictionary."""
        if not isinstance(data, Mapping):
            raise ValidationError(
                f"plan spec must be a mapping, got {type(data).__name__}"
            )
        payload = dict(data)
        version = payload.pop("version", PLAN_SPEC_VERSION)
        if version != PLAN_SPEC_VERSION:
            raise ValidationError(
                f"unsupported plan-spec version {version!r} "
                f"(this build speaks {PLAN_SPEC_VERSION})"
            )
        if "scenario" in payload:
            payload["scenario"] = Scenario.from_dict(payload["scenario"])
        if payload.get("objective") is not None and not isinstance(
            payload["objective"], Objective
        ):
            payload["objective"] = Objective.from_dict(payload["objective"])
        if payload.get("constraint") is not None and not isinstance(
            payload["constraint"], Constraint
        ):
            payload["constraint"] = Constraint.from_dict(payload["constraint"])
        if payload.get("space") is not None and not isinstance(
            payload["space"], SearchSpace
        ):
            payload["space"] = SearchSpace.from_dict(payload["space"])
        return _from_mapping(cls, payload, "plan spec")

    def to_json(self, **dumps_kwargs) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "PlanSpec":
        """Parse a plan spec from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid plan-spec JSON: {exc}") from exc
        return cls.from_dict(data)

    def cache_key(self) -> str:
        """Stable canonical key identifying this plan question."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def fingerprint(self) -> str:
        """Short stable digest of :meth:`cache_key` (suite/report naming)."""
        import hashlib

        return hashlib.sha256(self.cache_key().encode("utf-8")).hexdigest()[:12]

    def describe(self) -> str:
        """One-line human-readable summary of the question."""
        parts = [self.objective.kind, f"for {self.scenario.describe()}"]
        if self.constraint.deadline_seconds is not None:
            parts.append(f"deadline {self.constraint.deadline_seconds:g}s")
        if self.constraint.budget is not None:
            parts.append(f"budget {self.constraint.budget:g}")
        if self.constraint.memory_ceiling_bytes is not None:
            parts.append(
                f"memory <= {self.constraint.memory_ceiling_bytes / (1 << 30):g}GiB"
            )
        return ", ".join(parts)


def _from_mapping(cls, data, label: str):
    """Shared strict constructor: reject non-mappings and unknown fields."""
    if not isinstance(data, Mapping):
        raise ValidationError(f"{label} must be a mapping, got {type(data).__name__}")
    known = {spec.name for spec in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValidationError(
            f"unknown {label} fields {sorted(unknown)}; known: {sorted(known)}"
        )
    try:
        return cls(**dict(data))
    except TypeError as exc:
        raise ValidationError(f"invalid {label}: {exc}") from exc
