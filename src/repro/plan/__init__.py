"""Capacity planning: invert the predictors into an optimizer.

The prediction layers answer "how long does this workload take on this
cluster?"; this package answers the question operators actually ask —
"what is the cheapest cluster that meets my deadline?".  It is exposed as
``repro plan`` on the CLI, ``POST /plan`` on the daemon, and as a library::

    from repro.api import (
        CapacityPlanner, Constraint, Objective, PlanSpec, Scenario,
    )

    spec = PlanSpec(
        scenario=Scenario(workload="wordcount", input_size_bytes=5 * GiB),
        objective=Objective("min-cost"),
        constraint=Constraint(deadline_seconds=400.0),
    )
    report = CapacityPlanner().plan(spec)
    print(report.render_table())

Plans compose with the rest of the API: probes are evaluated through the
:class:`~repro.api.service.PredictionService` and
:class:`~repro.api.sweep.SweepScheduler`, so a store-backed planner caches,
resumes, and warm-starts exactly like a sweep, and the resulting
:class:`~repro.plan.report.PlanReport` replays bit-identically from the
spec's seed.
"""

from .planner import CapacityPlanner, plan
from .report import PlanProbe, PlanReport, PlanRound
from .spec import (
    OBJECTIVE_KINDS,
    PLAN_SPEC_VERSION,
    Constraint,
    Objective,
    PlanPoint,
    PlanSpec,
    SearchSpace,
)
from .surrogate import InterpolationSurrogate

__all__ = [
    "OBJECTIVE_KINDS",
    "PLAN_SPEC_VERSION",
    "CapacityPlanner",
    "Constraint",
    "InterpolationSurrogate",
    "Objective",
    "PlanPoint",
    "PlanProbe",
    "PlanReport",
    "PlanRound",
    "PlanSpec",
    "SearchSpace",
    "plan",
]
