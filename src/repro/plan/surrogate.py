"""Fitted interpolation surrogate for instant interactive answers.

After the coarse pass the planner has a handful of real predictions per
``(container memory, reduce count)`` slice of the search space.  The
surrogate fits piecewise-linear interpolants of predicted response time
over the node axis, one per slice, and uses them to *nominate* promising
unevaluated candidates — which the planner then confirms with the real
backend before any of them can become the reported optimum.  The surrogate
is deterministic (pure arithmetic over the probes it was fitted on), so a
plan that uses it replays bit-identically.
"""

from __future__ import annotations

from collections.abc import Iterable

from .spec import PlanPoint


class InterpolationSurrogate:
    """Per-slice 1-D linear interpolation of response time over nodes."""

    def __init__(
        self, slices: dict[tuple[int | None, int | None], list[tuple[int, float]]]
    ) -> None:
        self._slices = {
            key: sorted(samples) for key, samples in slices.items() if samples
        }

    @classmethod
    def fit(cls, probes: Iterable) -> "InterpolationSurrogate":
        """Fit from evaluated :class:`~repro.plan.report.PlanProbe` objects."""
        slices: dict[tuple[int | None, int | None], list[tuple[int, float]]] = {}
        for probe in probes:
            point = probe.point
            key = (point.container_memory_bytes, point.num_reduces)
            slices.setdefault(key, []).append((point.num_nodes, probe.total_seconds))
        return cls(slices)

    def predict(self, point: PlanPoint) -> float | None:
        """Interpolated response time for ``point``; ``None`` off-model.

        Within a slice's sampled node range the estimate interpolates
        linearly between the bracketing samples; outside it the estimate
        clamps to the nearest sample (flat extrapolation keeps the surrogate
        conservative at the grid edges instead of projecting speedups it
        has no evidence for).
        """
        samples = self._slices.get((point.container_memory_bytes, point.num_reduces))
        if not samples:
            return None
        nodes = point.num_nodes
        if nodes <= samples[0][0]:
            return samples[0][1]
        if nodes >= samples[-1][0]:
            return samples[-1][1]
        for (left_n, left_t), (right_n, right_t) in zip(samples, samples[1:]):
            if left_n <= nodes <= right_n:
                if right_n == left_n:
                    return left_t
                fraction = (nodes - left_n) / (right_n - left_n)
                return left_t + fraction * (right_t - left_t)
        return samples[-1][1]

    def nominate(
        self,
        candidates: Iterable[PlanPoint],
        objective,
        constraint,
        limit: int,
    ) -> list[PlanPoint]:
        """The ``limit`` most promising unevaluated candidates.

        Candidates are ranked by the objective applied to the *surrogate's*
        estimate; predicted-infeasible candidates rank behind predicted-
        feasible ones rather than being dropped (the surrogate may be
        wrong in either direction, and the real backend gets the final
        word).  Ties break deterministically towards smaller points.
        """
        scored = []
        for point in candidates:
            estimate = self.predict(point)
            if estimate is None:
                continue
            cost = objective.cost(point.num_nodes, estimate)
            infeasible = bool(constraint.violations(estimate, cost))
            scored.append(
                (
                    infeasible,
                    objective.value(point.num_nodes, estimate),
                    point.num_nodes,
                    point.container_memory_bytes or 0,
                    point.num_reduces or 0,
                    point,
                )
            )
        scored.sort(key=lambda entry: entry[:5])
        return [entry[5] for entry in scored[: max(0, limit)]]
