"""The capacity-planning search engine: coarse-to-fine over a frozen grid.

The :class:`CapacityPlanner` inverts the prediction service.  Given a
:class:`~repro.plan.spec.PlanSpec` it searches the declared
:class:`~repro.plan.spec.SearchSpace` for the candidate that optimises the
:class:`~repro.plan.spec.Objective` subject to the
:class:`~repro.plan.spec.Constraint`:

1. **Prune** — candidates that violate the static memory ceiling or do not
   materialise into a valid scenario (container larger than a node's YARN
   envelope) are rejected without touching a backend.
2. **Coarse pass** — up to ``spec.coarse`` evenly spaced values per axis
   (endpoints always included) are crossed into a batch and evaluated as
   one :class:`~repro.api.scenario.ScenarioSuite` through the
   :class:`~repro.api.sweep.SweepScheduler` — so cached points replay from
   the result store, batch-capable backends (MVA) evaluate the whole round
   in one warm-started ``predict_batch`` call, and an interrupted plan
   resumes exactly like an interrupted sweep.
3. **Surrogate (optional)** — a per-slice interpolant fitted on the coarse
   probes nominates promising unevaluated candidates; the real backend
   evaluates every nomination before it can lead.
4. **Refine** — repeatedly bisect (by grid index) between the incumbent and
   its nearest evaluated neighbour along every axis, evaluating each round
   as one batch, until no unevaluated midpoint remains or the evaluation
   budget is spent.
5. **Confirm (optional)** — a second backend re-evaluates the winner.

Everything is deterministic: batches are built in sorted candidate order,
ties break towards smaller clusters, and no step consults wall-clock time —
re-running a spec reproduces the identical :class:`PlanReport` ``result``
section whether the store is cold or warm.
"""

from __future__ import annotations

from ..api.scenario import Scenario, ScenarioSuite
from ..api.service import PredictionService
from ..api.sweep import SweepScheduler
from ..exceptions import ConfigurationError, ValidationError
from .report import PlanProbe, PlanReport, PlanRound
from .spec import PlanPoint, PlanSpec
from .surrogate import InterpolationSurrogate

#: How many surrogate nominations are confirmed with the real backend.
SURROGATE_NOMINATIONS = 3


def _point_sort_key(point: PlanPoint) -> tuple:
    return (
        point.num_nodes,
        point.container_memory_bytes or 0,
        point.num_reduces or 0,
    )


def _probe_sort_key(probe: PlanProbe) -> tuple:
    return (probe.objective_value, *_point_sort_key(probe.point))


class CapacityPlanner:
    """Run capacity-planning searches against a prediction service."""

    def __init__(self, service: PredictionService | None = None) -> None:
        self._service = service if service is not None else PredictionService()
        self._scheduler = SweepScheduler(self._service)

    @property
    def service(self) -> PredictionService:
        """The prediction service evaluating the probes."""
        return self._service

    def plan(self, spec: PlanSpec) -> PlanReport:
        """Search the spec's space and return the full :class:`PlanReport`."""
        run = _PlanRun(self._scheduler, spec)
        return run.execute()


def plan(spec: PlanSpec, service: PredictionService | None = None) -> PlanReport:
    """One-shot convenience: ``CapacityPlanner(service).plan(spec)``."""
    return CapacityPlanner(service).plan(spec)


class _PlanRun:
    """Mutable state of one planning search (one spec, one report)."""

    def __init__(self, scheduler: SweepScheduler, spec: PlanSpec) -> None:
        self.scheduler = scheduler
        self.spec = spec
        self.space = spec.resolved_space()
        self.probes: list[PlanProbe] = []
        self.rounds: list[PlanRound] = []
        self.evaluated: dict[PlanPoint, PlanProbe] = {}
        self.failed: list[dict] = []
        self.failed_points: set[PlanPoint] = set()
        self.pruned: list[tuple[PlanPoint, str]] = []
        self.scenarios: dict[PlanPoint, Scenario] = {}
        self.candidates: list[PlanPoint] = []
        self.submitted = 0
        self.live_evaluations = 0
        self.cached_points = 0
        self.batch_index = 0

    # -- candidate materialisation --------------------------------------

    def _materialise(self) -> None:
        for point in self.space.points():
            if not self.spec.constraint.admits(point):
                self.pruned.append((point, "memory ceiling"))
                continue
            try:
                self.scenarios[point] = point.scenario(self.spec.scenario)
            except (ValidationError, ConfigurationError) as exc:
                self.pruned.append((point, str(exc)))
                continue
            self.candidates.append(point)
        if not self.candidates:
            raise ValidationError(
                "every candidate of the search space was pruned before "
                "evaluation; relax the memory ceiling or widen the space"
            )

    # -- evaluation -----------------------------------------------------

    def _budget_left(self) -> int:
        return max(0, self.spec.max_evaluations - self.submitted)

    def _evaluate(self, points: list[PlanPoint], phase: str) -> list[PlanProbe]:
        """Evaluate a batch (budget-clipped, deduplicated, sorted) as one suite."""
        todo = [
            point
            for point in sorted(set(points), key=_point_sort_key)
            if point not in self.evaluated and point not in self.failed_points
        ]
        todo = todo[: self._budget_left()]
        if not todo:
            return []
        self.submitted += len(todo)
        self.batch_index += 1
        suite = ScenarioSuite(
            name=f"plan:{self.spec.fingerprint()}:{self.batch_index:02d}-{phase}",
            scenarios=tuple(self.scenarios[point] for point in todo),
            description=f"capacity-plan {phase} batch",
        )
        outcome = self.scheduler.run(suite, [self.spec.backend], on_error="record")
        self.live_evaluations += outcome.stats.evaluations
        self.cached_points += outcome.plan.cached_points
        fresh: list[PlanProbe] = []
        for point, row in zip(todo, outcome.result.rows):
            result = row.get(self.spec.backend)
            if result is None or not result.ok:
                entry = {"point": point.to_dict(), "backend": self.spec.backend}
                if result is not None:
                    entry["error_type"] = result.error_type
                    entry["error"] = result.error
                self.failed.append(entry)
                self.failed_points.add(point)
                continue
            total_seconds = result.total_seconds
            cost = self.spec.objective.cost(point.num_nodes, total_seconds)
            violations = self.spec.constraint.violations(total_seconds, cost)
            probe = PlanProbe(
                order=len(self.probes),
                phase=phase,
                point=point,
                backend=self.spec.backend,
                total_seconds=total_seconds,
                cost=cost,
                objective_value=self.spec.objective.value(
                    point.num_nodes, total_seconds
                ),
                feasible=not violations,
                violations=violations,
            )
            self.probes.append(probe)
            self.evaluated[point] = probe
            fresh.append(probe)
        return fresh

    def _incumbent(self) -> PlanProbe | None:
        feasible = [probe for probe in self.probes if probe.feasible]
        if not feasible:
            return None
        return min(feasible, key=_probe_sort_key)

    def _record_round(self, phase: str, fresh: list[PlanProbe]) -> None:
        incumbent = self._incumbent()
        self.rounds.append(
            PlanRound(
                phase=phase,
                probes=tuple(probe.order for probe in fresh),
                incumbent=None if incumbent is None else incumbent.order,
            )
        )

    # -- search stages --------------------------------------------------

    def _coarse_points(self) -> list[PlanPoint]:
        axes = self.space.axes()
        selected = {
            name: _spread(values, self.spec.coarse) for name, values in axes.items()
        }
        grid = [
            PlanPoint(
                num_nodes=nodes, container_memory_bytes=memory, num_reduces=reduces
            )
            for nodes in selected["num_nodes"]
            for memory in selected["container_memory_bytes"]
            for reduces in selected["num_reduces"]
        ]
        valid = set(self.candidates)
        return [point for point in grid if point in valid]

    def _surrogate_round(self) -> None:
        if not self.probes or self._budget_left() == 0:
            return
        surrogate = InterpolationSurrogate.fit(self.probes)
        remaining = [
            point for point in self.candidates if point not in self.evaluated
        ]
        nominated = surrogate.nominate(
            remaining,
            self.spec.objective,
            self.spec.constraint,
            min(SURROGATE_NOMINATIONS, self._budget_left()),
        )
        if not nominated:
            return
        fresh = self._evaluate(nominated, "surrogate")
        if fresh:
            self._record_round("surrogate", fresh)

    def _refine_candidates(self, incumbent: PlanProbe) -> list[PlanPoint]:
        """Index-midpoints between the incumbent and its evaluated neighbours."""
        axes = self.space.axes()
        origin = incumbent.point
        coordinates = {
            "num_nodes": origin.num_nodes,
            "container_memory_bytes": origin.container_memory_bytes,
            "num_reduces": origin.num_reduces,
        }
        proposals: list[PlanPoint] = []
        for axis, values in axes.items():
            if len(values) < 2:
                continue
            position = values.index(coordinates[axis])
            evaluated_positions = sorted(
                values.index(getattr(point, axis))
                for point in self.evaluated
                if all(
                    getattr(point, other) == coordinates[other]
                    for other in coordinates
                    if other != axis
                )
            )
            for direction in (-1, 1):
                beyond = [
                    p for p in evaluated_positions if (p - position) * direction > 0
                ]
                boundary = (len(values) - 1) if direction > 0 else 0
                neighbour = (
                    min(beyond, key=lambda p: abs(p - position)) if beyond else boundary
                )
                midpoint = (position + neighbour) // 2
                if midpoint == position or (midpoint == neighbour and beyond):
                    continue
                replaced = dict(coordinates)
                replaced[axis] = values[midpoint]
                proposals.append(PlanPoint(**replaced))
        valid = set(self.candidates)
        return [
            point
            for point in proposals
            if point in valid
            and point not in self.evaluated
            and point not in self.failed_points
        ]

    def _confirm_round(self, incumbent: PlanProbe) -> None:
        backend = self.spec.confirm_backend
        if backend is None:
            return
        point = incumbent.point
        suite = ScenarioSuite(
            name=f"plan:{self.spec.fingerprint()}:confirm",
            scenarios=(self.scenarios[point],),
            description="capacity-plan optimum confirmation",
        )
        outcome = self.scheduler.run(suite, [backend], on_error="record")
        self.live_evaluations += outcome.stats.evaluations
        self.cached_points += outcome.plan.cached_points
        result = outcome.result.rows[0].get(backend)
        if result is None or not result.ok:
            entry = {"point": point.to_dict(), "backend": backend}
            if result is not None:
                entry["error_type"] = result.error_type
                entry["error"] = result.error
            self.failed.append(entry)
            self._record_round("confirm", [])
            return
        total_seconds = result.total_seconds
        cost = self.spec.objective.cost(point.num_nodes, total_seconds)
        violations = self.spec.constraint.violations(total_seconds, cost)
        probe = PlanProbe(
            order=len(self.probes),
            phase="confirm",
            point=point,
            backend=backend,
            total_seconds=total_seconds,
            cost=cost,
            objective_value=self.spec.objective.value(point.num_nodes, total_seconds),
            feasible=not violations,
            violations=violations,
        )
        self.probes.append(probe)
        self._record_round("confirm", [probe])

    # -- driver ---------------------------------------------------------

    def execute(self) -> PlanReport:
        self._materialise()
        fresh = self._evaluate(self._coarse_points(), "coarse")
        self._record_round("coarse", fresh)
        if self.spec.surrogate:
            self._surrogate_round()
        while self._budget_left() > 0:
            incumbent = self._incumbent()
            if incumbent is None:
                # Nothing feasible yet: widen deterministically by probing
                # the cheapest (by sort order) unevaluated candidates.
                remaining = [
                    point
                    for point in self.candidates
                    if point not in self.evaluated
                    and point not in self.failed_points
                ]
                if not remaining:
                    break
                fresh = self._evaluate(remaining[: self.spec.coarse], "refine")
            else:
                targets = self._refine_candidates(incumbent)
                if not targets:
                    break
                fresh = self._evaluate(targets, "refine")
            if not fresh:
                break
            self._record_round("refine", fresh)
        incumbent = self._incumbent()
        if incumbent is not None:
            self._confirm_round(incumbent)
        return PlanReport(
            spec=self.spec,
            probes=tuple(self.probes),
            rounds=tuple(self.rounds),
            best=incumbent,
            pruned=tuple(self.pruned),
            failed=tuple(self.failed),
            grid_size=len(self.candidates),
            evaluations=self.live_evaluations,
            cached=self.cached_points,
        )


def _spread(values: tuple, count: int) -> tuple:
    """Up to ``count`` evenly spaced elements of ``values`` (ends included)."""
    if len(values) <= count:
        return values
    last = len(values) - 1
    positions = sorted({round(index * last / (count - 1)) for index in range(count)})
    return tuple(values[position] for position in positions)
