"""The durable, replayable artifact a capacity-planning run produces.

A :class:`PlanReport` records *everything* the optimizer did: every probe it
evaluated (point, backend, predicted time, modelled cost, feasibility), the
order in which rounds refined the incumbent, and which candidates were
pruned before evaluation.  The report is the planner's ledger: serialising
it (:meth:`PlanReport.to_dict`) yields the same ``result`` / ``metadata`` /
``failed`` envelope the CLI's other subcommands emit, and the ``result``
section is a pure function of the :class:`~repro.plan.spec.PlanSpec` — a
re-run against a warm store reproduces it bit-identically (only
``metadata`` counters such as live evaluations differ).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..exceptions import ValidationError
from ..units import format_size
from .spec import PlanPoint, PlanSpec, _from_mapping


@dataclass(frozen=True)
class PlanProbe:
    """One evaluated candidate: the point, its prediction, its verdict."""

    #: Global evaluation order within the plan (0-based, deterministic).
    order: int
    #: Which stage produced this probe: ``coarse``, ``surrogate``,
    #: ``refine`` or ``confirm``.
    phase: str
    point: PlanPoint
    backend: str
    total_seconds: float
    #: Modelled cost under the spec's objective (node-hours × rate).
    cost: float
    #: The quantity the objective minimises for this candidate.
    objective_value: float
    feasible: bool
    #: Names of violated constraints (empty when feasible).
    violations: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """JSON-serialisable view; inverse of :meth:`from_dict`."""
        return {
            "order": self.order,
            "phase": self.phase,
            "point": self.point.to_dict(),
            "backend": self.backend,
            "total_seconds": self.total_seconds,
            "cost": self.cost,
            "objective_value": self.objective_value,
            "feasible": self.feasible,
            "violations": list(self.violations),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlanProbe":
        """Build a probe from a dictionary."""
        if not isinstance(data, Mapping):
            raise ValidationError(
                f"plan probe must be a mapping, got {type(data).__name__}"
            )
        payload = dict(data)
        if not isinstance(payload.get("point"), PlanPoint):
            payload["point"] = PlanPoint.from_dict(payload.get("point", {}))
        if isinstance(payload.get("violations"), list):
            payload["violations"] = tuple(payload["violations"])
        return _from_mapping(cls, payload, "plan probe")


@dataclass(frozen=True)
class PlanRound:
    """One batch of the search, in incumbent-refinement order."""

    phase: str
    #: Probe orders evaluated in this round.
    probes: tuple[int, ...]
    #: Probe order of the incumbent after this round (``None`` while no
    #: feasible candidate has been found).
    incumbent: int | None

    def to_dict(self) -> dict:
        """JSON-serialisable view; inverse of :meth:`from_dict`."""
        return {
            "phase": self.phase,
            "probes": list(self.probes),
            "incumbent": self.incumbent,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlanRound":
        """Build a round from a dictionary."""
        payload = dict(data) if isinstance(data, Mapping) else data
        if isinstance(payload, dict) and isinstance(payload.get("probes"), list):
            payload["probes"] = tuple(payload["probes"])
        return _from_mapping(cls, payload, "plan round")


@dataclass(frozen=True)
class PlanReport:
    """Complete, auditable record of one capacity-planning run."""

    spec: PlanSpec
    #: Every evaluated candidate, in evaluation order.
    probes: tuple[PlanProbe, ...]
    #: The search trajectory: which probes each round added and who led.
    rounds: tuple[PlanRound, ...]
    #: The winning probe (``None`` when no candidate was feasible).
    best: PlanProbe | None
    #: Candidates rejected before evaluation, as ``(point, reason)``.
    pruned: tuple[tuple[PlanPoint, str], ...] = ()
    #: Probes whose backend evaluation failed terminally, as raw
    #: ``{"point": ..., "backend": ..., "error_type": ..., "error": ...}``.
    failed: tuple[dict, ...] = ()
    #: Candidate points in the (post-pruning) grid.
    grid_size: int = 0
    #: Live backend evaluations this run performed (cached points excluded).
    evaluations: int = 0
    #: Points answered from the service cache or the result store.
    cached: int = 0

    @property
    def feasible(self) -> bool:
        """Whether the plan found any candidate satisfying the constraints."""
        return self.best is not None

    def to_dict(self) -> dict:
        """The standard CLI envelope: ``result`` / ``metadata`` / ``failed``.

        Everything under ``result`` is a pure function of the spec — two
        runs of the same spec (cold or warm store) serialise it
        byte-for-byte identically.  Run-dependent counters (live vs cached
        evaluations) live under ``metadata``.
        """
        return {
            "result": {
                "spec": self.spec.to_dict(),
                "best": None if self.best is None else self.best.to_dict(),
                "probes": [probe.to_dict() for probe in self.probes],
                "rounds": [round_.to_dict() for round_ in self.rounds],
                "pruned": [
                    {"point": point.to_dict(), "reason": reason}
                    for point, reason in self.pruned
                ],
            },
            "metadata": {
                "feasible": self.feasible,
                "grid_size": self.grid_size,
                "budget": self.spec.max_evaluations,
                "probe_count": len(self.probes),
                "evaluations": self.evaluations,
                "cached": self.cached,
            },
            "failed": list(self.failed),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlanReport":
        """Rebuild a report from its envelope (CLI ``--json`` / daemon body)."""
        if not isinstance(data, Mapping):
            raise ValidationError(
                f"plan report must be a mapping, got {type(data).__name__}"
            )
        result = data.get("result")
        metadata = data.get("metadata")
        if not isinstance(result, Mapping) or not isinstance(metadata, Mapping):
            raise ValidationError(
                "plan report requires 'result' and 'metadata' sections"
            )
        best = result.get("best")
        return cls(
            spec=PlanSpec.from_dict(result.get("spec", {})),
            probes=tuple(
                PlanProbe.from_dict(entry) for entry in result.get("probes", [])
            ),
            rounds=tuple(
                PlanRound.from_dict(entry) for entry in result.get("rounds", [])
            ),
            best=None if best is None else PlanProbe.from_dict(best),
            pruned=tuple(
                (PlanPoint.from_dict(entry["point"]), entry["reason"])
                for entry in result.get("pruned", [])
            ),
            failed=tuple(dict(entry) for entry in data.get("failed", [])),
            grid_size=metadata.get("grid_size", 0),
            evaluations=metadata.get("evaluations", 0),
            cached=metadata.get("cached", 0),
        )

    def path(self) -> list[str]:
        """The refinement path as one human-readable line per round."""
        lines = []
        by_order = {probe.order: probe for probe in self.probes}
        for round_ in self.rounds:
            leader = by_order.get(round_.incumbent) if round_.incumbent is not None else None
            where = leader.point.describe() if leader is not None else "no feasible incumbent"
            lines.append(
                f"{round_.phase}: {len(round_.probes)} probe(s) -> {where}"
            )
        return lines

    def render_table(self) -> str:
        """Human-readable report: the question, the probes, the answer."""
        lines = [f"plan {self.spec.fingerprint()}: {self.spec.describe()}"]
        lines.append(
            f"grid {self.grid_size} candidate(s), budget {self.spec.max_evaluations}, "
            f"{len(self.probes)} probed ({self.evaluations} live, {self.cached} cached), "
            f"{len(self.pruned)} pruned, {len(self.failed)} failed"
        )
        header = (
            f"{'#':>3} {'phase':<9} {'candidate':<34} {'backend':<14} "
            f"{'seconds':>10} {'cost':>10}  verdict"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for probe in self.probes:
            verdict = "ok" if probe.feasible else "violates " + ",".join(probe.violations)
            marker = " *" if self.best is not None and probe.order == self.best.order else ""
            lines.append(
                f"{probe.order:>3} {probe.phase:<9} {probe.point.describe():<34} "
                f"{probe.backend:<14} {probe.total_seconds:>10.1f} {probe.cost:>10.2f}"
                f"  {verdict}{marker}"
            )
        for entry in self.failed:
            point = PlanPoint.from_dict(entry["point"])
            lines.append(
                f"  ! {point.describe()} on {entry.get('backend', '?')}: "
                f"{entry.get('error_type', 'Error')}: {entry.get('error', '')}"
            )
        lines.append("")
        for line in self.path():
            lines.append(f"  {line}")
        lines.append("")
        if self.best is None:
            lines.append("no feasible plan under the given constraints")
        else:
            best = self.best
            memory = (
                format_size(best.point.container_memory_bytes)
                if best.point.container_memory_bytes is not None
                else "base"
            )
            lines.append(
                f"best: {best.point.describe()} "
                f"(containers: {memory}) -> {best.total_seconds:.1f}s, "
                f"cost {best.cost:.2f} [{self.spec.objective.kind}]"
            )
        return "\n".join(lines)
