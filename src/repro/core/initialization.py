"""Initialisation of the per-task response times (activity A1).

Two strategies are supported, mirroring Section 4.2.1 of the paper:

* **profile-based** — take the average task response times observed in a job
  history trace (the "sample techniques" option);
* **Herodotou-based** — derive the initial response times from the static
  phase-level cost model, assuming maps run first with all resources and
  reduces afterwards.  The paper notes this option converges faster and is
  the one its prototype uses; the initialisation ablation bench quantifies
  the difference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..exceptions import ModelError
from .parameters import TaskClass


class InitializationStrategy(enum.Enum):
    """How the initial per-class response times are obtained."""

    #: Response times equal the total uncontended service demand of the class.
    SERVICE_DEMAND = "service-demand"
    #: Response times derived from the Herodotou static phase model.
    HERODOTOU = "herodotou"
    #: Response times taken from a job-history trace / profile.
    PROFILE = "profile"


@dataclass(frozen=True)
class InitialResponseTimes:
    """Seed response times for the modified-MVA iteration."""

    values: dict[TaskClass, float]
    strategy: InitializationStrategy

    def __post_init__(self) -> None:
        for task_class in TaskClass.ordered():
            if task_class not in self.values:
                raise ModelError(
                    f"initial response time missing for class {task_class.value}"
                )
            if self.values[task_class] < 0:
                raise ModelError("initial response times must be non-negative")

    def response_time(self, task_class: TaskClass) -> float:
        """Seed response time of one class."""
        return self.values[task_class]


def initialize_from_profile(
    map_seconds: float,
    shuffle_sort_seconds: float,
    merge_seconds: float,
) -> InitialResponseTimes:
    """Seed the iteration with averages taken from a job profile / trace."""
    return InitialResponseTimes(
        values={
            TaskClass.MAP: map_seconds,
            TaskClass.SHUFFLE_SORT: shuffle_sort_seconds,
            TaskClass.MERGE: merge_seconds,
        },
        strategy=InitializationStrategy.PROFILE,
    )


def initialize_from_herodotou(
    dataflow,
    environment,
) -> InitialResponseTimes:
    """Seed the iteration from the Herodotou static phase model.

    Parameters
    ----------
    dataflow:
        :class:`repro.static_models.herodotou.DataflowStatistics` of the job.
    environment:
        :class:`repro.static_models.herodotou.HadoopEnvironment` describing
        the cluster and the cost statistics.

    Notes
    -----
    The map class receives the total map-task phase cost; the shuffle-sort
    class the shuffle phase cost; the merge class the remaining reduce phases
    (merge + reduce + write), matching the subtask grouping of Section 4.1.
    The import is local to avoid a package-level import cycle
    (``static_models`` also builds on ``core`` for its Vianna baseline).
    """
    from ..static_models.herodotou import estimate_map_phases, estimate_reduce_phases

    map_phases = estimate_map_phases(dataflow, environment.costs)
    remote_fraction = (
        (environment.num_nodes - 1) / environment.num_nodes
        if environment.num_nodes > 1
        else 0.0
    )
    reduce_phases = estimate_reduce_phases(
        dataflow, environment.costs, remote_fraction=remote_fraction
    )
    return InitialResponseTimes(
        values={
            TaskClass.MAP: map_phases.total,
            TaskClass.SHUFFLE_SORT: reduce_phases.shuffle_sort,
            TaskClass.MERGE: reduce_phases.final_merge + reduce_phases.startup,
        },
        strategy=InitializationStrategy.HERODOTOU,
    )
