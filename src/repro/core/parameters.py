"""Model input parameters (paper Table 2).

The analytic model is driven by a :class:`ModelInput` object holding

* **configuration parameters** — number of nodes, CPUs and disks per node,
  per-node container caps for map and reduce tasks;
* **workload parameters** — number of concurrent jobs, number of map and
  reduce tasks per job, per-class service demands ``S_{i,k}`` on the two
  service centers (CPU & memory, network), and initial per-class response
  times used to seed the iteration.

Three task classes exist (paper Section 4.1): ``map``, ``shuffle-sort`` and
``merge`` — the reduce task is split into its shuffle-sort and merge
subtasks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from ..exceptions import ConfigurationError


class TaskClass(enum.Enum):
    """The three task classes of the model."""

    MAP = "map"
    SHUFFLE_SORT = "shuffle-sort"
    MERGE = "merge"

    @classmethod
    def ordered(cls) -> tuple["TaskClass", ...]:
        """Classes in canonical order (map, shuffle-sort, merge)."""
        return (cls.MAP, cls.SHUFFLE_SORT, cls.MERGE)


class ServiceCenterName(enum.Enum):
    """Service centers of the model.

    The paper names two resource types, "CPU & Memory" and "Network"
    (Section 4.1), while listing ``cpuPerNode`` *and* ``diskPerNode`` among
    the configuration parameters of Table 2.  We therefore keep the local
    disk as its own center so the per-node disk count can play its role; the
    CPU and DISK centers together correspond to the paper's "CPU & Memory"
    resource.
    """

    CPU = "cpu"
    DISK = "disk"
    NETWORK = "network"

    @classmethod
    def ordered(cls) -> tuple["ServiceCenterName", ...]:
        """Centers in canonical order."""
        return (cls.CPU, cls.DISK, cls.NETWORK)


@dataclass(frozen=True)
class TaskClassDemands:
    """Average service demands of one task class (seconds per task).

    ``cpu_seconds`` is pure processing time, ``disk_seconds`` local-disk I/O
    time, and ``network_seconds`` the time spent moving data over the cluster
    network (only the shuffle-sort class normally has a non-zero value).
    """

    cpu_seconds: float
    disk_seconds: float = 0.0
    network_seconds: float = 0.0
    #: Coefficient of variation of the class response time (used by the
    #: Tripathi estimator to pick Erlang vs. hyperexponential fits).
    coefficient_of_variation: float = 0.5

    def __post_init__(self) -> None:
        if self.cpu_seconds < 0 or self.disk_seconds < 0 or self.network_seconds < 0:
            raise ConfigurationError("service demands must be non-negative")
        if self.coefficient_of_variation < 0:
            raise ConfigurationError("coefficient of variation must be non-negative")

    @property
    def total_seconds(self) -> float:
        """Total uncontended service demand of the class."""
        return self.cpu_seconds + self.disk_seconds + self.network_seconds

    def demand(self, center: ServiceCenterName) -> float:
        """Demand on one service center."""
        if center is ServiceCenterName.CPU:
            return self.cpu_seconds
        if center is ServiceCenterName.DISK:
            return self.disk_seconds
        return self.network_seconds


@dataclass(frozen=True)
class ModelInput:
    """Complete input of the Hadoop 2.x performance model (paper Table 2)."""

    # -- configuration parameters ------------------------------------------------
    num_nodes: int
    cpu_per_node: int = 8
    disk_per_node: int = 1
    max_maps_per_node: int = 8
    max_reduces_per_node: int = 8

    # -- workload parameters -------------------------------------------------------
    num_jobs: int = 1
    num_maps: int = 1
    num_reduces: int = 1
    demands: dict[TaskClass, TaskClassDemands] = field(default_factory=dict)
    #: Initial per-class response-time estimates (seconds).  When omitted,
    #: they default to the total service demand of the class.
    initial_response_times: dict[TaskClass, float] = field(default_factory=dict)

    # -- scheduling assumptions -----------------------------------------------------
    slow_start: bool = True
    respect_map_locality: bool = True
    #: Fixed per-job overhead not represented by the task timeline: AM
    #: container start-up, registration, and the first container-allocation
    #: round trips (seconds).  Added once to every job response-time estimate.
    job_overhead_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if self.cpu_per_node <= 0 or self.disk_per_node <= 0:
            raise ConfigurationError("per-node hardware counts must be positive")
        if self.max_maps_per_node <= 0 or self.max_reduces_per_node <= 0:
            raise ConfigurationError("per-node container caps must be positive")
        if self.num_jobs <= 0:
            raise ConfigurationError("num_jobs must be positive")
        if self.num_maps <= 0 or self.num_reduces <= 0:
            raise ConfigurationError("task counts must be positive")
        missing = [cls for cls in TaskClass.ordered() if cls not in self.demands]
        if missing:
            raise ConfigurationError(
                "demands must be provided for every task class; missing: "
                + ", ".join(cls.value for cls in missing)
            )
        for task_class, response in self.initial_response_times.items():
            if response < 0:
                raise ConfigurationError(
                    f"initial response time of {task_class.value} must be non-negative"
                )
        if self.job_overhead_seconds < 0:
            raise ConfigurationError("job_overhead_seconds must be non-negative")

    # -- derived values -----------------------------------------------------------------

    def initial_response_time(self, task_class: TaskClass) -> float:
        """Seed response time of a class (explicit value or total demand)."""
        if task_class in self.initial_response_times:
            return self.initial_response_times[task_class]
        return self.demands[task_class].total_seconds

    def class_population(self, task_class: TaskClass) -> int:
        """Number of tasks of ``task_class`` per job."""
        if task_class is TaskClass.MAP:
            return self.num_maps
        return self.num_reduces

    def total_population(self, task_class: TaskClass) -> int:
        """Number of tasks of ``task_class`` across all concurrent jobs."""
        return self.class_population(task_class) * self.num_jobs

    @property
    def total_map_capacity(self) -> int:
        """Cluster-wide number of concurrent map containers."""
        return self.num_nodes * self.max_maps_per_node

    @property
    def total_reduce_capacity(self) -> int:
        """Cluster-wide number of concurrent reduce containers."""
        return self.num_nodes * self.max_reduces_per_node

    def with_updates(self, **changes) -> "ModelInput":
        """Return a copy with ``changes`` applied (convenience for sweeps)."""
        return replace(self, **changes)
