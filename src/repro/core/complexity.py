"""Computational-cost accounting (paper Section 4.3).

The paper derives the complexity of the whole solution as::

    O(C^2 N^2 K)                                      -- the MVA algorithm
  + O((m + r(m+1)) * n * max(pMaxMapsPerNode,
                             pMaxReducePerNode))      -- one timeline build
    * numberOfIterations

where ``C`` is the number of task classes, ``N`` the number of jobs, ``K``
the number of service centers, ``m``/``r`` the map/reduce task counts and
``n`` the number of nodes.  :func:`estimate_complexity` evaluates these
operation counts for a given :class:`~repro.core.parameters.ModelInput`, so
the complexity bench can verify the claimed scaling empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

from .parameters import ModelInput, ServiceCenterName, TaskClass


@dataclass(frozen=True)
class ComplexityReport:
    """Operation counts predicted by the paper's complexity formulas."""

    mva_operations: int
    timeline_operations_per_iteration: int
    iterations: int

    @property
    def timeline_operations(self) -> int:
        """Timeline operations across all iterations."""
        return self.timeline_operations_per_iteration * self.iterations

    @property
    def total_operations(self) -> int:
        """Total operation count of the whole solution."""
        return self.mva_operations + self.timeline_operations

    @property
    def dominated_by_mva(self) -> bool:
        """Whether the MVA term dominates (the paper's conclusion)."""
        return self.mva_operations >= self.timeline_operations


def timeline_task_count(model_input: ModelInput) -> int:
    """The ``C = m + r(m+1)`` task count of the timeline cost formula.

    The paper counts every map task plus, for every reduce task, one merge
    subtask and one shuffle-sort interaction per map (the ``r * m`` term).
    """
    m = model_input.num_maps
    r = model_input.num_reduces
    return m + r * (m + 1)


def container_count(model_input: ModelInput) -> int:
    """The ``T = n * max(pMaxMapsPerNode, pMaxReducePerNode)`` container count."""
    return model_input.num_nodes * max(
        model_input.max_maps_per_node, model_input.max_reduces_per_node
    )


def estimate_complexity(model_input: ModelInput, iterations: int) -> ComplexityReport:
    """Evaluate the Section 4.3 cost formulas for ``model_input``."""
    num_classes = len(TaskClass.ordered())
    num_centers = len(ServiceCenterName.ordered())
    mva_operations = num_classes**2 * model_input.num_jobs**2 * num_centers
    timeline_operations = timeline_task_count(model_input) * container_count(model_input)
    return ComplexityReport(
        mva_operations=mva_operations,
        timeline_operations_per_iteration=timeline_operations,
        iterations=max(1, iterations),
    )
