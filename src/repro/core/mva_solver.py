"""The modified MVA fixed-point loop (activities A1–A6, paper Figure 4).

Each iteration:

* **A2** rebuilds the timeline of one job from the current per-class,
  per-center residence-time estimates (initially the uncontended service
  demands or the Herodotou/profile seeds);
* **A3** computes the intra-/inter-job overlap factors from that timeline;
* **A4** solves the closed queueing network with the overlap-weighted
  approximate MVA, producing new per-class residence and response times;
* **A5** rebuilds the timeline and precedence tree with the new estimates and
  computes the job response time with the selected estimator
  (fork/join or Tripathi);
* **A6** compares the new job response time against the previous iteration's
  value; the loop stops when the change is below ``epsilon`` (1e-7 by
  default, the value the paper recommends).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ModelError
from ..queueing.mva_overlap import OverlapFactors, solve_mva_with_overlaps
from ..queueing.network import ClosedNetwork
from ..queueing.service_center import CenterKind, ServiceCenter, ServiceDemand
from .estimators import EstimatorKind, create_estimator
from .fast_timeline import place_tasks
from .overlap import compute_overlap_factors
from .parameters import ModelInput, ServiceCenterName, TaskClass
from .precedence.builder import build_precedence_tree
from .precedence.metrics import tree_depth
from .precedence.tree import PrecedenceNode
from .timeline import Timeline, build_timeline

#: Per-class, per-center residence times — the solver's iterated state.
Residences = dict[TaskClass, dict[ServiceCenterName, float]]

#: Convergence threshold recommended by the paper (Section 4.2.6).
DEFAULT_EPSILON = 1e-7
#: Safety bound on the number of A2–A6 iterations.
DEFAULT_MAX_ITERATIONS = 60


@dataclass(frozen=True)
class SolverIteration:
    """Snapshot of one A2–A6 iteration."""

    index: int
    class_response_times: dict[TaskClass, float]
    job_response_time: float
    tree_depth: int
    delta: float
    #: Average container-waiting time added for concurrent jobs (0 for 1 job).
    inter_job_wait: float = 0.0


@dataclass
class SolverTrace:
    """Full record of a modified-MVA solve."""

    iterations: list[SolverIteration] = field(default_factory=list)
    converged: bool = False
    final_timeline: Timeline | None = None
    final_tree: PrecedenceNode | None = None
    final_overlaps: OverlapFactors | None = None
    #: Converged per-class, per-center residence times — the state a
    #: neighbouring grid point can be warm-started from.
    final_residences: Residences | None = None

    @property
    def num_iterations(self) -> int:
        """Number of A2–A6 iterations executed."""
        return len(self.iterations)

    @property
    def job_response_time(self) -> float:
        """Job response time of the last iteration."""
        if not self.iterations:
            raise ModelError("solver has not produced any iteration")
        return self.iterations[-1].job_response_time

    @property
    def class_response_times(self) -> dict[TaskClass, float]:
        """Per-class response times of the last iteration."""
        if not self.iterations:
            raise ModelError("solver has not produced any iteration")
        return self.iterations[-1].class_response_times


class ModifiedMVASolver:
    """Iterative solver combining the timeline, overlap factors and MVA."""

    def __init__(
        self,
        estimator: EstimatorKind | str = EstimatorKind.FORK_JOIN,
        epsilon: float = DEFAULT_EPSILON,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        balanced_tree: bool = True,
        enforce_merge_after_last_map: bool = True,
        fast_timeline: bool = False,
    ) -> None:
        if epsilon <= 0:
            raise ModelError("epsilon must be positive")
        if max_iterations <= 0:
            raise ModelError("max_iterations must be positive")
        self.estimator = create_estimator(estimator)
        self.epsilon = epsilon
        self.max_iterations = max_iterations
        self.balanced_tree = balanced_tree
        self.enforce_merge_after_last_map = enforce_merge_after_last_map
        #: Use the array-based placement of :mod:`repro.core.fast_timeline`
        #: for A2/A3 (vectorised overlap factors) and A5.  The placement is
        #: identical to :func:`build_timeline`'s; only the overlap matrices
        #: differ, at floating-point summation order.  Default off so the
        #: scalar paths stay bit-for-bit unchanged.
        self.fast_timeline = fast_timeline

    # -- building blocks -----------------------------------------------------------

    def _expected_remote_fraction(self, model_input: ModelInput) -> float:
        """Expected fraction of a reducer's input located on other nodes."""
        if model_input.num_nodes <= 1:
            return 0.0
        return (model_input.num_nodes - 1) / model_input.num_nodes

    def _build_network(self, model_input: ModelInput) -> ClosedNetwork:
        """Closed queueing network with one class per task class."""
        centers = [
            ServiceCenter(
                name=ServiceCenterName.CPU.value,
                kind=CenterKind.QUEUEING,
                servers=model_input.cpu_per_node,
            ),
            ServiceCenter(
                name=ServiceCenterName.DISK.value,
                kind=CenterKind.QUEUEING,
                servers=model_input.disk_per_node,
            ),
            ServiceCenter(
                name=ServiceCenterName.NETWORK.value,
                kind=CenterKind.QUEUEING,
                servers=1,
            ),
        ]
        demands = []
        for task_class in TaskClass.ordered():
            class_demands = model_input.demands[task_class]
            for center in ServiceCenterName.ordered():
                value = class_demands.demand(center)
                if value > 0:
                    demands.append(
                        ServiceDemand(
                            class_name=task_class.value,
                            center_name=center.value,
                            demand=value,
                        )
                    )
        populations = [
            model_input.total_population(task_class)
            for task_class in TaskClass.ordered()
        ]
        return ClosedNetwork(
            centers=centers,
            class_names=[task_class.value for task_class in TaskClass.ordered()],
            populations=populations,
            demands=demands,
        )

    def _scaled_overlaps(
        self, overlaps: OverlapFactors, model_input: ModelInput
    ) -> OverlapFactors:
        """Scale overlap factors by the node-sharing probability ``1 / numNodes``.

        Tasks spread uniformly over a homogeneous cluster only interfere with
        the competitors placed on the *same* node, which happens with
        probability ``1/n`` per competitor.
        """
        factor = 1.0 / model_input.num_nodes
        return OverlapFactors(
            class_names=overlaps.class_names,
            intra_job=np.clip(overlaps.intra_job * factor, 0.0, 1.0),
            inter_job=np.clip(overlaps.inter_job * factor, 0.0, 1.0),
        )

    def _timeline_durations(
        self,
        model_input: ModelInput,
        residences: Residences,
    ) -> tuple[float, float, float, float]:
        """(map, shuffle base, full shuffle network, merge) durations for Algorithm 1."""
        map_duration = sum(residences[TaskClass.MAP].values())
        shuffle_network = residences[TaskClass.SHUFFLE_SORT][ServiceCenterName.NETWORK]
        shuffle_base = (
            residences[TaskClass.SHUFFLE_SORT][ServiceCenterName.CPU]
            + residences[TaskClass.SHUFFLE_SORT][ServiceCenterName.DISK]
        )
        merge_duration = sum(residences[TaskClass.MERGE].values())
        remote_fraction = self._expected_remote_fraction(model_input)
        if remote_fraction > 0:
            # ``build_timeline`` expects the time to fetch the *entire* input
            # remotely and scales it by the actual remote-map fraction; the
            # residence time corresponds to the expected remote portion.
            shuffle_network_full = shuffle_network / remote_fraction
        else:
            shuffle_network_full = 0.0
        return map_duration, shuffle_base, shuffle_network_full, merge_duration

    def _build_timeline(
        self,
        model_input: ModelInput,
        residences: Residences,
    ) -> Timeline:
        """Timeline from the current per-class per-center residence times."""
        map_duration, shuffle_base, shuffle_network_full, merge_duration = (
            self._timeline_durations(model_input, residences)
        )
        return build_timeline(
            model_input,
            map_duration=map_duration,
            shuffle_sort_base_duration=shuffle_base,
            shuffle_network_duration=shuffle_network_full,
            merge_duration=merge_duration,
            enforce_merge_after_last_map=self.enforce_merge_after_last_map,
        )

    def _place_tasks(self, model_input: ModelInput, residences: Residences):
        """Array-based placement for the fast-timeline mode (same inputs as A2)."""
        map_duration, shuffle_base, shuffle_network_full, merge_duration = (
            self._timeline_durations(model_input, residences)
        )
        return place_tasks(
            model_input,
            map_duration=map_duration,
            shuffle_sort_base_duration=shuffle_base,
            shuffle_network_duration=shuffle_network_full,
            merge_duration=merge_duration,
            enforce_merge_after_last_map=self.enforce_merge_after_last_map,
        )

    def _inter_job_container_wait(
        self,
        model_input: ModelInput,
        class_response: dict[TaskClass, float],
    ) -> float:
        """Average waiting for containers held by the other concurrent jobs.

        The Capacity scheduler with a single root queue serves applications
        in FIFO order (paper Section 4.2.2, assumption 1): while an earlier
        job still has outstanding requests it effectively owns the container
        pool.  A job submitted together with ``J - 1`` identical jobs
        therefore waits, on average, for half of the other jobs' container
        work to drain through the pool::

            wait = (J - 1) / 2 * (per-job container-seconds / pool size)

        where the per-job container-seconds use the contention-inflated class
        response times of the current iteration and the pool size is
        ``numNodes * max(MaxMapPerNode, MaxReducePerNode)``.  For ``J = 1``
        the term vanishes and the model reduces to the pure tree + MVA
        estimate.
        """
        if model_input.num_jobs <= 1:
            return 0.0
        container_seconds = (
            model_input.num_maps * class_response[TaskClass.MAP]
            + model_input.num_reduces
            * (
                class_response[TaskClass.SHUFFLE_SORT]
                + class_response[TaskClass.MERGE]
            )
        )
        pool_size = model_input.num_nodes * max(
            model_input.max_maps_per_node, model_input.max_reduces_per_node
        )
        drain_time = container_seconds / pool_size
        return 0.5 * (model_input.num_jobs - 1) * drain_time

    def _initial_residences(
        self,
        model_input: ModelInput,
        initial_response_times: dict[TaskClass, float] | None,
    ) -> dict[TaskClass, dict[ServiceCenterName, float]]:
        """Split the seed response times over the centers proportionally to demand."""
        residences: dict[TaskClass, dict[ServiceCenterName, float]] = {}
        for task_class in TaskClass.ordered():
            demands = model_input.demands[task_class]
            total_demand = demands.total_seconds
            if initial_response_times and task_class in initial_response_times:
                seed_total = initial_response_times[task_class]
            else:
                seed_total = model_input.initial_response_time(task_class)
            residences[task_class] = {}
            for center in ServiceCenterName.ordered():
                demand = demands.demand(center)
                if total_demand > 0:
                    share = demand / total_demand
                else:
                    share = 0.0
                residences[task_class][center] = seed_total * share
        return residences

    # -- the A1-A6 loop ---------------------------------------------------------------

    def solve(
        self,
        model_input: ModelInput,
        initial_response_times: dict[TaskClass, float] | None = None,
        initial_residences: Residences | None = None,
    ) -> SolverTrace:
        """Run the modified MVA iteration and return its full trace.

        ``initial_residences`` seeds A1 with explicit per-class, per-center
        residence times — typically the :attr:`SolverTrace.final_residences`
        of a neighbouring, already-solved grid point (warm start).  It takes
        precedence over ``initial_response_times`` (which only provides
        per-class totals, split over the centers proportionally to demand).
        The fixed point reached is the same either way; a good seed merely
        needs fewer A2–A6 iterations to get there.
        """
        if initial_residences is not None:
            for task_class in TaskClass.ordered():
                centers = initial_residences.get(task_class)
                if centers is None:
                    raise ModelError(
                        f"initial residences missing class {task_class.value!r}"
                    )
                for center in ServiceCenterName.ordered():
                    if centers.get(center, 0.0) < 0:
                        raise ModelError("initial residences must be non-negative")
        trace = SolverTrace()
        network = self._build_network(model_input)
        cv_by_class = {
            task_class: model_input.demands[task_class].coefficient_of_variation
            for task_class in TaskClass.ordered()
        }
        # Precomputed index maps for extracting residence times from the MVA
        # solution (the solution arrays share the network's class/center
        # order, so repeated ``list.index`` scans per iteration are avoided).
        class_row = {
            task_class: network.class_names.index(task_class.value)
            for task_class in TaskClass.ordered()
        }
        center_column = {
            center: network.center_index(center.value)
            for center in ServiceCenterName.ordered()
        }

        # A1: initialise residence times (per center) from the seed values.
        if initial_residences is not None:
            residences = {
                task_class: {
                    center: float(initial_residences[task_class].get(center, 0.0))
                    for center in ServiceCenterName.ordered()
                }
                for task_class in TaskClass.ordered()
            }
        else:
            residences = self._initial_residences(model_input, initial_response_times)
        previous_estimate: float | None = None

        for index in range(1, self.max_iterations + 1):
            # A2/A3: overlap factors from the timeline of the current estimates.
            if self.fast_timeline:
                overlaps = self._place_tasks(model_input, residences).overlap_factors()
            else:
                timeline = self._build_timeline(model_input, residences)
                overlaps = compute_overlap_factors(timeline)
            scaled = self._scaled_overlaps(overlaps, model_input)
            # A4: overlap-weighted MVA.
            solution = solve_mva_with_overlaps(
                network,
                scaled,
                jobs_in_system=model_input.num_jobs,
            )
            residences = {
                task_class: {
                    center: float(
                        solution.residence_times[
                            class_row[task_class], center_column[center]
                        ]
                    )
                    for center in ServiceCenterName.ordered()
                }
                for task_class in TaskClass.ordered()
            }
            class_response = {
                task_class: sum(residences[task_class].values())
                for task_class in TaskClass.ordered()
            }
            # A5: response time over the rebuilt tree.
            if self.fast_timeline:
                updated_timeline = self._place_tasks(
                    model_input, residences
                ).to_timeline()
            else:
                updated_timeline = self._build_timeline(model_input, residences)
            tree = build_precedence_tree(
                updated_timeline,
                coefficient_of_variation=cv_by_class,
                balanced=self.balanced_tree,
            )
            inter_job_wait = self._inter_job_container_wait(model_input, class_response)
            job_estimate = (
                self.estimator.estimate(tree)
                + inter_job_wait
                + model_input.job_overhead_seconds
            )
            # A6: convergence test.
            delta = (
                abs(job_estimate - previous_estimate)
                if previous_estimate is not None
                else float("inf")
            )
            trace.iterations.append(
                SolverIteration(
                    index=index,
                    class_response_times=class_response,
                    job_response_time=job_estimate,
                    tree_depth=tree_depth(tree),
                    delta=delta,
                    inter_job_wait=inter_job_wait,
                )
            )
            trace.final_timeline = updated_timeline
            trace.final_tree = tree
            trace.final_overlaps = overlaps
            trace.final_residences = residences
            if previous_estimate is not None and delta <= self.epsilon:
                trace.converged = True
                break
            previous_estimate = job_estimate
        return trace
