"""Phase segmentation of a timeline.

The paper defines a *phase* as "the maximum period of time during which all
tasks are executed simultaneously": every start or end of a task opens a new
phase, tasks within the same phase execute in parallel, and tasks of
different phases execute sequentially (Section 4.2.2).

For the precedence-tree construction we assign each task instance to the
phase in which it *starts*; the sequence of non-empty phases then becomes a
chain of S-operators over P-groups (see
:mod:`repro.core.precedence.builder`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ModelError
from .timeline import Timeline, TimelineEntry


@dataclass(frozen=True)
class Phase:
    """One phase of the timeline."""

    index: int
    start: float
    end: float
    #: Entries whose execution *starts* in this phase.
    starting_entries: tuple[TimelineEntry, ...] = field(default_factory=tuple)
    #: Entries that are executing at any point during this phase.
    active_entries: tuple[TimelineEntry, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ModelError("phase ends before it starts")

    @property
    def duration(self) -> float:
        """Wall-clock length of the phase."""
        return self.end - self.start

    @property
    def parallelism(self) -> int:
        """Number of task instances simultaneously active in this phase."""
        return len(self.active_entries)


def segment_phases(timeline: Timeline) -> list[Phase]:
    """Split ``timeline`` into phases at every task start/end boundary.

    Zero-length boundary intervals (two tasks starting at exactly the same
    time) do not produce empty phases: consecutive boundaries that coincide
    are merged.
    """
    if not timeline.entries:
        return []
    boundaries = timeline.event_times()
    phases: list[Phase] = []
    for index in range(len(boundaries) - 1):
        start = boundaries[index]
        end = boundaries[index + 1]
        if end - start <= 1e-12:
            continue
        starting = tuple(
            entry
            for entry in timeline.entries
            if start - 1e-12 <= entry.start < end - 1e-12
        )
        active = tuple(
            entry
            for entry in timeline.entries
            if entry.start < end - 1e-12 and entry.end > start + 1e-12
        )
        phases.append(
            Phase(
                index=len(phases),
                start=start,
                end=end,
                starting_entries=starting,
                active_entries=active,
            )
        )
    return phases


def phases_with_starts(phases: list[Phase]) -> list[Phase]:
    """Phases in which at least one task instance starts (tree-relevant phases)."""
    return [phase for phase in phases if phase.starting_entries]
