"""Job response-time estimators over the precedence tree (Section 4.2.4).

Two alternative estimators are defined by the paper:

* :class:`TripathiEstimator` — approximates every node's response-time
  distribution by an Erlang (CV <= 1) or hyperexponential (CV > 1)
  distribution; a P-node's distribution is the distribution of the maximum of
  its children, an S-node's the distribution of the sum; the tree is folded
  bottom-up and the root's mean is the job response-time estimate.
* :class:`ForkJoinEstimator` — treats every P-node as a fork/join block and
  uses Varki's harmonic-number estimate ``H_k * max(children)``; with a
  binary tree ``H_2 = 3/2``.  S-nodes sum their children.

Both estimators over-estimate slightly (synchronisation pessimism), with the
fork/join variant being the tighter of the two — exactly the behaviour the
paper reports in its evaluation.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..exceptions import ModelError
from ..queueing.distributions import (
    ResponseTimeDistribution,
    fit_distribution,
    maximum_of,
    sum_of,
)
from ..queueing.forkjoin import forkjoin_response_time
from .precedence.tree import LeafNode, OperatorKind, PrecedenceNode


class EstimatorKind(enum.Enum):
    """Which job-response-time estimator to use."""

    FORK_JOIN = "fork-join"
    TRIPATHI = "tripathi"


@dataclass(frozen=True)
class NodeEstimate:
    """Mean / CV estimate for one precedence-tree node."""

    mean: float
    coefficient_of_variation: float


class ResponseTimeEstimator(ABC):
    """Estimate the response time of a precedence (sub)tree."""

    kind: EstimatorKind

    @abstractmethod
    def estimate_node(self, node: PrecedenceNode) -> NodeEstimate:
        """Mean/CV estimate of an arbitrary tree node."""

    def estimate(self, tree: PrecedenceNode) -> float:
        """Mean response time of the whole tree (the job response time)."""
        return self.estimate_node(tree).mean


class ForkJoinEstimator(ResponseTimeEstimator):
    """Fork/join-based estimator (paper Section 4.2.4, option 2).

    The paper's formula for a (binary) P-node is ``R = H_2 * max(T_l, T_r)``
    with ``H_2 = 3/2``: the larger child response time plus a synchronisation
    premium of one half.  Varki's harmonic bound from which the formula is
    taken is exact for *exponential* branch response times; applying the full
    premium to nearly deterministic branches grossly overstates the
    synchronisation delay (and compounding it over every level of a balanced
    P-subtree overstates it further).  We therefore scale the premium by the
    children's coefficient of variation::

        R_P = max(T_l, T_r) * (1 + (H_2 - 1) * cv_children)

    which reduces to the paper's literal formula for exponential branches
    (``cv = 1``) and to a plain maximum for deterministic ones.  Construct the
    estimator with ``literal=True`` to apply the unscaled paper formula (the
    estimator ablation bench compares both).
    """

    kind = EstimatorKind.FORK_JOIN

    def __init__(self, literal: bool = False) -> None:
        self.literal = literal

    def estimate_node(self, node: PrecedenceNode) -> NodeEstimate:
        if isinstance(node, LeafNode):
            return NodeEstimate(
                mean=node.mean_response_time,
                coefficient_of_variation=node.coefficient_of_variation,
            )
        left = self.estimate_node(node.left)
        right = self.estimate_node(node.right)
        if node.operator is OperatorKind.SERIAL:
            mean = left.mean + right.mean
            # Means add and (assuming independence) so do variances: the CV of
            # the sum shrinks relative to the parts.
            total = left.mean + right.mean
            if total > 0:
                variance = (
                    (left.coefficient_of_variation * left.mean) ** 2
                    + (right.coefficient_of_variation * right.mean) ** 2
                )
                cv = variance**0.5 / total
            else:
                cv = 0.0
            return NodeEstimate(mean=mean, coefficient_of_variation=cv)
        cv_children = max(left.coefficient_of_variation, right.coefficient_of_variation)
        if self.literal:
            mean = forkjoin_response_time([left.mean, right.mean])
        else:
            premium = (forkjoin_response_time([1.0, 1.0]) - 1.0) * min(cv_children, 1.0)
            mean = max(left.mean, right.mean) * (1.0 + premium)
        # Synchronising two branches reduces the relative variability of the
        # combined completion time; 1/sqrt(2) is the i.i.d. averaging factor.
        cv = cv_children / 2**0.5
        return NodeEstimate(mean=mean, coefficient_of_variation=cv)


class TripathiEstimator(ResponseTimeEstimator):
    """Tripathi-based estimator (paper Section 4.2.4, option 1)."""

    kind = EstimatorKind.TRIPATHI

    def _node_distribution(self, node: PrecedenceNode) -> ResponseTimeDistribution:
        if isinstance(node, LeafNode):
            return fit_distribution(
                node.mean_response_time, node.coefficient_of_variation
            )
        left = self._node_distribution(node.left)
        right = self._node_distribution(node.right)
        if node.operator is OperatorKind.SERIAL:
            return sum_of([left, right])
        return maximum_of([left, right])

    def estimate_node(self, node: PrecedenceNode) -> NodeEstimate:
        distribution = self._node_distribution(node)
        return NodeEstimate(
            mean=distribution.mean,
            coefficient_of_variation=distribution.coefficient_of_variation,
        )


def create_estimator(
    kind: EstimatorKind | str, literal_forkjoin: bool = False
) -> ResponseTimeEstimator:
    """Factory: build an estimator from its kind (or kind name).

    ``literal_forkjoin`` selects the unscaled ``H_2 * max`` premium for the
    fork/join estimator (see :class:`ForkJoinEstimator`).
    """
    if isinstance(kind, str):
        try:
            kind = EstimatorKind(kind)
        except ValueError as exc:
            raise ModelError(f"unknown estimator {kind!r}") from exc
    if isinstance(kind, ResponseTimeEstimator):  # pragma: no cover - convenience
        return kind
    if kind is EstimatorKind.FORK_JOIN:
        return ForkJoinEstimator(literal=literal_forkjoin)
    if kind is EstimatorKind.TRIPATHI:
        return TripathiEstimator()
    raise ModelError(f"unknown estimator kind {kind!r}")
