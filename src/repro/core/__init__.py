"""The paper's contribution: the Hadoop 2.x MapReduce performance model.

The model estimates the average response time of MapReduce jobs running
concurrently on a YARN cluster, taking into account

* queueing delays due to contention at shared resources (CPU & memory,
  network), via Mean Value Analysis weighted by overlap factors, and
* synchronisation delays due to precedence constraints between the tasks of
  one job (maps → shuffle-sort → merge), via a precedence tree built from a
  container-allocation timeline.

Pipeline (modified MVA, Figure 4 of the paper):

``A1`` initialise per-task residence and response times →
``A2`` build the timeline and the precedence tree →
``A3`` estimate intra-/inter-job overlap factors →
``A4`` solve the closed queueing network (overlap-weighted MVA) →
``A5`` estimate the job response time over the tree (Tripathi or fork/join) →
``A6`` convergence test (ε = 1e-7), iterate from A2 if not converged.

Entry point: :class:`~repro.core.model.Hadoop2PerformanceModel`.
"""

from .parameters import ModelInput, ServiceCenterName, TaskClass, TaskClassDemands
from .task_instances import TaskInstance, expand_task_instances
from .timeline import Timeline, TimelineEntry, build_timeline
from .phases import Phase, segment_phases
from .precedence import (
    LeafNode,
    OperatorKind,
    OperatorNode,
    PrecedenceNode,
    balance_parallel_subtrees,
    build_precedence_tree,
    tree_depth,
    tree_leaves,
)
from .overlap import compute_intra_job_overlaps, compute_inter_job_overlaps, compute_overlap_factors
from .estimators import (
    EstimatorKind,
    ForkJoinEstimator,
    ResponseTimeEstimator,
    TripathiEstimator,
    create_estimator,
)
from .fast_timeline import TimelinePlacement, place_tasks
from .initialization import InitializationStrategy, initialize_from_herodotou, initialize_from_profile
from .mva_solver import ModifiedMVASolver, Residences, SolverIteration, SolverTrace
from .model import Hadoop2PerformanceModel, PredictionResult
from .complexity import ComplexityReport, estimate_complexity

__all__ = [
    "ModelInput",
    "ServiceCenterName",
    "TaskClass",
    "TaskClassDemands",
    "TaskInstance",
    "expand_task_instances",
    "Timeline",
    "TimelineEntry",
    "TimelinePlacement",
    "build_timeline",
    "place_tasks",
    "Residences",
    "Phase",
    "segment_phases",
    "LeafNode",
    "OperatorKind",
    "OperatorNode",
    "PrecedenceNode",
    "balance_parallel_subtrees",
    "build_precedence_tree",
    "tree_depth",
    "tree_leaves",
    "compute_intra_job_overlaps",
    "compute_inter_job_overlaps",
    "compute_overlap_factors",
    "EstimatorKind",
    "ForkJoinEstimator",
    "ResponseTimeEstimator",
    "TripathiEstimator",
    "create_estimator",
    "InitializationStrategy",
    "initialize_from_herodotou",
    "initialize_from_profile",
    "ModifiedMVASolver",
    "SolverIteration",
    "SolverTrace",
    "Hadoop2PerformanceModel",
    "PredictionResult",
    "ComplexityReport",
    "estimate_complexity",
]
