"""Task instances: the individual tasks the timeline places on nodes.

The analytic model works with *classes* of tasks (map, shuffle-sort, merge)
for the queueing part, but the timeline and the precedence tree need the
individual task instances of one job: ``m`` map instances and ``r`` reduce
instances, each reduce contributing one shuffle-sort and one merge leaf.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .parameters import ModelInput, TaskClass


@dataclass(frozen=True)
class TaskInstance:
    """One task (or reduce subtask) instance of a modelled job."""

    task_class: TaskClass
    index: int
    #: Index of the reduce task this subtask belongs to (shuffle-sort / merge
    #: instances only; ``None`` for maps).
    reduce_index: int | None = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("task index must be non-negative")
        if self.task_class is TaskClass.MAP and self.reduce_index is not None:
            raise ConfigurationError("map instances have no reduce_index")
        if self.task_class is not TaskClass.MAP and self.reduce_index is None:
            raise ConfigurationError(
                f"{self.task_class.value} instances must carry a reduce_index"
            )

    @property
    def label(self) -> str:
        """Short display label, e.g. ``m3`` or ``ss0`` / ``mg0``."""
        prefix = {
            TaskClass.MAP: "m",
            TaskClass.SHUFFLE_SORT: "ss",
            TaskClass.MERGE: "mg",
        }[self.task_class]
        return f"{prefix}{self.index}"


def expand_task_instances(model_input: ModelInput) -> list[TaskInstance]:
    """Enumerate the task instances of one job described by ``model_input``.

    Returns ``num_maps`` map instances followed by, for every reduce task,
    one shuffle-sort and one merge instance.
    """
    instances: list[TaskInstance] = [
        TaskInstance(task_class=TaskClass.MAP, index=i) for i in range(model_input.num_maps)
    ]
    for reduce_index in range(model_input.num_reduces):
        instances.append(
            TaskInstance(
                task_class=TaskClass.SHUFFLE_SORT,
                index=reduce_index,
                reduce_index=reduce_index,
            )
        )
        instances.append(
            TaskInstance(
                task_class=TaskClass.MERGE,
                index=reduce_index,
                reduce_index=reduce_index,
            )
        )
    return instances
