"""Timeline construction — Algorithm 1 of the paper.

The timeline places the task instances of one job onto the cluster nodes,
respecting the Hadoop 2.x container-allocation behaviour identified in the
paper's architecture analysis (Section 3):

* map containers are granted before reduce containers (higher priority);
* each node can host at most ``MaxMapPerNode`` concurrent map containers and
  ``MaxReducePerNode`` concurrent reduce containers;
* containers are handed to the node with the lowest occupancy rate
  (uniform spreading over a homogeneous cluster);
* with **slow start**, the shuffle-sort subtask of a reduce may begin as soon
  as the first map task finishes (``border`` = end of the first map);
  without slow start it begins only after the last map finishes;
* a reduce executing on node ``i`` pays an extra ``sd / |R|`` of shuffle time
  for every map task that ran on a *different* node (remote fetch), where
  ``sd`` is the per-map shuffle transfer time (Algorithm 1, lines 14-18).

One adaptation relative to the paper's pseudo-code: the reduce block is split
into its **shuffle-sort** and **merge** segments (the two reduce subtask
classes of Section 4.1), and — matching the running example of Figures 6-7 —
the merge segment cannot start before the last map task has finished, because
the final sort needs every map output fetched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ConfigurationError, ModelError
from .parameters import ModelInput, TaskClass
from .task_instances import TaskInstance


@dataclass(frozen=True)
class TimelineEntry:
    """Placement of one task instance on the timeline."""

    instance: TaskInstance
    node_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError("timeline entries cannot start before time zero")
        if self.end < self.start:
            raise ConfigurationError("timeline entry ends before it starts")

    @property
    def duration(self) -> float:
        """Wall-clock duration of the entry."""
        return self.end - self.start

    def overlap_with(self, other: "TimelineEntry") -> float:
        """Length of the time interval during which both entries execute."""
        return max(0.0, min(self.end, other.end) - max(self.start, other.start))


@dataclass
class Timeline:
    """A complete placement of one job's task instances."""

    entries: list[TimelineEntry]
    num_nodes: int
    slow_start: bool
    border: float = field(default=0.0)

    @property
    def makespan(self) -> float:
        """Completion time of the last task instance."""
        if not self.entries:
            return 0.0
        return max(entry.end for entry in self.entries)

    def entries_of_class(self, task_class: TaskClass) -> list[TimelineEntry]:
        """Entries belonging to one task class."""
        return [entry for entry in self.entries if entry.instance.task_class is task_class]

    def entry_for(self, instance: TaskInstance) -> TimelineEntry:
        """The entry of a specific task instance."""
        for entry in self.entries:
            if entry.instance == instance:
                return entry
        raise ModelError(f"instance {instance!r} is not on the timeline")

    def busy_time(self, task_class: TaskClass) -> float:
        """Total busy time of all instances of one class."""
        return sum(entry.duration for entry in self.entries_of_class(task_class))

    def last_map_end(self) -> float:
        """Completion time of the last map task."""
        maps = self.entries_of_class(TaskClass.MAP)
        if not maps:
            return 0.0
        return max(entry.end for entry in maps)

    def first_map_end(self) -> float:
        """Completion time of the first map task to finish."""
        maps = self.entries_of_class(TaskClass.MAP)
        if not maps:
            return 0.0
        return min(entry.end for entry in maps)

    def event_times(self) -> list[float]:
        """Sorted distinct start/end times (the phase boundaries)."""
        times = {0.0}
        for entry in self.entries:
            times.add(entry.start)
            times.add(entry.end)
        return sorted(times)


class _NodeLanes:
    """Per-node container lanes with an availability time each."""

    def __init__(self, num_nodes: int, lanes_per_node: int) -> None:
        self._lanes = [[0.0] * lanes_per_node for _ in range(num_nodes)]
        self._assigned = [0] * num_nodes

    def earliest_available(self, node_id: int) -> float:
        """Earliest time a lane of ``node_id`` becomes free."""
        return min(self._lanes[node_id])

    def occupancy(self, node_id: int) -> tuple[float, int, int]:
        """Sort key implementing the "lowest occupancy rate" rule.

        Nodes are compared by earliest lane availability, then by the number
        of tasks already assigned, then by node id (deterministic ties).
        """
        return (self.earliest_available(node_id), self._assigned[node_id], node_id)

    def pick_node(self) -> int:
        """Node with the lowest occupancy."""
        return min(range(len(self._lanes)), key=self.occupancy)

    def reserve(self, node_id: int, earliest_start: float) -> tuple[int, float]:
        """Pick the earliest lane of ``node_id``; return (lane index, actual start).

        ``earliest_start`` is a lower bound (e.g. the slow-start border); the
        actual start is the maximum of the bound and the lane availability.
        The caller must finish the reservation with :meth:`occupy`.
        """
        lanes = self._lanes[node_id]
        lane_index = min(range(len(lanes)), key=lambda i: lanes[i])
        actual_start = max(earliest_start, lanes[lane_index])
        return lane_index, actual_start

    def occupy(self, node_id: int, lane_index: int, until: float) -> None:
        """Mark a lane of ``node_id`` busy until ``until``."""
        self._lanes[node_id][lane_index] = until
        self._assigned[node_id] += 1


def build_timeline(
    model_input: ModelInput,
    map_duration: float,
    shuffle_sort_base_duration: float,
    shuffle_network_duration: float,
    merge_duration: float,
    enforce_merge_after_last_map: bool = True,
) -> Timeline:
    """Construct the timeline of one job (Algorithm 1).

    Parameters
    ----------
    model_input:
        Cluster and workload description (Table 2).
    map_duration:
        Current estimate of the map task response time (``m.d``).
    shuffle_sort_base_duration:
        Portion of the shuffle-sort subtask that does not depend on the
        placement of the maps (local disk + CPU work of the partial sorts).
    shuffle_network_duration:
        Time one reduce task would need to fetch its *entire* input over the
        network; each map located on a different node than the reduce adds
        ``shuffle_network_duration / num_maps`` to the reduce (this is the
        ``m.sd / |R|`` term of Algorithm 1).
    merge_duration:
        Current estimate of the merge subtask response time.
    enforce_merge_after_last_map:
        Keep the merge segment from starting before the last map finishes
        (matches Figures 6-7; set to ``False`` for the literal Algorithm 1
        behaviour).
    """
    for name, value in (
        ("map_duration", map_duration),
        ("shuffle_sort_base_duration", shuffle_sort_base_duration),
        ("shuffle_network_duration", shuffle_network_duration),
        ("merge_duration", merge_duration),
    ):
        if value < 0:
            raise ModelError(f"{name} must be non-negative, got {value}")

    entries: list[TimelineEntry] = []
    map_lanes = _NodeLanes(model_input.num_nodes, model_input.max_maps_per_node)
    reduce_lanes = _NodeLanes(model_input.num_nodes, model_input.max_reduces_per_node)

    # -- lines 4-6: place the map tasks -------------------------------------------
    map_entries: list[TimelineEntry] = []
    for index in range(model_input.num_maps):
        node_id = map_lanes.pick_node()
        lane_index, start = map_lanes.reserve(node_id, 0.0)
        map_lanes.occupy(node_id, lane_index, start + map_duration)
        entry = TimelineEntry(
            instance=TaskInstance(task_class=TaskClass.MAP, index=index),
            node_id=node_id,
            start=start,
            end=start + map_duration,
        )
        map_entries.append(entry)
        entries.append(entry)

    # -- lines 7-11: the slow-start border ------------------------------------------
    if map_entries:
        if model_input.slow_start:
            border = min(entry.end for entry in map_entries)
        else:
            border = max(entry.end for entry in map_entries)
    else:
        border = 0.0
    last_map_end = max((entry.end for entry in map_entries), default=0.0)

    # -- lines 12-21: place the reduce tasks (shuffle-sort + merge segments) --------
    per_map_network = (
        shuffle_network_duration / model_input.num_maps if model_input.num_maps else 0.0
    )
    for reduce_index in range(model_input.num_reduces):
        node_id = reduce_lanes.pick_node()
        remote_maps = sum(1 for entry in map_entries if entry.node_id != node_id)
        shuffle_duration = shuffle_sort_base_duration + remote_maps * per_map_network
        lane_index, shuffle_start = reduce_lanes.reserve(node_id, border)
        shuffle_end = shuffle_start + shuffle_duration
        if enforce_merge_after_last_map:
            shuffle_end = max(shuffle_end, last_map_end)
        merge_start = shuffle_end
        merge_end = merge_start + merge_duration
        reduce_lanes.occupy(node_id, lane_index, merge_end)
        entries.append(
            TimelineEntry(
                instance=TaskInstance(
                    task_class=TaskClass.SHUFFLE_SORT,
                    index=reduce_index,
                    reduce_index=reduce_index,
                ),
                node_id=node_id,
                start=shuffle_start,
                end=shuffle_end,
            )
        )
        entries.append(
            TimelineEntry(
                instance=TaskInstance(
                    task_class=TaskClass.MERGE,
                    index=reduce_index,
                    reduce_index=reduce_index,
                ),
                node_id=node_id,
                start=merge_start,
                end=merge_end,
            )
        )

    return Timeline(
        entries=entries,
        num_nodes=model_input.num_nodes,
        slow_start=model_input.slow_start,
        border=border,
    )
