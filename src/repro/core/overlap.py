"""Intra- and inter-job overlap factors (paper Section 4.2.3).

The queueing delay a class-``i`` task suffers from class-``j`` tasks is
proportional to how much the two classes actually execute concurrently
(Mak & Lundstrom).  We compute:

* ``alpha[i][j]`` (**intra-job**): the expected number of class-``j`` tasks of
  the *same job* executing concurrently with a class-``i`` task, normalised
  by the class-``j`` population — i.e. the fraction of the class-``j``
  population a running class-``i`` task competes with, averaged over the
  class-``i`` busy time.  Computed exactly from the timeline.
* ``beta[i][j]`` (**inter-job**): the same quantity for tasks of a *different*
  job.  Concurrent jobs submitted together execute the same timeline shifted
  by their queueing delays; lacking per-job timelines, we approximate the
  probability that a class-``j`` task of another job is active at a random
  instant of the workload by the class-``j`` utilisation of the timeline
  (busy time / makespan, capped at 1).  This is the classical
  "independent-phases" approximation.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ModelError
from ..queueing.mva_overlap import OverlapFactors
from .parameters import TaskClass
from .timeline import Timeline


def _pairwise_overlap_seconds(timeline: Timeline, class_i: TaskClass, class_j: TaskClass) -> float:
    """Total overlap seconds between class-i entries and class-j entries.

    For ``i == j`` the overlap of an entry with itself is excluded.
    """
    entries_i = timeline.entries_of_class(class_i)
    entries_j = timeline.entries_of_class(class_j)
    total = 0.0
    for entry_i in entries_i:
        for entry_j in entries_j:
            if class_i is class_j and entry_i.instance == entry_j.instance:
                continue
            total += entry_i.overlap_with(entry_j)
    return total


def compute_intra_job_overlaps(timeline: Timeline) -> np.ndarray:
    """Intra-job overlap matrix ``alpha`` computed from one job's timeline.

    ``alpha[i, j] = overlap_seconds(i, j) / (busy_time(i) * population(j))``
    where ``population(j)`` excludes the task itself when ``i == j``.  The
    value is the average *fraction of the class-j population* concurrently
    executing with a class-i task, and lies in ``[0, 1]``.
    """
    classes = TaskClass.ordered()
    alpha = np.zeros((len(classes), len(classes)))
    for row, class_i in enumerate(classes):
        busy_i = timeline.busy_time(class_i)
        if busy_i <= 0:
            continue
        for col, class_j in enumerate(classes):
            population_j = len(timeline.entries_of_class(class_j))
            if class_i is class_j:
                population_j -= 1
            if population_j <= 0:
                continue
            overlap_seconds = _pairwise_overlap_seconds(timeline, class_i, class_j)
            alpha[row, col] = overlap_seconds / (busy_i * population_j)
    return np.clip(alpha, 0.0, 1.0)


def compute_inter_job_overlaps(timeline: Timeline) -> np.ndarray:
    """Inter-job overlap matrix ``beta`` (independent-phases approximation).

    ``beta[i, j]`` is the probability that a given class-``j`` task of another
    job is executing at a random instant during a class-``i`` task of this
    job.  With statistically identical, concurrently executing jobs this is
    approximated by the per-task utilisation of class ``j`` on the timeline:
    ``busy_time(j) / (population(j) * makespan)`` — independent of ``i``.
    """
    classes = TaskClass.ordered()
    beta = np.zeros((len(classes), len(classes)))
    makespan = timeline.makespan
    if makespan <= 0:
        return beta
    for col, class_j in enumerate(classes):
        population_j = len(timeline.entries_of_class(class_j))
        if population_j == 0:
            continue
        utilisation = timeline.busy_time(class_j) / (population_j * makespan)
        beta[:, col] = utilisation
    return np.clip(beta, 0.0, 1.0)


def compute_overlap_factors(timeline: Timeline) -> OverlapFactors:
    """Bundle the intra- and inter-job matrices into :class:`OverlapFactors`.

    Raises
    ------
    ModelError
        If the timeline is empty (no overlap can be defined).
    """
    if not timeline.entries:
        raise ModelError("cannot compute overlap factors of an empty timeline")
    class_names = tuple(cls.value for cls in TaskClass.ordered())
    return OverlapFactors(
        class_names=class_names,
        intra_job=compute_intra_job_overlaps(timeline),
        inter_job=compute_inter_job_overlaps(timeline),
    )
