"""Precedence-tree node types.

Two node kinds exist:

* :class:`LeafNode` — a task instance with its (current) mean response time
  and coefficient of variation;
* :class:`OperatorNode` — an internal node combining exactly two children
  with either the serial (``S``) or parallel-and (``P``) operator, keeping
  the tree binary as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from ...exceptions import ModelError
from ..parameters import TaskClass
from ..task_instances import TaskInstance


class OperatorKind(enum.Enum):
    """Operator of an internal precedence-tree node."""

    SERIAL = "S"
    PARALLEL = "P"


@dataclass(frozen=True)
class LeafNode:
    """A leaf: one task instance with its response-time statistics."""

    instance: TaskInstance
    mean_response_time: float
    coefficient_of_variation: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_response_time < 0:
            raise ModelError("leaf response time must be non-negative")
        if self.coefficient_of_variation < 0:
            raise ModelError("leaf CV must be non-negative")

    @property
    def task_class(self) -> TaskClass:
        """Task class of the leaf's instance."""
        return self.instance.task_class

    @property
    def label(self) -> str:
        """Short display label of the leaf."""
        return self.instance.label


@dataclass(frozen=True)
class OperatorNode:
    """An internal node combining two subtrees with S or P semantics."""

    operator: OperatorKind
    left: "PrecedenceNode"
    right: "PrecedenceNode"

    @property
    def children(self) -> tuple["PrecedenceNode", "PrecedenceNode"]:
        """The two children as a tuple."""
        return (self.left, self.right)

    @property
    def label(self) -> str:
        """Operator symbol (``S`` or ``P``)."""
        return self.operator.value


#: A precedence-tree node is either a leaf or an operator node.
PrecedenceNode = Union[LeafNode, OperatorNode]


def render_tree(node: PrecedenceNode, indent: int = 0) -> str:
    """ASCII rendering of a precedence tree (used by examples and __repr__ dumps)."""
    pad = "  " * indent
    if isinstance(node, LeafNode):
        return f"{pad}{node.label} ({node.mean_response_time:.2f}s)"
    lines = [f"{pad}{node.label}"]
    lines.append(render_tree(node.left, indent + 1))
    lines.append(render_tree(node.right, indent + 1))
    return "\n".join(lines)
