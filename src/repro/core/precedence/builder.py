"""Precedence-tree construction from a timeline.

Following Section 4.2.2 of the paper, the timeline determines which task
instances execute in parallel and which sequentially, and the tree is built
with binary P and S operators (unique up to isomorphism for a given
timeline).  The concrete construction used here:

1. **Cut points.**  A time ``t`` is a cut point when no task instance is
   strictly executing across it (every instance either ends at or before
   ``t`` or starts at or after ``t``).  Cut points split the timeline into
   *segments*; instances of different segments execute strictly
   sequentially, so segments are chained with S operators.
2. **Chains.**  Within a segment, the subtasks of one reduce task
   (shuffle-sort followed by merge) execute sequentially and form an S-chain;
   every map instance forms a singleton chain.
3. **Parallel groups.**  The chains of a segment execute concurrently and are
   combined into a balanced binary P-subtree (the balancing procedure the
   paper applies to limit the maximal tree depth; ``balanced=False`` produces
   the left-deep variant used by the balancing ablation).

Compared to a naive "group by identical start time" construction, using cut
points guarantees that two *overlapping* instances are never placed under an
S operator, which would double-count their execution time.
"""

from __future__ import annotations

from ...exceptions import ModelError
from ..parameters import TaskClass
from ..timeline import Timeline, TimelineEntry
from .balancer import balanced_parallel_tree, left_deep_parallel_tree
from .tree import LeafNode, OperatorKind, OperatorNode, PrecedenceNode

#: Numerical tolerance when comparing timeline instants.
_TIME_EPSILON = 1e-9


def _cut_points(entries: list[TimelineEntry]) -> list[float]:
    """Sorted times that no entry strictly spans (segment boundaries)."""
    candidates = sorted({entry.start for entry in entries} | {entry.end for entry in entries})
    cuts = []
    for time in candidates:
        spanning = any(
            entry.start < time - _TIME_EPSILON and entry.end > time + _TIME_EPSILON
            for entry in entries
        )
        if not spanning:
            cuts.append(time)
    return cuts


def _segments(entries: list[TimelineEntry]) -> list[list[TimelineEntry]]:
    """Partition entries into maximal groups separated by cut points."""
    cuts = _cut_points(entries)
    segments: list[list[TimelineEntry]] = []
    for index in range(len(cuts) - 1):
        lower = cuts[index]
        upper = cuts[index + 1]
        members = [
            entry
            for entry in entries
            if entry.start >= lower - _TIME_EPSILON and entry.end <= upper + _TIME_EPSILON
            # Zero-length entries sitting exactly on a boundary belong to the
            # segment that starts there (avoids duplicating them).
            and (entry.start < upper - _TIME_EPSILON or lower == upper)
        ]
        if members:
            segments.append(members)
    # Zero-duration instances sitting exactly on the final boundary (or
    # floating-point pathologies) may escape the interval test above; attach
    # them as a trailing segment instead of losing them.
    captured_ids = {
        id(entry) for segment in segments for entry in segment
    }
    leftovers = [entry for entry in entries if id(entry) not in captured_ids]
    if leftovers:
        segments.append(leftovers)
    return segments


def _chain_key(entry: TimelineEntry) -> tuple:
    """Key grouping entries that execute sequentially within a segment."""
    instance = entry.instance
    if instance.task_class is TaskClass.MAP:
        return ("map", instance.index)
    return ("reduce", instance.reduce_index)


def _build_chain(
    entries: list[TimelineEntry],
    cv_by_class: dict[TaskClass, float],
) -> PrecedenceNode:
    """S-chain the entries of one chain (sorted by start time)."""
    ordered = sorted(entries, key=lambda entry: (entry.start, entry.instance.task_class.value))
    nodes: list[PrecedenceNode] = [
        LeafNode(
            instance=entry.instance,
            mean_response_time=entry.duration,
            coefficient_of_variation=cv_by_class.get(entry.instance.task_class, 0.0),
        )
        for entry in ordered
    ]
    chain = nodes[0]
    for node in nodes[1:]:
        chain = OperatorNode(operator=OperatorKind.SERIAL, left=chain, right=node)
    return chain


def build_precedence_tree(
    timeline: Timeline,
    coefficient_of_variation: dict[TaskClass, float] | None = None,
    balanced: bool = True,
) -> PrecedenceNode:
    """Build the (binary) precedence tree of ``timeline``.

    Parameters
    ----------
    timeline:
        Placement of one job's task instances.
    coefficient_of_variation:
        Optional per-class CV attached to the leaves (used by the Tripathi
        estimator and the fork/join premium); defaults to 0 (deterministic
        leaves).
    balanced:
        Build each P-group as a balanced subtree (paper default).  Setting it
        to ``False`` produces left-deep P-chains, used by the balancing
        ablation bench.

    Raises
    ------
    ModelError
        If the timeline has no entries.
    """
    if not timeline.entries:
        raise ModelError("cannot build a precedence tree from an empty timeline")
    cv_by_class = coefficient_of_variation or {}

    groups: list[PrecedenceNode] = []
    for segment in _segments(timeline.entries):
        chains: dict[tuple, list[TimelineEntry]] = {}
        for entry in segment:
            chains.setdefault(_chain_key(entry), []).append(entry)
        chain_nodes = [
            _build_chain(entries, cv_by_class)
            for _, entries in sorted(chains.items(), key=lambda item: item[0])
        ]
        if balanced:
            groups.append(balanced_parallel_tree(chain_nodes))
        else:
            groups.append(left_deep_parallel_tree(chain_nodes))

    if not groups:
        raise ModelError("timeline produced no segments")
    tree = groups[0]
    for group in groups[1:]:
        tree = OperatorNode(operator=OperatorKind.SERIAL, left=tree, right=group)
    return tree
