"""Balancing of parallel subtrees.

A phase with ``k`` parallel task instances must be expressed with binary
P-operators.  A naive left-deep chain has depth ``k - 1``; the paper observes
(Section 5.2) that the estimation error grows with the maximal depth of the
precedence tree and therefore balances each P-subtree.  This module provides
both constructions so the ablation bench can quantify the difference.
"""

from __future__ import annotations

from collections.abc import Sequence

from ...exceptions import ModelError
from .tree import LeafNode, OperatorKind, OperatorNode, PrecedenceNode


def left_deep_parallel_tree(nodes: Sequence[PrecedenceNode]) -> PrecedenceNode:
    """Combine ``nodes`` with P-operators into a left-deep (unbalanced) chain."""
    if not nodes:
        raise ModelError("cannot build a parallel tree from zero nodes")
    result = nodes[0]
    for node in nodes[1:]:
        result = OperatorNode(operator=OperatorKind.PARALLEL, left=result, right=node)
    return result


def balanced_parallel_tree(nodes: Sequence[PrecedenceNode]) -> PrecedenceNode:
    """Combine ``nodes`` with P-operators into a balanced binary tree.

    The resulting depth is ``ceil(log2(k))`` instead of ``k - 1``, which is
    the balancing procedure the paper applies to every P-subtree.
    """
    if not nodes:
        raise ModelError("cannot build a parallel tree from zero nodes")
    current: list[PrecedenceNode] = list(nodes)
    while len(current) > 1:
        paired: list[PrecedenceNode] = []
        for index in range(0, len(current) - 1, 2):
            paired.append(
                OperatorNode(
                    operator=OperatorKind.PARALLEL,
                    left=current[index],
                    right=current[index + 1],
                )
            )
        if len(current) % 2 == 1:
            paired.append(current[-1])
        current = paired
    return current[0]


def balance_parallel_subtrees(node: PrecedenceNode) -> PrecedenceNode:
    """Rebalance every maximal P-subtree of an existing tree.

    S-nodes are preserved; each maximal run of P-connected subtrees is
    collected and re-combined with :func:`balanced_parallel_tree`.
    """
    if isinstance(node, LeafNode):
        return node
    if node.operator is OperatorKind.SERIAL:
        return OperatorNode(
            operator=OperatorKind.SERIAL,
            left=balance_parallel_subtrees(node.left),
            right=balance_parallel_subtrees(node.right),
        )
    members = _collect_parallel_members(node)
    balanced_members = [balance_parallel_subtrees(member) for member in members]
    return balanced_parallel_tree(balanced_members)


def _collect_parallel_members(node: PrecedenceNode) -> list[PrecedenceNode]:
    """Flatten a maximal P-connected subtree into its non-P members."""
    if isinstance(node, OperatorNode) and node.operator is OperatorKind.PARALLEL:
        return _collect_parallel_members(node.left) + _collect_parallel_members(node.right)
    return [node]
