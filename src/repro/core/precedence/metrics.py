"""Structural metrics over precedence trees (depth, leaves, isomorphism)."""

from __future__ import annotations

from ..parameters import TaskClass
from .tree import LeafNode, OperatorKind, PrecedenceNode


def tree_depth(node: PrecedenceNode) -> int:
    """Depth of the tree (a single leaf has depth 0)."""
    if isinstance(node, LeafNode):
        return 0
    return 1 + max(tree_depth(node.left), tree_depth(node.right))


def tree_leaves(node: PrecedenceNode) -> list[LeafNode]:
    """All leaves of the tree in left-to-right order."""
    if isinstance(node, LeafNode):
        return [node]
    return tree_leaves(node.left) + tree_leaves(node.right)


def tree_operator_counts(node: PrecedenceNode) -> dict[OperatorKind, int]:
    """Number of S and P operator nodes in the tree."""
    counts = {OperatorKind.SERIAL: 0, OperatorKind.PARALLEL: 0}

    def visit(current: PrecedenceNode) -> None:
        if isinstance(current, LeafNode):
            return
        counts[current.operator] += 1
        visit(current.left)
        visit(current.right)

    visit(node)
    return counts


def leaves_per_class(node: PrecedenceNode) -> dict[TaskClass, int]:
    """Number of leaves per task class."""
    counts: dict[TaskClass, int] = {cls: 0 for cls in TaskClass}
    for leaf in tree_leaves(node):
        counts[leaf.task_class] += 1
    return counts


def _canonical_form(node: PrecedenceNode) -> tuple:
    """Order-insensitive canonical form used for isomorphism checks.

    Leaves are reduced to their task class (instance indices are irrelevant
    for isomorphism); children of a node are sorted by their canonical form,
    which makes the comparison insensitive to left/right swaps.
    """
    if isinstance(node, LeafNode):
        return ("leaf", node.task_class.value)
    children = sorted((_canonical_form(node.left), _canonical_form(node.right)))
    return (node.operator.value, children[0], children[1])


def trees_isomorphic(first: PrecedenceNode, second: PrecedenceNode) -> bool:
    """Whether two precedence trees are isomorphic (up to child order and task ids)."""
    return _canonical_form(first) == _canonical_form(second)
