"""Precedence trees: structure, construction, balancing, and metrics.

A precedence tree (paper Section 4.2.2) is a binary tree whose leaves are
task instances and whose internal nodes are either **S** (serial) or **P**
(parallel-and) operators.  It captures the execution flow of one job:
instances under a P-node run in parallel, children of an S-node run one after
the other.
"""

from .tree import LeafNode, OperatorKind, OperatorNode, PrecedenceNode
from .builder import build_precedence_tree
from .balancer import balance_parallel_subtrees, balanced_parallel_tree
from .metrics import tree_depth, tree_leaves, tree_operator_counts, trees_isomorphic

__all__ = [
    "LeafNode",
    "OperatorKind",
    "OperatorNode",
    "PrecedenceNode",
    "build_precedence_tree",
    "balance_parallel_subtrees",
    "balanced_parallel_tree",
    "tree_depth",
    "tree_leaves",
    "tree_operator_counts",
    "trees_isomorphic",
]
