"""Public facade of the Hadoop 2.x performance model.

:class:`Hadoop2PerformanceModel` bundles a :class:`~repro.core.parameters.ModelInput`
with the solver configuration and exposes :meth:`predict` /
:meth:`predict_all`, returning :class:`PredictionResult` objects that carry
the job response-time estimate together with diagnostic information
(per-class response times, precedence-tree depth, iteration count).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ModelError
from .estimators import EstimatorKind
from .mva_solver import (
    DEFAULT_EPSILON,
    DEFAULT_MAX_ITERATIONS,
    ModifiedMVASolver,
    Residences,
    SolverTrace,
)
from .parameters import ModelInput, TaskClass
from .precedence.metrics import tree_depth, tree_leaves


@dataclass(frozen=True)
class PredictionResult:
    """Outcome of one model evaluation."""

    estimator: EstimatorKind
    job_response_time: float
    class_response_times: dict[TaskClass, float]
    iterations: int
    converged: bool
    tree_depth: int
    num_leaves: int
    timeline_makespan: float

    def summary(self) -> str:
        """One-line human-readable summary."""
        classes = ", ".join(
            f"{task_class.value}={seconds:.2f}s"
            for task_class, seconds in self.class_response_times.items()
        )
        return (
            f"[{self.estimator.value}] job={self.job_response_time:.2f}s "
            f"({classes}; iterations={self.iterations}, depth={self.tree_depth})"
        )


class Hadoop2PerformanceModel:
    """The paper's performance model for MapReduce on Hadoop 2.x."""

    def __init__(
        self,
        model_input: ModelInput,
        epsilon: float = DEFAULT_EPSILON,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        balanced_tree: bool = True,
        enforce_merge_after_last_map: bool = True,
        fast_timeline: bool = False,
    ) -> None:
        self.model_input = model_input
        self.epsilon = epsilon
        self.max_iterations = max_iterations
        self.balanced_tree = balanced_tree
        self.enforce_merge_after_last_map = enforce_merge_after_last_map
        self.fast_timeline = fast_timeline
        self._traces: dict[EstimatorKind, SolverTrace] = {}

    def _solver(self, estimator: EstimatorKind | str) -> ModifiedMVASolver:
        return ModifiedMVASolver(
            estimator=estimator,
            epsilon=self.epsilon,
            max_iterations=self.max_iterations,
            balanced_tree=self.balanced_tree,
            enforce_merge_after_last_map=self.enforce_merge_after_last_map,
            fast_timeline=self.fast_timeline,
        )

    def predict(
        self,
        estimator: EstimatorKind | str = EstimatorKind.FORK_JOIN,
        initial_response_times: dict[TaskClass, float] | None = None,
        initial_residences: Residences | None = None,
    ) -> PredictionResult:
        """Estimate the average job response time with one estimator.

        ``initial_residences`` warm-starts the solver from a neighbouring
        solve's converged state (see :meth:`ModifiedMVASolver.solve`); the
        converged state of this solve is available through :meth:`trace`.
        """
        if isinstance(estimator, str):
            estimator = EstimatorKind(estimator)
        solver = self._solver(estimator)
        trace = solver.solve(
            self.model_input, initial_response_times, initial_residences
        )
        self._traces[estimator] = trace
        if trace.final_tree is None or trace.final_timeline is None:
            raise ModelError("solver finished without producing a tree")
        return PredictionResult(
            estimator=estimator,
            job_response_time=trace.job_response_time,
            class_response_times=trace.class_response_times,
            iterations=trace.num_iterations,
            converged=trace.converged,
            tree_depth=tree_depth(trace.final_tree),
            num_leaves=len(tree_leaves(trace.final_tree)),
            timeline_makespan=trace.final_timeline.makespan,
        )

    def predict_all(
        self,
        initial_response_times: dict[TaskClass, float] | None = None,
    ) -> dict[EstimatorKind, PredictionResult]:
        """Run both estimators (fork/join and Tripathi) on the same input."""
        return {
            kind: self.predict(kind, initial_response_times)
            for kind in (EstimatorKind.FORK_JOIN, EstimatorKind.TRIPATHI)
        }

    def trace(self, estimator: EstimatorKind | str) -> SolverTrace:
        """Solver trace of the last :meth:`predict` call for ``estimator``."""
        if isinstance(estimator, str):
            estimator = EstimatorKind(estimator)
        if estimator not in self._traces:
            raise ModelError(
                f"no prediction has been computed yet with the {estimator.value} estimator"
            )
        return self._traces[estimator]
