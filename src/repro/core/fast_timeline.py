"""Array-based timeline placement — the batched twin of :mod:`.timeline`.

:func:`build_timeline` places every task instance through a per-instance
greedy loop (``pick_node`` scans all lanes of all nodes for each of the
``num_maps`` map tasks), which makes the A2/A5 placement the dominant cost of
a solver iteration once grids grow past a few dozen maps.  This module
computes the *same placement* directly:

* **Maps** are provably placed in round-robin waves: with identical map
  durations, the "lowest occupancy rate" rule degenerates to node
  ``k mod num_nodes`` and wave ``k // (num_nodes * max_maps_per_node)`` for
  the ``k``-th map.  Wave start times are accumulated (``start + duration``
  per wave) exactly as the lane bookkeeping would, so the placement is
  bit-identical to the loop's.
* **Reduces** keep the greedy loop (their count is small and their durations
  differ per node through the remote-fetch term), but run it over plain
  per-node availability lists instead of generic lane objects.

The resulting :class:`TimelinePlacement` answers the two questions the MVA
solver asks of a timeline — the overlap factors (vectorised with NumPy
instead of the O(entries²) Python double loop) and the full
:class:`~repro.core.timeline.Timeline` for the precedence tree (materialised
once per iteration, with entries identical to :func:`build_timeline`'s).

Scalar-path equivalence is pinned by ``tests/test_fast_timeline.py``: the
placement matches entry for entry (same floats), and the overlap matrices
match to floating-point summation order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ModelError
from ..queueing.mva_overlap import OverlapFactors
from .parameters import ModelInput, TaskClass
from .task_instances import TaskInstance
from .timeline import Timeline, TimelineEntry


def _overlap_sum(
    starts_a: np.ndarray,
    ends_a: np.ndarray,
    starts_b: np.ndarray,
    ends_b: np.ndarray,
) -> float:
    """Total pairwise overlap seconds between two interval families."""
    if not len(starts_a) or not len(starts_b):
        return 0.0
    overlap = np.minimum(ends_a[:, None], ends_b[None, :]) - np.maximum(
        starts_a[:, None], starts_b[None, :]
    )
    return float(np.clip(overlap, 0.0, None).sum())


@dataclass
class TimelinePlacement:
    """Array form of one job's timeline (same placement as Algorithm 1).

    Map entries are stored wave-compressed (``map_wave_starts`` /
    ``map_wave_counts``) because every map of a wave shares the same
    interval; reduce subtask entries are stored per instance.
    """

    num_nodes: int
    slow_start: bool
    border: float
    last_map_end: float
    map_duration: float
    #: Start time of each map wave (ascending), and maps per wave.
    map_wave_starts: np.ndarray
    map_wave_counts: np.ndarray
    #: Node of the ``k``-th map task (round-robin).
    map_nodes: np.ndarray
    #: Per-reduce shuffle-sort and merge intervals (aligned arrays).
    shuffle_starts: np.ndarray
    shuffle_ends: np.ndarray
    merge_ends: np.ndarray
    reduce_nodes: np.ndarray

    # -- derived interval views ------------------------------------------------

    @property
    def num_maps(self) -> int:
        return len(self.map_nodes)

    @property
    def num_reduces(self) -> int:
        return len(self.reduce_nodes)

    def map_starts(self) -> np.ndarray:
        """Per-map start times (wave starts expanded to instances)."""
        return np.repeat(self.map_wave_starts, self.map_wave_counts)

    @property
    def makespan(self) -> float:
        """Completion time of the last task instance."""
        values = [self.last_map_end]
        if len(self.merge_ends):
            values.append(float(self.merge_ends.max()))
        return max(values)

    # -- overlap factors (A3) --------------------------------------------------

    def _class_intervals(self, task_class: TaskClass) -> tuple[np.ndarray, np.ndarray]:
        if task_class is TaskClass.MAP:
            starts = self.map_starts()
            return starts, starts + self.map_duration
        if task_class is TaskClass.SHUFFLE_SORT:
            return self.shuffle_starts, self.shuffle_ends
        return self.shuffle_ends, self.merge_ends

    def overlap_factors(self) -> OverlapFactors:
        """Overlap matrices, equivalent to :func:`~repro.core.overlap.compute_overlap_factors`.

        The intra-job matrix sums pairwise interval overlaps with NumPy
        broadcasting (map×map overlaps use the wave compression:
        ``counts ⊗ counts`` weighted wave-pair overlaps) instead of the
        scalar path's Python double loop; the self-overlap of an instance is
        subtracted from diagonal entries exactly as the scalar path skips it.
        """
        classes = TaskClass.ordered()
        intervals = {cls: self._class_intervals(cls) for cls in classes}
        durations = {
            cls: float((intervals[cls][1] - intervals[cls][0]).sum()) for cls in classes
        }
        populations = {
            cls: (self.num_maps if cls is TaskClass.MAP else self.num_reduces)
            for cls in classes
        }
        if not any(populations.values()):
            raise ModelError("cannot compute overlap factors of an empty timeline")

        def pair_overlap(class_i: TaskClass, class_j: TaskClass) -> float:
            if class_i is TaskClass.MAP and class_j is TaskClass.MAP:
                # Wave-compressed: all maps of a wave share one interval.
                wave_ends = self.map_wave_starts + self.map_duration
                overlap = np.clip(
                    np.minimum(wave_ends[:, None], wave_ends[None, :])
                    - np.maximum(
                        self.map_wave_starts[:, None], self.map_wave_starts[None, :]
                    ),
                    0.0,
                    None,
                )
                counts = self.map_wave_counts.astype(float)
                total = float(counts @ overlap @ counts)
            elif class_i is TaskClass.MAP or class_j is TaskClass.MAP:
                other = class_j if class_i is TaskClass.MAP else class_i
                wave_ends = self.map_wave_starts + self.map_duration
                starts_o, ends_o = intervals[other]
                if not len(starts_o):
                    return 0.0
                overlap = np.clip(
                    np.minimum(wave_ends[:, None], ends_o[None, :])
                    - np.maximum(self.map_wave_starts[:, None], starts_o[None, :]),
                    0.0,
                    None,
                )
                total = float(self.map_wave_counts.astype(float) @ overlap.sum(axis=1))
            else:
                total = _overlap_sum(*intervals[class_i], *intervals[class_j])
            if class_i is class_j:
                # The scalar path skips an entry's overlap with itself.
                total -= durations[class_i]
            return total

        size = len(classes)
        alpha = np.zeros((size, size))
        beta = np.zeros((size, size))
        makespan = self.makespan
        for row, class_i in enumerate(classes):
            busy_i = durations[class_i]
            for col, class_j in enumerate(classes):
                population_j = populations[class_j]
                if class_i is class_j:
                    population_j -= 1
                if busy_i > 0 and population_j > 0:
                    alpha[row, col] = pair_overlap(class_i, class_j) / (
                        busy_i * population_j
                    )
                if makespan > 0 and populations[class_j] > 0:
                    beta[row, col] = durations[class_j] / (
                        populations[class_j] * makespan
                    )
        return OverlapFactors(
            class_names=tuple(cls.value for cls in classes),
            intra_job=np.clip(alpha, 0.0, 1.0),
            inter_job=np.clip(beta, 0.0, 1.0),
        )

    # -- materialisation (A5) --------------------------------------------------

    def to_timeline(self) -> Timeline:
        """Materialise the full :class:`Timeline` (for the precedence tree).

        Entries are constructed in :func:`build_timeline`'s order — maps by
        index, then shuffle-sort/merge pairs by reduce index — with identical
        node assignments and instants.
        """
        entries: list[TimelineEntry] = []
        map_starts = self.map_starts()
        for index in range(self.num_maps):
            start = float(map_starts[index])
            entries.append(
                TimelineEntry(
                    instance=TaskInstance(task_class=TaskClass.MAP, index=index),
                    node_id=int(self.map_nodes[index]),
                    start=start,
                    end=start + self.map_duration,
                )
            )
        for reduce_index in range(self.num_reduces):
            node_id = int(self.reduce_nodes[reduce_index])
            shuffle_start = float(self.shuffle_starts[reduce_index])
            shuffle_end = float(self.shuffle_ends[reduce_index])
            merge_end = float(self.merge_ends[reduce_index])
            entries.append(
                TimelineEntry(
                    instance=TaskInstance(
                        task_class=TaskClass.SHUFFLE_SORT,
                        index=reduce_index,
                        reduce_index=reduce_index,
                    ),
                    node_id=node_id,
                    start=shuffle_start,
                    end=shuffle_end,
                )
            )
            entries.append(
                TimelineEntry(
                    instance=TaskInstance(
                        task_class=TaskClass.MERGE,
                        index=reduce_index,
                        reduce_index=reduce_index,
                    ),
                    node_id=node_id,
                    start=shuffle_end,
                    end=merge_end,
                )
            )
        return Timeline(
            entries=entries,
            num_nodes=self.num_nodes,
            slow_start=self.slow_start,
            border=self.border,
        )


def place_tasks(
    model_input: ModelInput,
    map_duration: float,
    shuffle_sort_base_duration: float,
    shuffle_network_duration: float,
    merge_duration: float,
    enforce_merge_after_last_map: bool = True,
) -> TimelinePlacement:
    """Compute :func:`build_timeline`'s placement without the per-map loop.

    Takes the same duration estimates as :func:`build_timeline` and produces
    the same placement (see the module docstring for why the round-robin
    closed form is exact).
    """
    for name, value in (
        ("map_duration", map_duration),
        ("shuffle_sort_base_duration", shuffle_sort_base_duration),
        ("shuffle_network_duration", shuffle_network_duration),
        ("merge_duration", merge_duration),
    ):
        if value < 0:
            raise ModelError(f"{name} must be non-negative, got {value}")

    num_nodes = model_input.num_nodes
    num_maps = model_input.num_maps
    num_reduces = model_input.num_reduces
    map_capacity = num_nodes * model_input.max_maps_per_node

    # Maps: round-robin waves; wave starts accumulate like lane bookkeeping
    # (``start + duration`` per wave) so the floats match the scalar path.
    num_waves = -(-num_maps // map_capacity)
    wave_starts = np.empty(num_waves)
    start = 0.0
    for wave in range(num_waves):
        wave_starts[wave] = start
        start = start + map_duration
    wave_counts = np.full(num_waves, map_capacity, dtype=int)
    wave_counts[-1] = num_maps - map_capacity * (num_waves - 1)
    map_nodes = np.arange(num_maps, dtype=int) % num_nodes
    maps_per_node = np.bincount(map_nodes, minlength=num_nodes)
    last_map_end = float(wave_starts[-1]) + map_duration
    border = map_duration if model_input.slow_start else last_map_end

    # Reduces: the greedy loop of Algorithm 1 over flat per-node lane lists.
    per_map_network = shuffle_network_duration / num_maps if num_maps else 0.0
    lanes = [[0.0] * model_input.max_reduces_per_node for _ in range(num_nodes)]
    assigned = [0] * num_nodes
    node_range = range(num_nodes)
    shuffle_durations = [
        shuffle_sort_base_duration + (num_maps - int(maps_per_node[node])) * per_map_network
        for node in node_range
    ]
    shuffle_starts = np.empty(num_reduces)
    shuffle_ends = np.empty(num_reduces)
    merge_ends = np.empty(num_reduces)
    reduce_nodes = np.empty(num_reduces, dtype=int)
    for reduce_index in range(num_reduces):
        node_id = min(node_range, key=lambda j: (min(lanes[j]), assigned[j], j))
        node_lanes = lanes[node_id]
        lane_index = min(
            range(len(node_lanes)), key=lambda i: node_lanes[i]
        )
        shuffle_start = max(border, node_lanes[lane_index])
        shuffle_end = shuffle_start + shuffle_durations[node_id]
        if enforce_merge_after_last_map:
            shuffle_end = max(shuffle_end, last_map_end)
        merge_end = shuffle_end + merge_duration
        node_lanes[lane_index] = merge_end
        assigned[node_id] += 1
        shuffle_starts[reduce_index] = shuffle_start
        shuffle_ends[reduce_index] = shuffle_end
        merge_ends[reduce_index] = merge_end
        reduce_nodes[reduce_index] = node_id

    return TimelinePlacement(
        num_nodes=num_nodes,
        slow_start=model_input.slow_start,
        border=border,
        last_map_end=last_map_end,
        map_duration=map_duration,
        map_wave_starts=wave_starts,
        map_wave_counts=wave_counts,
        map_nodes=map_nodes,
        shuffle_starts=shuffle_starts,
        shuffle_ends=shuffle_ends,
        merge_ends=merge_ends,
        reduce_nodes=reduce_nodes,
    )
