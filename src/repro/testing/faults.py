"""Deterministic fault injection for chaos-testing the prediction service.

The resilience layer (:mod:`repro.api.resilience`) claims a sweep survives
transient backend failures, latency spikes, killed process-pool workers, and
corrupt store writes.  This module makes those claims testable — and, more
importantly, *reproducibly* testable:

* :class:`FaultInjector` draws every fault decision from a SHA-256 hash of
  ``(seed, fault kind, point key, occurrence number)``.  The occurrence
  counters are per ``(kind, key)``, so whether a given attempt faults is a
  pure function of the seed and that point's own history — independent of
  thread interleaving across points.  Two runs with the same seed inject
  the same faults at the same attempts.
* :func:`inject_backend_faults` wraps a registered backend class in place:
  the wrapper rolls for a latency spike, then a transient error
  (:class:`~repro.exceptions.TransientError`), before delegating to the
  real backend, and notes every *successful* inner evaluation so a chaos
  test can assert zero duplicate evaluations.  Batch-capable backends get a
  batch-level transient roll too, exercising the batch→scalar fallback rung.
* :class:`KillSwitch` hard-kills the evaluating process (``os._exit``) the
  first time a chosen scenario is evaluated — a real SIGKILL-grade worker
  death for the process-pool recovery path.  A marker file latches it so
  exactly one kill happens per switch, across any number of worker
  processes (fork start method; spawn workers re-import a fresh registry
  and never see runtime wrappers).
* :class:`FaultyStore` is a :class:`~repro.api.store.ResultStore` whose
  ``put`` sometimes tears the write: garbage lands at the record path,
  simulating a crash mid-write that the store's quarantine path must absorb.

The wrappers swap classes in the backend registry directly (the same idiom
the test suite's throwaway-backend fixtures use); the context manager
restores the original class on exit.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from ..api.backends import _REGISTRY
from ..api.scenario import Scenario
from ..api.store import ResultStore, _canonical_options
from ..exceptions import TransientError, ValidationError

#: Exit code a :class:`KillSwitch` kills the worker process with.
KILL_EXIT_CODE = 86


@dataclass(frozen=True)
class FaultSpec:
    """Configured fault rates (all probabilities in ``[0, 1]``)."""

    #: Probability that an attempt raises a :class:`TransientError`.
    transient_rate: float = 0.0
    #: Probability that an attempt sleeps ``latency_seconds`` first.
    latency_rate: float = 0.0
    latency_seconds: float = 0.01
    #: Probability that a store ``put`` writes a torn (corrupt) record.
    corrupt_rate: float = 0.0
    #: Seed of the deterministic fault schedule.
    seed: int = 2017

    def __post_init__(self) -> None:
        for name in ("transient_rate", "latency_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_seconds < 0:
            raise ValidationError("latency_seconds must be non-negative")


class FaultInjector:
    """Seeded fault source with per-``(kind, key)`` occurrence counters.

    Thread-safe.  ``injected`` counts the faults actually fired by kind;
    ``successes`` counts completed inner evaluations by point key, which is
    exactly the "duplicate evaluations" ledger the chaos suite asserts on.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._lock = threading.Lock()
        self._occurrences: dict[tuple[str, str], int] = {}
        self.injected: dict[str, int] = {}
        self.successes: dict[str, int] = {}

    def _roll(self, kind: str, key: str) -> float:
        """Deterministic uniform draw for this (kind, key) occurrence."""
        with self._lock:
            n = self._occurrences.get((kind, key), 0)
            self._occurrences[(kind, key)] = n + 1
        digest = hashlib.sha256(
            f"{self.spec.seed}:{kind}:{key}:{n}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def _inject(self, kind: str, rate: float, key: str) -> bool:
        if rate <= 0.0:
            return False
        hit = self._roll(kind, key) < rate
        if hit:
            with self._lock:
                self.injected[kind] = self.injected.get(kind, 0) + 1
        return hit

    def fault_point(self, key: str) -> None:
        """Run the per-attempt fault ladder for one scenario evaluation."""
        if self._inject("latency", self.spec.latency_rate, key):
            time.sleep(self.spec.latency_seconds)
        if self._inject("transient", self.spec.transient_rate, key):
            raise TransientError(f"injected transient fault for {key!r}")

    def fault_batch(self, backend: str) -> None:
        """Roll one batch-level transient for a ``predict_batch`` dispatch."""
        if self._inject("batch-transient", self.spec.transient_rate, f"batch:{backend}"):
            raise TransientError(f"injected transient batch fault for {backend!r}")

    def corrupt_write(self, key: str) -> bool:
        """Whether this store write should be torn."""
        return self._inject("corrupt", self.spec.corrupt_rate, key)

    def note_success(self, key: str) -> None:
        """Record one completed inner evaluation of ``key``."""
        with self._lock:
            self.successes[key] = self.successes.get(key, 0) + 1

    def duplicate_evaluations(self) -> int:
        """Inner evaluations beyond the first per point (should be zero)."""
        with self._lock:
            return sum(count - 1 for count in self.successes.values() if count > 1)


@dataclass(frozen=True)
class KillSwitch:
    """Hard-kill the evaluating process once, on one chosen scenario.

    ``marker_path`` is a file on a filesystem shared by every candidate
    process; ``O_CREAT | O_EXCL`` makes its creation a once-only latch, so
    exactly one process dies no matter how many race.  The kill is
    ``os._exit`` — no cleanup handlers, no exception — which from the
    parent's perspective is indistinguishable from an OOM kill and breaks
    the whole :class:`~concurrent.futures.ProcessPoolExecutor`.
    """

    marker_path: Path
    #: ``Scenario.cache_key()`` of the scenario whose evaluation dies.
    cache_key: str

    def maybe_kill(self, scenario: Scenario) -> None:
        """Die if ``scenario`` is the target and the latch is still open."""
        if scenario.cache_key() != self.cache_key:
            return
        try:
            fd = os.open(self.marker_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        os._exit(KILL_EXIT_CODE)

    def fired(self) -> bool:
        """Whether the kill already happened."""
        return self.marker_path.exists()


def _wrap_backend_class(
    name: str,
    original: type,
    injector: FaultInjector,
    kill_switch: KillSwitch | None,
) -> type:
    """A registry-compatible class injecting faults around ``original``."""

    class FaultyBackend:
        version = getattr(original, "version", 1)
        cpu_bound = bool(getattr(original, "cpu_bound", False))

        def __init__(self, **options: object) -> None:
            self._inner = original(**options)

        def predict(self, scenario: Scenario):
            # Keys carry the backend name: an injector shared across several
            # wrapped backends keeps per-backend schedules (and a per-backend
            # success ledger), and neither depends on thread interleaving.
            point = f"{name}:{scenario.cache_key()}"
            if kill_switch is not None:
                kill_switch.maybe_kill(scenario)
            injector.fault_point(point)
            result = self._inner.predict(scenario)
            injector.note_success(point)
            return result

    if callable(getattr(original, "predict_batch", None)):

        def predict_batch(self, scenarios):  # type: ignore[no-untyped-def]
            injector.fault_batch(name)
            results = self._inner.predict_batch(scenarios)
            for scenario in scenarios:
                injector.note_success(f"{name}:{scenario.cache_key()}")
            return results

        FaultyBackend.predict_batch = predict_batch

    FaultyBackend.name = name
    FaultyBackend.__name__ = f"Faulty{getattr(original, '__name__', name.title())}"
    FaultyBackend.__qualname__ = FaultyBackend.__name__
    return FaultyBackend


@contextmanager
def inject_backend_faults(
    name: str,
    spec: FaultSpec | FaultInjector,
    kill_switch: KillSwitch | None = None,
) -> Iterator[FaultInjector]:
    """Swap backend ``name`` for a fault-injecting wrapper; restore on exit.

    Yields the :class:`FaultInjector` so the caller can assert on injected
    counts and the duplicate-evaluation ledger.  Pass an injector to share
    one fault schedule (and one ledger) across several wrapped backends.

    Process-pool note: runtime registry swaps reach pool workers only under
    the ``fork`` start method (the Linux default); spawned workers import a
    pristine registry and evaluate the *real* backend.
    """
    injector = spec if isinstance(spec, FaultInjector) else FaultInjector(spec)
    try:
        original = _REGISTRY[name]
    except KeyError as exc:
        raise ValidationError(f"unknown backend {name!r}") from exc
    _REGISTRY[name] = _wrap_backend_class(name, original, injector, kill_switch)
    try:
        yield injector
    finally:
        _REGISTRY[name] = original


class FaultyStore(ResultStore):
    """A result store whose writes are sometimes torn mid-record.

    With probability ``spec.corrupt_rate`` a ``put`` writes truncated JSON
    straight to the record path (no temp-file dance) and reports success —
    the moral equivalent of a crash between ``write`` and ``rename``.  The
    reader-side contract (skip, count, quarantine) is what absorbs it.
    """

    def __init__(self, path: str | os.PathLike, injector: FaultInjector) -> None:
        super().__init__(path)
        self._injector = injector

    def put(self, key, backend, result, options=None) -> None:
        if self._injector.corrupt_write(f"{backend}:{key}"):
            options_key = _canonical_options(options)
            path = self._record_path(key, backend, options_key)
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text('{"format": 1, "spec_version"')
            except OSError:
                pass
            return
        super().put(key, backend, result, options=options)
