"""Test support shipped with the library (deterministic fault injection).

Kept inside ``src`` (not ``tests/``) so the chaos tests, the benchmarks,
and downstream users hardening their own deployments all drive the same
harness.  See :mod:`repro.testing.faults`.
"""

from .faults import (
    KILL_EXIT_CODE,
    FaultInjector,
    FaultSpec,
    FaultyStore,
    KillSwitch,
    inject_backend_faults,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "FaultyStore",
    "KILL_EXIT_CODE",
    "KillSwitch",
    "inject_backend_faults",
]
