"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch a single base class.  Subclasses are grouped by subsystem:
configuration, simulation, modelling, and analysis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """Raised when a cluster, job, or model configuration is invalid."""


class ValidationError(ReproError):
    """Raised when user-supplied values fail validation checks."""


class SimulationError(ReproError):
    """Raised when the discrete-event YARN simulator reaches an invalid state."""


class SchedulingError(SimulationError):
    """Raised when the scheduler cannot satisfy an internally consistent request."""


class ModelError(ReproError):
    """Raised when the analytic performance model cannot produce an estimate."""


class ConvergenceError(ModelError):
    """Raised when the modified MVA fixed point does not converge."""


class DistributionError(ModelError):
    """Raised when a response-time distribution cannot be fitted."""


class TraceError(ReproError):
    """Raised when a job trace cannot be parsed or is inconsistent."""


class ExperimentError(ReproError):
    """Raised when an experiment definition or run is invalid."""


class BackendError(ReproError):
    """Raised when a prediction backend is unknown or cannot run a scenario."""


class BackendCapabilityError(BackendError):
    """A backend declined a scenario it cannot model faithfully.

    Raised by analytic backends for failure specs they have no correction
    for (e.g. mid-run node loss).  Deliberately not transient — retrying
    cannot help — and breaker-neutral: a capability refusal is a correct
    answer, not a backend fault.
    """


class StoreError(ReproError):
    """Raised when a persistent result store cannot be opened or written."""


class TransientError(ReproError):
    """A failure expected to go away on retry (worker hiccup, flaky I/O).

    Backends and fault harnesses raise this to mark an error as retryable;
    the service's :class:`~repro.api.resilience.RetryPolicy` classifies it
    (and its subclasses) as retryable by default.
    """


class EvaluationTimeoutError(TransientError):
    """An evaluation exceeded its configured deadline.

    A subclass of :class:`TransientError` because a timeout is usually load,
    not logic: the default retry policy re-attempts it.
    """


class CircuitOpenError(ReproError):
    """A call was rejected because the backend's circuit breaker is open.

    Deliberately *not* transient: retrying into an open breaker would defeat
    its purpose.  The breaker itself readmits probes after its cooldown.
    """
