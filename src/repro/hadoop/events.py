"""Timed events processed by the cluster simulator.

Besides the "fluid" stage completions computed by the execution engine, the
simulation has a small number of discrete timed events: job submissions, the
ApplicationMaster start-up delay, and the container launch delay between a
grant and the moment the task begins executing.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

from ..exceptions import SimulationError


class EventKind(enum.Enum):
    """Kind of a timed simulation event."""

    JOB_SUBMIT = "job-submit"
    AM_READY = "am-ready"
    TASK_LAUNCH = "task-launch"
    NODE_FAILURE = "node-failure"


@dataclass(order=True)
class TimedEvent:
    """An event scheduled at an absolute simulation time."""

    time: float
    sequence: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A simple monotonic priority queue of :class:`TimedEvent` objects."""

    def __init__(self) -> None:
        self._heap: list[TimedEvent] = []
        self._sequence = itertools.count()
        self._last_popped = float("-inf")

    def push(self, time: float, kind: EventKind, payload: Any = None) -> None:
        """Schedule an event at absolute ``time``."""
        if time < self._last_popped - 1e-9:
            raise SimulationError(
                f"cannot schedule an event in the past ({time} < {self._last_popped})"
            )
        heapq.heappush(
            self._heap, TimedEvent(time=time, sequence=next(self._sequence), kind=kind, payload=payload)
        )

    def peek_time(self) -> float | None:
        """Time of the earliest scheduled event, or ``None`` if empty."""
        if not self._heap:
            return None
        return self._heap[0].time

    def pop_until(self, time: float) -> list[TimedEvent]:
        """Pop every event scheduled at or before ``time`` (in order)."""
        events: list[TimedEvent] = []
        while self._heap and self._heap[0].time <= time + 1e-12:
            event = heapq.heappop(self._heap)
            self._last_popped = max(self._last_popped, event.time)
            events.append(event)
        return events

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
