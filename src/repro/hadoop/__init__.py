"""Hadoop 2.x / YARN cluster simulator.

The paper validates its analytic model against measurements from a real
Hadoop 2.x cluster.  This subpackage is the substitute for that cluster
(see DESIGN.md, "Substitutions"): a deterministic discrete-event simulator of
a YARN cluster executing MapReduce jobs, faithful to the mechanisms the paper
identifies as relevant for performance:

* the YARN components — :class:`~repro.hadoop.rm.ResourceManager` with a
  pluggable scheduler (Capacity / FIFO / Fair),
  :class:`~repro.hadoop.nm.NodeManager` per node, and one
  :class:`~repro.hadoop.am.MRAppMaster` per job (Section 3.2 of the paper);
* the container request model — :class:`~repro.hadoop.resources.ResourceRequest`
  objects with priorities (map = 20 > reduce = 10), locality constraints and
  late binding (Section 3.3, Table 1);
* the map / reduce task lifecycles (pending → scheduled → assigned →
  completed, Figures 2-3), reducer slow start, and node-local placement of
  map tasks (Section 3.4);
* resource contention — processor-shared CPU and disk per node and a shared
  network fabric for the shuffle, which produce the queueing delays the
  analytic model has to predict.

The public entry point is :class:`~repro.hadoop.simulator.ClusterSimulator`.
"""

from .cluster import Cluster, Node
from .hdfs import Block, HdfsNamespace, InputSplit
from .resources import Container, Priority, Resource, ResourceRequest
from .tasks import TaskAttempt, TaskState, TaskType
from .job import MapReduceJob
from .simulator import ClusterSimulator, SimulationResult
from .trace import JobTrace, TaskTrace

__all__ = [
    "Cluster",
    "Node",
    "Block",
    "HdfsNamespace",
    "InputSplit",
    "Container",
    "Priority",
    "Resource",
    "ResourceRequest",
    "TaskAttempt",
    "TaskState",
    "TaskType",
    "MapReduceJob",
    "ClusterSimulator",
    "SimulationResult",
    "JobTrace",
    "TaskTrace",
]
