"""Cluster and node abstractions for the YARN simulator.

A :class:`Cluster` is built from a :class:`~repro.config.ClusterConfig`; every
:class:`Node` owns its hardware spec, its rack assignment, and the YARN
resource envelope (memory / vcores available for containers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ClusterConfig, NodeSpec
from ..exceptions import ConfigurationError
from .resources import Resource


@dataclass
class Node:
    """One worker node of the simulated cluster."""

    node_id: int
    rack: int
    spec: NodeSpec
    #: Total YARN-managed resources of the node.
    capacity: Resource
    #: Resources currently granted to running containers.
    allocated: Resource = field(default_factory=Resource.zero)
    #: False once the node has failed; dead nodes receive no new containers.
    alive: bool = True

    @property
    def name(self) -> str:
        """Stable display name, e.g. ``node-3``."""
        return f"node-{self.node_id}"

    @property
    def available(self) -> Resource:
        """Resources currently free for new containers."""
        return self.capacity - self.allocated

    def can_fit(self, request: Resource) -> bool:
        """Whether a container of size ``request`` fits on this node right now."""
        return self.available.covers(request)

    def allocate(self, request: Resource) -> None:
        """Reserve ``request`` on this node.

        Raises
        ------
        ConfigurationError
            If the node does not have enough free resources (callers must
            check :meth:`can_fit` first; violating this indicates a scheduler
            bug).
        """
        if not self.can_fit(request):
            raise ConfigurationError(
                f"{self.name} cannot fit {request!r}; available {self.available!r}"
            )
        self.allocated = self.allocated + request

    def release(self, request: Resource) -> None:
        """Return ``request`` to the free pool."""
        released = self.allocated - request
        if released.memory_bytes < 0 or released.vcores < 0:
            raise ConfigurationError(
                f"{self.name} released more resources than allocated"
            )
        self.allocated = released

    @property
    def occupancy_rate(self) -> float:
        """Fraction of the node's YARN memory currently allocated (0..1)."""
        if self.capacity.memory_bytes == 0:
            return 0.0
        return self.allocated.memory_bytes / self.capacity.memory_bytes


class Cluster:
    """A homogeneous set of :class:`Node` objects plus rack topology."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.nodes: list[Node] = []
        per_node = Resource(
            memory_bytes=config.yarn_memory_per_node,
            vcores=config.yarn_vcores_per_node,
        )
        for node_id in range(config.num_nodes):
            rack = node_id % config.num_racks
            self.nodes.append(
                Node(node_id=node_id, rack=rack, spec=config.node, capacity=per_node)
            )

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def node(self, node_id: int) -> Node:
        """Return the node with identifier ``node_id``."""
        try:
            return self.nodes[node_id]
        except IndexError as exc:
            raise ConfigurationError(f"unknown node id {node_id}") from exc

    def nodes_in_rack(self, rack: int) -> list[Node]:
        """All nodes located in ``rack``."""
        return [node for node in self.nodes if node.rack == rack]

    def total_capacity(self) -> Resource:
        """Aggregate YARN capacity over all nodes."""
        total = Resource.zero()
        for node in self.nodes:
            total = total + node.capacity
        return total

    def least_occupied_node(self, fit: Resource | None = None) -> Node | None:
        """Node with the lowest occupancy rate (ties: lowest id).

        When ``fit`` is given, only nodes that can currently host a container
        of that size are considered; ``None`` is returned when no node fits.
        """
        candidates = [
            node
            for node in self.nodes
            if node.alive and (fit is None or node.can_fit(fit))
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda node: (node.occupancy_rate, node.node_id))
