"""YARN resource primitives: resources, priorities, requests, containers.

These mirror the objects of Section 3.3 of the paper: the ApplicationMaster
expresses its needs as a list of :class:`ResourceRequest` objects (number of
containers, priority, size, locality constraint, task type — Table 1), the
ResourceManager answers with :class:`Container` grants bound to a node.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..config import ContainerSpec
from ..exceptions import ConfigurationError

#: Priority value the MapReduce AM uses for map containers (RMContainerAllocator).
MAP_PRIORITY = 20
#: Priority value the MapReduce AM uses for reduce containers.
REDUCE_PRIORITY = 10
#: Priority used for the ApplicationMaster's own container.
AM_PRIORITY = 0

#: Wildcard locality: "any host / any rack" (Table 1 uses ``*``).
ANY_LOCATION = "*"


@dataclass(frozen=True)
class Resource:
    """A (memory, vcores) resource vector."""

    memory_bytes: int = 0
    vcores: int = 0

    @classmethod
    def zero(cls) -> "Resource":
        """The empty resource vector."""
        return cls(0, 0)

    @classmethod
    def from_spec(cls, spec: ContainerSpec) -> "Resource":
        """Build a resource vector from a container spec."""
        return cls(memory_bytes=spec.memory_bytes, vcores=spec.vcores)

    def __add__(self, other: "Resource") -> "Resource":
        return Resource(
            memory_bytes=self.memory_bytes + other.memory_bytes,
            vcores=self.vcores + other.vcores,
        )

    def __sub__(self, other: "Resource") -> "Resource":
        return Resource(
            memory_bytes=self.memory_bytes - other.memory_bytes,
            vcores=self.vcores - other.vcores,
        )

    def covers(self, other: "Resource") -> bool:
        """Whether this vector is at least ``other`` in every dimension."""
        return (
            self.memory_bytes >= other.memory_bytes and self.vcores >= other.vcores
        )


class Priority(enum.IntEnum):
    """Container priorities used by the MapReduce ApplicationMaster.

    The paper (Section 3.3) reports the values observed in
    ``RMContainerAllocator``: map containers are requested at priority 20 and
    reduce containers at priority 10, with map requests served first.  We
    keep the paper's convention that the *numerically larger* value is served
    first.
    """

    AM = AM_PRIORITY
    REDUCE = REDUCE_PRIORITY
    MAP = MAP_PRIORITY

    @property
    def serves_before(self) -> int:
        """Sort key: larger value means served earlier."""
        return -int(self)


class RequestState(enum.Enum):
    """Lifecycle of a container request (paper Figures 2-3 vocabulary)."""

    #: Not yet sent to the ResourceManager.
    PENDING = "pending"
    #: Sent to the RM but not yet assigned to a container.
    SCHEDULED = "scheduled"
    #: Assigned to a container.
    ASSIGNED = "assigned"
    #: The container has completed execution.
    COMPLETED = "completed"


@dataclass
class ResourceRequest:
    """One row of the AM's ResourceRequest table (paper Table 1).

    Attributes
    ----------
    num_containers:
        How many containers of this shape are being asked for.
    priority:
        Request priority (maps > reduces).
    resource:
        Size of each container.
    locality:
        Host name (``"node-2"``), rack name (``"rack-0"``) or
        :data:`ANY_LOCATION`.
    task_type:
        ``"map"``, ``"reduce"`` or ``"am"`` — informational, mirroring the
        last column of Table 1.
    """

    num_containers: int
    priority: Priority
    resource: Resource
    locality: str = ANY_LOCATION
    task_type: str = "map"
    state: RequestState = RequestState.PENDING

    def __post_init__(self) -> None:
        if self.num_containers <= 0:
            raise ConfigurationError("num_containers must be positive")
        if self.task_type not in {"map", "reduce", "am"}:
            raise ConfigurationError(f"unknown task type {self.task_type!r}")


_container_ids = itertools.count(1)


@dataclass
class Container:
    """A granted logical bundle of resources bound to a particular node."""

    container_id: int
    job_id: int
    node_id: int
    resource: Resource
    priority: Priority
    #: Simulation time at which the container was granted.
    granted_at: float = 0.0
    #: Simulation time at which the container was released (None while held).
    released_at: float | None = None
    #: Identifier of the task attempt currently bound to this container.
    assigned_task: str | None = None

    @classmethod
    def grant(
        cls,
        job_id: int,
        node_id: int,
        resource: Resource,
        priority: Priority,
        granted_at: float,
    ) -> "Container":
        """Create a container with a fresh cluster-unique identifier."""
        return cls(
            container_id=next(_container_ids),
            job_id=job_id,
            node_id=node_id,
            resource=resource,
            priority=priority,
            granted_at=granted_at,
        )

    @property
    def is_released(self) -> bool:
        """Whether the container has already been returned to the RM."""
        return self.released_at is not None


def reset_container_ids() -> None:
    """Reset the container id counter (used by tests for deterministic ids)."""
    global _container_ids
    _container_ids = itertools.count(1)


@dataclass
class ResourceRequestTable:
    """The set of outstanding requests of one ApplicationMaster.

    Provides the same summary view as Table 1 of the paper via :meth:`rows`.
    """

    requests: list[ResourceRequest] = field(default_factory=list)

    def add(self, request: ResourceRequest) -> None:
        """Append a request to the table."""
        self.requests.append(request)

    def outstanding(self) -> list[ResourceRequest]:
        """Requests that are still pending or scheduled, most urgent first."""
        pending = [
            request
            for request in self.requests
            if request.state in (RequestState.PENDING, RequestState.SCHEDULED)
        ]
        return sorted(pending, key=lambda request: request.priority.serves_before)

    def rows(self) -> list[dict[str, object]]:
        """Render the table as a list of dicts (used by the Table 1 bench)."""
        return [
            {
                "num_containers": request.num_containers,
                "priority": int(request.priority),
                "size": request.resource,
                "locality": request.locality,
                "task_type": request.task_type,
            }
            for request in self.requests
        ]
