"""Cluster simulator facade.

:class:`ClusterSimulator` wires together the YARN components (cluster, HDFS
namespace, ResourceManager + scheduler, per-job ApplicationMasters,
NodeManagers) with the fluid execution engine and runs the discrete-event
loop until every submitted job completes.

Typical use::

    from repro.config import ClusterConfig, JobConfig, SchedulerConfig
    from repro.hadoop import ClusterSimulator

    simulator = ClusterSimulator(ClusterConfig(num_nodes=4), SchedulerConfig(), seed=7)
    simulator.submit_job(JobConfig(input_size_bytes=gigabytes(1), num_reduces=4))
    result = simulator.run()
    print(result.job_traces[0].response_time)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ClusterConfig, FailureSpec, JobConfig, SchedulerConfig
from ..exceptions import SimulationError
from ..randomness import make_rng, spawn
from .am import MRAppMaster
from .cluster import Cluster
from .engine import INFINITY, ExecutionEngine
from .events import EventKind, EventQueue
from .failures import FailureModel
from .hdfs import HdfsNamespace
from .job import JobResourceProfile, MapReduceJob
from .metrics import SimulationMetrics
from .nm import NodeManager
from .resources import Container, Priority, Resource
from .rm import ResourceManager
from .scheduler import create_scheduler
from .shuffle import ShuffleTracker
from .tasks import TaskAttempt, TaskState, TaskType
from .trace import JobTrace, build_job_trace

#: Safety bound on the number of event-loop iterations.
_MAX_ITERATIONS = 2_000_000


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    job_traces: list[JobTrace]
    metrics: SimulationMetrics
    makespan: float
    num_nodes: int

    def trace_for(self, job_id: int) -> JobTrace:
        """Trace of a specific job."""
        for trace in self.job_traces:
            if trace.job_id == job_id:
                return trace
        raise SimulationError(f"no trace for job {job_id}")

    @property
    def response_times(self) -> list[float]:
        """Response times of all jobs, in job-id order."""
        return [trace.response_time for trace in sorted(self.job_traces, key=lambda t: t.job_id)]

    @property
    def mean_response_time(self) -> float:
        """Average job response time across all submitted jobs."""
        times = self.response_times
        if not times:
            return 0.0
        return sum(times) / len(times)


@dataclass
class _JobContext:
    """Internal per-job simulation state."""

    job: MapReduceJob
    app_master: MRAppMaster
    am_container: Container | None = None
    containers: dict[str, Container] = field(default_factory=dict)


@dataclass
class _SpeculationPair:
    """A straggling attempt and its speculative backup; first finisher wins."""

    original: TaskAttempt
    clone: TaskAttempt
    resolved: bool = False
    winner: TaskAttempt | None = None


class ClusterSimulator:
    """Discrete-event simulator of a YARN cluster running MapReduce jobs."""

    def __init__(
        self,
        cluster_config: ClusterConfig,
        scheduler_config: SchedulerConfig | None = None,
        seed: int | None = None,
        failures: FailureSpec | None = None,
    ) -> None:
        self.cluster_config = cluster_config
        self.scheduler_config = scheduler_config or SchedulerConfig()
        self.cluster = Cluster(cluster_config)
        self._rng = make_rng(seed)
        self.hdfs = HdfsNamespace(self.cluster, seed=seed)
        self.resource_manager = ResourceManager(
            self.cluster, create_scheduler(self.scheduler_config.scheduler_name)
        )
        self.node_managers = {
            node.node_id: NodeManager(node=node) for node in self.cluster
        }
        self.metrics = SimulationMetrics()
        self._jobs: dict[int, MapReduceJob] = {}
        self._contexts: dict[int, _JobContext] = {}
        self._events = EventQueue()
        self._engine = ExecutionEngine(self.cluster, ShuffleTracker(self._jobs))
        self._next_job_id = 0
        self._now = 0.0
        self._finished = False
        #: Jobs that have not completed yet (keeps the per-event loop O(1)).
        self._pending_jobs: set[int] = set()
        #: Whether cluster capacity or outstanding requests changed since the
        #: last allocation pass.  A scheduler pass is deterministic over an
        #: unchanged (capacity, requests) state and grants nothing on a rerun,
        #: so skipping redundant passes is behaviour-preserving.
        self._needs_allocation = True
        #: Failure injection.  A no-op spec leaves the model unset so the
        #: failure-free path performs zero extra work (and zero extra RNG
        #: draws), keeping traces bit-identical to a run without a spec.
        self.failure_spec = failures
        self._failure_model: FailureModel | None = None
        if failures is not None and not failures.is_noop:
            self._failure_model = FailureModel(failures, seed=seed or 0)
            for occurrence, time in enumerate(failures.node_failure_times):
                self._events.push(time, EventKind.NODE_FAILURE, occurrence)
        #: Per-task launch counter (attempt numbers for the failure draws).
        self._attempt_numbers: dict[str, int] = {}
        #: Task ids whose *current* attempt is destined to fail.
        self._doomed: set[str] = set()
        #: Speculation state, keyed by both the original's and the clone's id.
        self._spec_pairs: dict[str, _SpeculationPair] = {}
        #: Pending TASK_LAUNCH events to ignore (their container was killed
        #: before launch); a count per task id so a later re-grant's launch
        #: event is not swallowed by mistake.
        self._skip_launches: dict[str, int] = {}

    # -- job submission ------------------------------------------------------------

    def submit_job(
        self,
        job_config: JobConfig,
        profile: JobResourceProfile | None = None,
    ) -> MapReduceJob:
        """Register a job to be submitted at ``job_config.submission_time``."""
        if self._finished:
            raise SimulationError("cannot submit jobs to a finished simulation")
        profile = profile or JobResourceProfile()
        splits = self.hdfs.splits_for_job(job_config)
        job = MapReduceJob(
            job_id=self._next_job_id,
            config=job_config,
            profile=profile,
            splits=splits,
        )
        self._next_job_id += 1
        app_master = MRAppMaster(
            job=job,
            scheduler_config=self.scheduler_config,
            map_resource=Resource.from_spec(self.cluster_config.map_container),
            reduce_resource=Resource.from_spec(self.cluster_config.reduce_container),
            num_cluster_nodes=len(self.cluster),
            rng=spawn(self._rng, 1)[0],
        )
        self._jobs[job.job_id] = job
        self._contexts[job.job_id] = _JobContext(job=job, app_master=app_master)
        self._pending_jobs.add(job.job_id)
        self._events.push(job_config.submission_time, EventKind.JOB_SUBMIT, job.job_id)
        return job

    # -- main loop ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run the simulation until all submitted jobs complete."""
        if not self._jobs:
            raise SimulationError("no jobs submitted")
        if self._finished:
            raise SimulationError("simulation already ran")

        for _ in range(_MAX_ITERATIONS):
            if self._all_jobs_complete():
                break
            progressed = self._allocate()
            next_completion = self._engine.time_to_next_completion()
            next_event_time = self._events.peek_time()
            candidates = []
            if next_completion is not INFINITY:
                candidates.append(self._now + next_completion)
            if next_event_time is not None:
                candidates.append(max(next_event_time, self._now))
            if not candidates:
                if progressed:
                    # Allocation granted containers whose launch events were
                    # scheduled; loop again to pick them up.
                    continue
                raise SimulationError(
                    "simulation deadlock: no runnable work and no pending events "
                    f"at t={self._now:.2f}"
                )
            next_time = min(candidates)
            self._advance_to(next_time)
        else:
            raise SimulationError("simulation exceeded the iteration safety bound")

        self._finished = True
        traces = [
            build_job_trace(
                job,
                num_nodes=len(self.cluster),
                attempt_counts=self._attempt_numbers if self._failure_model else None,
            )
            for job in self._jobs.values()
        ]
        return SimulationResult(
            job_traces=traces,
            metrics=self.metrics,
            makespan=self.metrics.makespan,
            num_nodes=len(self.cluster),
        )

    # -- internals ---------------------------------------------------------------------

    def _all_jobs_complete(self) -> bool:
        return not self._pending_jobs

    def _advance_to(self, time: float) -> None:
        """Advance the fluid engine to ``time`` and process everything due."""
        dt = time - self._now
        if dt < -1e-9:
            raise SimulationError("time went backwards")
        completed = self._engine.advance(max(dt, 0.0), time)
        self._now = time
        for attempt in completed:
            self._on_task_completed(attempt)
        for event in self._events.pop_until(time):
            if event.kind is EventKind.JOB_SUBMIT:
                self._on_job_submit(event.payload)
            elif event.kind is EventKind.AM_READY:
                self._on_am_ready(event.payload)
            elif event.kind is EventKind.TASK_LAUNCH:
                self._on_task_launch(event.payload)
            elif event.kind is EventKind.NODE_FAILURE:
                self._on_node_failure(event.payload)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {event.kind}")

    def _allocate(self) -> bool:
        """Run one RM allocation pass; returns True if anything was granted.

        Passes are only run when capacity was released or new requests
        appeared since the previous pass; a rerun over unchanged state is a
        deterministic no-op (capacity only shrank since the last pass, so an
        ask that could not be placed then cannot be placed now).
        """
        if not self._needs_allocation:
            return False
        self._needs_allocation = False
        grants = self.resource_manager.allocate(self._now)
        if grants:
            self.metrics.allocation_passes += 1
        for grant in grants:
            context = self._contexts[grant.application.job.job_id]
            container = grant.container
            self.metrics.record_grant(container)
            node_manager = self.node_managers[container.node_id]
            ready_at = node_manager.start_container(container, self._now)
            if container.priority is Priority.AM:
                context.am_container = container
                grant.application.on_am_container_granted(container)
                self._events.push(
                    self._now + grant.application.job.profile.am_startup_seconds,
                    EventKind.AM_READY,
                    container.job_id,
                )
                continue
            task = grant.application.on_container_granted(
                container, self._now, grant.hinted_task_id
            )
            context.containers[task.task_id] = container
            launch_delay = grant.application.job.profile.container_launch_seconds
            self._events.push(
                max(ready_at, self._now + launch_delay),
                EventKind.TASK_LAUNCH,
                (container.job_id, task.task_id),
            )
        return bool(grants)

    def _on_job_submit(self, job_id: int) -> None:
        job = self._jobs[job_id]
        job.submitted_at = self._now
        self.resource_manager.submit_application(self._contexts[job_id].app_master)
        self._needs_allocation = True

    def _on_am_ready(self, job_id: int) -> None:
        context = self._contexts[job_id]
        context.app_master.on_registered(self._now)
        self._needs_allocation = True

    def _on_task_launch(self, payload: tuple[int, str]) -> None:
        job_id, task_id = payload
        skips = self._skip_launches.get(task_id)
        if skips:
            # The container behind this launch event was killed (node failure
            # or losing speculative attempt) before the task started.
            if skips == 1:
                del self._skip_launches[task_id]
            else:
                self._skip_launches[task_id] = skips - 1
            return
        context = self._contexts[job_id]
        task = context.job.task_by_id(task_id)
        context.app_master.build_stages(task)
        if self._failure_model is not None:
            self._apply_failure_plan(context, task)
        task.mark_running(self._now)
        if task.task_type is TaskType.MAP:
            split = context.job.split_for(task)
            data_local = task.assigned_node in split.preferred_nodes
        else:
            data_local = False
        self.metrics.record_launch(task, data_local)
        self._engine.add_task(task, self._now)

    def _on_task_completed(self, task: TaskAttempt) -> None:
        if self._failure_model is not None:
            if task.task_id in self._doomed:
                self._doomed.discard(task.task_id)
                self._on_task_failed(task)
                return
            pair = self._spec_pairs.get(task.task_id)
            if pair is not None:
                if pair.resolved:
                    if pair.winner is not task:
                        # Losing attempt finishing in the same engine batch as
                        # the winner; it has already been torn down.
                        return
                else:
                    self._resolve_speculation(pair, task)
        task.mark_completed(self._now)
        context = self._contexts[task.job_id]
        context.job.record_task_completion(task)
        if task.task_type is TaskType.MAP:
            context.job.record_map_completion(task)
        self.metrics.record_completion(task, self._now)
        container = context.containers.pop(task.task_id, None)
        if container is not None:
            self.node_managers[container.node_id].stop_container(container, self._now)
            self.resource_manager.release_container(container, self._now)
        context.app_master.on_task_completed(task, self._now)
        self._needs_allocation = True
        if context.job.is_complete:
            self._finish_job(context)

    def _finish_job(self, context: _JobContext) -> None:
        context.job.finished_at = self._now
        if context.am_container is not None:
            self.node_managers[context.am_container.node_id].stop_container(
                context.am_container, self._now
            )
            self.resource_manager.release_container(context.am_container, self._now)
            context.am_container = None
        self.resource_manager.unregister_application(context.app_master)
        self._pending_jobs.discard(context.job.job_id)

    # -- failure injection ---------------------------------------------------------

    def _apply_failure_plan(self, context: _JobContext, task: TaskAttempt) -> None:
        """Decide this attempt's fate at launch time (straggler / doomed / backup).

        A straggler scales every stage by the slowdown factor; a doomed
        attempt additionally truncates its stages to the work done before the
        failure point, so the engine "completes" it exactly when the failure
        strikes and :meth:`_on_task_completed` routes it to the failure path.
        """
        model = self._failure_model
        attempt = self._attempt_numbers.get(task.task_id, 0) + 1
        self._attempt_numbers[task.task_id] = attempt
        factor = model.straggler_factor(task.task_id, attempt)
        if factor != 1.0:
            for stage in task.stages:
                stage.scale(factor)
        if model.attempt_fails(task.task_id, attempt):
            point = model.failure_point(task.task_id, attempt)
            for stage in task.stages:
                stage.scale(point)
            self._doomed.add(task.task_id)
        if (
            model.spec.speculative
            and factor != 1.0
            and task.task_id not in self._spec_pairs
        ):
            self._launch_speculative(context, task)

    def _launch_speculative(self, context: _JobContext, task: TaskAttempt) -> None:
        """Request a backup attempt for a straggler; first finisher wins."""
        clone = TaskAttempt(
            task_id=task.task_id + "~spec",
            task_type=task.task_type,
            job_id=task.job_id,
            preferred_nodes=task.preferred_nodes,
        )
        context.job.register_speculative_attempt(clone, task)
        context.app_master.schedule_speculative(clone, self._now)
        pair = _SpeculationPair(original=task, clone=clone)
        self._spec_pairs[task.task_id] = pair
        self._spec_pairs[clone.task_id] = pair
        self.metrics.speculative_launched += 1
        self._needs_allocation = True

    def _on_task_failed(self, task: TaskAttempt) -> None:
        """A doomed attempt hit its failure point: tear down and re-execute."""
        context = self._contexts[task.job_id]
        self.metrics.task_failures += 1
        container = context.containers.pop(task.task_id, None)
        if container is not None:
            self.node_managers[container.node_id].stop_container(container, self._now)
            self.resource_manager.release_container(container, self._now)
        pair = self._spec_pairs.get(task.task_id)
        if pair is not None and task is pair.clone:
            # A failed backup just dies; the original attempt is still live.
            if not pair.resolved:
                pair.resolved = True
                pair.winner = pair.original
            context.app_master.on_task_killed(task)
            self._needs_allocation = True
            return
        context.app_master.reschedule_task(task, self._now)
        self.metrics.task_reexecutions += 1
        self._needs_allocation = True

    def _resolve_speculation(self, pair: _SpeculationPair, winner: TaskAttempt) -> None:
        """First finisher wins: adopt the winner, kill the other attempt."""
        pair.resolved = True
        pair.winner = winner
        context = self._contexts[winner.job_id]
        loser = pair.clone if winner is pair.original else pair.original
        if winner is pair.clone:
            context.job.adopt_speculative_winner(pair.clone, pair.original)
            self.metrics.speculative_wins += 1
        self._kill_attempt(context, loser)

    def _kill_attempt(self, context: _JobContext, task: TaskAttempt) -> None:
        """Tear down a live attempt without re-executing it (speculative loser)."""
        self._doomed.discard(task.task_id)
        self._engine.remove_task(task)
        container = context.containers.pop(task.task_id, None)
        if container is not None:
            self.node_managers[container.node_id].stop_container(container, self._now)
            self.resource_manager.release_container(container, self._now)
            self.metrics.containers_killed += 1
            if task.state is TaskState.ASSIGNED:
                # Granted but not launched: swallow the pending launch event.
                self._skip_launches[task.task_id] = (
                    self._skip_launches.get(task.task_id, 0) + 1
                )
        context.app_master.on_task_killed(task)
        self._needs_allocation = True

    def _on_node_failure(self, occurrence: int) -> None:
        """A whole node dies: kill its containers, lose its map outputs.

        Mirrors Hadoop semantics: running attempts are re-executed elsewhere,
        and the map outputs stored on the node become unfetchable, forcing
        re-execution of the affected completed maps (reducers stall until the
        output is regenerated).  Nodes hosting an ApplicationMaster are never
        picked (AM recovery is out of scope), and the last alive node is
        never killed so jobs can always finish.
        """
        model = self._failure_model
        am_nodes = {
            ctx.am_container.node_id
            for ctx in self._contexts.values()
            if ctx.am_container is not None
        }
        alive = sum(1 for node in self.cluster if node.alive)
        eligible = [
            node.node_id
            for node in self.cluster
            if node.alive and node.node_id not in am_nodes
        ]
        if not eligible or alive < 2:
            return
        victim_id = model.pick_victim(eligible, occurrence)
        node = self.cluster.node(victim_id)
        node.alive = False
        self.metrics.node_failures += 1
        node_manager = self.node_managers[victim_id]
        for container in list(node_manager.running_containers):
            context = self._contexts[container.job_id]
            task = context.job.task_by_id(container.assigned_task)
            self._doomed.discard(task.task_id)
            self._engine.remove_task(task)
            context.containers.pop(task.task_id, None)
            node_manager.stop_container(container, self._now)
            self.resource_manager.release_container(container, self._now)
            self.metrics.containers_killed += 1
            if task.state is TaskState.ASSIGNED:
                self._skip_launches[task.task_id] = (
                    self._skip_launches.get(task.task_id, 0) + 1
                )
            pair = self._spec_pairs.get(task.task_id)
            if pair is not None and task is pair.clone:
                if not pair.resolved:
                    pair.resolved = True
                    pair.winner = pair.original
                context.app_master.on_task_killed(task)
                continue
            context.app_master.reschedule_task(task, self._now)
            self.metrics.task_reexecutions += 1
        # Completed map outputs stored on the victim are gone: invalidate the
        # shuffle-availability counters (exact inverse of the completion
        # bookkeeping) and re-execute those maps through the normal AM path.
        for job_id in list(self._pending_jobs):
            context = self._contexts[job_id]
            for task in context.job.map_tasks:
                if (
                    task.state is TaskState.COMPLETED
                    and task.assigned_node == victim_id
                ):
                    context.job.invalidate_map_completion(task)
                    context.app_master.reschedule_task(task, self._now)
                    self.metrics.maps_invalidated += 1
                    self.metrics.task_reexecutions += 1
        self._needs_allocation = True
