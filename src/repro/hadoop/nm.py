"""NodeManager: per-node container bookkeeping and launch latency.

The NodeManager is the per-node YARN daemon that launches, monitors and stops
containers on behalf of the ApplicationMasters (paper Section 3.2).  In the
simulator it tracks which containers run on its node and models the
localisation / JVM start latency between the grant of a container and the
moment its task starts doing useful work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import SimulationError
from .cluster import Node
from .resources import Container


@dataclass
class NodeManager:
    """Bookkeeping for the containers hosted on one node."""

    node: Node
    #: Seconds between container grant and task start (localisation + JVM).
    launch_delay: float = 0.8
    _containers: dict[int, Container] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.launch_delay < 0:
            raise SimulationError("launch_delay must be non-negative")

    def start_container(self, container: Container, now: float) -> float:
        """Register ``container`` on this node and return its ready time."""
        if container.node_id != self.node.node_id:
            raise SimulationError(
                f"container {container.container_id} targets node {container.node_id}, "
                f"not {self.node.node_id}"
            )
        if container.container_id in self._containers:
            raise SimulationError(
                f"container {container.container_id} is already running on {self.node.name}"
            )
        self._containers[container.container_id] = container
        return now + self.launch_delay

    def stop_container(self, container: Container, now: float) -> None:
        """Remove ``container`` from this node and stamp its release time."""
        if container.container_id not in self._containers:
            raise SimulationError(
                f"container {container.container_id} is not running on {self.node.name}"
            )
        del self._containers[container.container_id]
        container.released_at = now

    @property
    def running_containers(self) -> list[Container]:
        """Containers currently hosted on this node."""
        return list(self._containers.values())

    def container_count(self) -> int:
        """Number of containers currently hosted."""
        return len(self._containers)
