"""Resource-sharing (contention) model for the execution engine.

Each node offers three resources: CPU cores, disk bandwidth, and inbound
network bandwidth.  Active work stages share those resources under
processor-sharing:

* a CPU stage gets at most one core (tasks are single-threaded) and an equal
  share of the node's cores when more stages than cores are active;
* disk stages share the node's aggregate disk bandwidth equally;
* network stages (shuffle fetches) share the destination node's NIC equally.

These sharing rules are what produce the queueing delays the analytic model
has to capture with its MVA step: with more concurrent containers per node
(more jobs, or more tasks per job) every stage slows down proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import NodeSpec
from ..exceptions import SimulationError
from .tasks import StageKind


@dataclass(frozen=True)
class ResourceDemandCount:
    """Number of active (non-stalled) stages per resource on one node."""

    cpu: int = 0
    disk: int = 0
    network: int = 0

    def count(self, kind: StageKind) -> int:
        """Active-stage count for ``kind``."""
        if kind is StageKind.CPU:
            return self.cpu
        if kind is StageKind.DISK:
            return self.disk
        return self.network


class SharingModel:
    """Computes the processing rate of a stage given per-node demand counts."""

    def __init__(self, node_spec: NodeSpec) -> None:
        self.node_spec = node_spec
        # Rates only depend on (kind, active count); the cluster is
        # homogeneous, so memoizing keeps the hot path to a dict lookup.
        self._rate_cache: dict[tuple[StageKind, int], float] = {}

    def rate(self, kind: StageKind, demand: ResourceDemandCount) -> float:
        """Processing rate for one stage of ``kind``.

        Returns core-seconds/second for CPU stages (i.e. dimensionless
        progress rate) and bytes/second for disk and network stages.
        """
        return self.rate_for_count(kind, demand.count(kind))

    def rate_for_count(self, kind: StageKind, active: int) -> float:
        """Processing rate for one stage of ``kind`` among ``active`` sharers."""
        cached = self._rate_cache.get((kind, active))
        if cached is not None:
            return cached
        if active <= 0:
            raise SimulationError("rate requested with no active stage")
        spec = self.node_spec
        if kind is StageKind.CPU:
            value = min(1.0, spec.cpu_cores / active) * spec.cpu_speed_factor
        elif kind is StageKind.DISK:
            value = spec.disk_bandwidth * spec.disk_count / active
        else:
            value = spec.network_bandwidth / active
        self._rate_cache[(kind, active)] = value
        return value
