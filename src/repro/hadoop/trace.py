"""Job history traces.

A :class:`JobTrace` is the simulator's equivalent of the Hadoop job-history
file the paper's prototype mines for its input parameters ("we take the
average of residence time from the history of corresponding real Hadoop job
executions", Section 4.2.1).  Traces can be serialised to/from JSON so
experiments can be re-analysed without re-running the simulator.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..exceptions import TraceError
from .job import MapReduceJob
from .tasks import StageKind, SubtaskLabel, TaskState, TaskType


@dataclass(frozen=True)
class TaskTrace:
    """Execution record of one task attempt."""

    task_id: str
    task_type: str
    node_id: int
    scheduled_at: float
    assigned_at: float
    started_at: float
    finished_at: float
    #: Wall-clock duration of the whole attempt.
    duration: float
    #: Wall-clock duration of the shuffle-sort subtask (reduce only, else 0).
    shuffle_sort_duration: float
    #: Wall-clock duration of the merge subtask (reduce only, else 0).
    merge_duration: float
    #: Busy time per resource kind (cpu / disk / network seconds).
    cpu_seconds: float
    disk_seconds: float
    network_seconds: float
    #: Number of launched attempts behind this completion (1 = first try;
    #: defaulted so traces recorded before failure injection still load).
    attempts: int = 1

    @property
    def is_map(self) -> bool:
        """Whether this is a map task trace."""
        return self.task_type == TaskType.MAP.value


@dataclass(frozen=True)
class JobTrace:
    """Execution record of one MapReduce job."""

    job_id: int
    job_name: str
    num_nodes: int
    num_maps: int
    num_reduces: int
    input_size_bytes: int
    block_size_bytes: int
    submitted_at: float
    finished_at: float
    response_time: float
    tasks: tuple[TaskTrace, ...] = field(default_factory=tuple)

    # -- aggregate statistics used by the analytic model -------------------------

    def map_traces(self) -> list[TaskTrace]:
        """Traces of the map tasks."""
        return [task for task in self.tasks if task.is_map]

    def reduce_traces(self) -> list[TaskTrace]:
        """Traces of the reduce tasks."""
        return [task for task in self.tasks if not task.is_map]

    def average_map_duration(self) -> float:
        """Mean wall-clock duration of the map tasks."""
        maps = self.map_traces()
        if not maps:
            return 0.0
        return sum(task.duration for task in maps) / len(maps)

    def average_shuffle_sort_duration(self) -> float:
        """Mean wall-clock duration of the shuffle-sort subtasks."""
        reduces = self.reduce_traces()
        if not reduces:
            return 0.0
        return sum(task.shuffle_sort_duration for task in reduces) / len(reduces)

    def average_merge_duration(self) -> float:
        """Mean wall-clock duration of the merge subtasks."""
        reduces = self.reduce_traces()
        if not reduces:
            return 0.0
        return sum(task.merge_duration for task in reduces) / len(reduces)

    def average_resource_seconds(self, task_type: TaskType, kind: StageKind) -> float:
        """Mean busy seconds per task of ``task_type`` on resource ``kind``."""
        selected = self.map_traces() if task_type is TaskType.MAP else self.reduce_traces()
        if not selected:
            return 0.0
        attribute = {
            StageKind.CPU: "cpu_seconds",
            StageKind.DISK: "disk_seconds",
            StageKind.NETWORK: "network_seconds",
        }[kind]
        return sum(getattr(task, attribute) for task in selected) / len(selected)

    # -- (de)serialisation ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict representation (JSON friendly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        try:
            tasks = tuple(TaskTrace(**task) for task in data.pop("tasks", ()))
            return cls(tasks=tasks, **data)
        except TypeError as exc:
            raise TraceError(f"malformed job trace: {exc}") from exc

    def save(self, path: str | Path) -> None:
        """Write the trace to ``path`` as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "JobTrace":
        """Read a trace previously written by :meth:`save`."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise TraceError(f"cannot read job trace from {path}: {exc}") from exc
        return cls.from_dict(data)


def build_job_trace(
    job: MapReduceJob,
    num_nodes: int,
    attempt_counts: dict[str, int] | None = None,
) -> JobTrace:
    """Extract a :class:`JobTrace` from a completed simulated job.

    ``attempt_counts`` maps task ids to the number of launched attempts
    (supplied by the simulator under failure injection; omitted → 1 each).
    """
    if not job.is_complete or job.submitted_at is None or job.finished_at is None:
        raise TraceError(f"job {job.job_id} has not completed; cannot build a trace")
    task_traces = []
    for task in job.all_tasks:
        if task.state is not TaskState.COMPLETED:
            raise TraceError(f"task {task.task_id} is not completed")
        task_traces.append(
            TaskTrace(
                task_id=task.task_id,
                task_type=task.task_type.value,
                node_id=task.assigned_node if task.assigned_node is not None else -1,
                scheduled_at=task.scheduled_at or 0.0,
                assigned_at=task.assigned_at or 0.0,
                started_at=task.started_at or 0.0,
                finished_at=task.finished_at or 0.0,
                duration=task.duration,
                shuffle_sort_duration=task.subtask_duration(SubtaskLabel.SHUFFLE_SORT),
                merge_duration=task.subtask_duration(SubtaskLabel.MERGE),
                cpu_seconds=task.resource_busy_time(StageKind.CPU),
                disk_seconds=task.resource_busy_time(StageKind.DISK),
                network_seconds=task.resource_busy_time(StageKind.NETWORK),
                attempts=(attempt_counts or {}).get(task.task_id, 1),
            )
        )
    return JobTrace(
        job_id=job.job_id,
        job_name=job.config.name,
        num_nodes=num_nodes,
        num_maps=job.num_maps,
        num_reduces=job.num_reduces,
        input_size_bytes=job.config.input_size_bytes,
        block_size_bytes=job.config.block_size_bytes,
        submitted_at=job.submitted_at,
        finished_at=job.finished_at,
        response_time=job.response_time,
        tasks=tuple(task_traces),
    )
