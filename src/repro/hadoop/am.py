"""MapReduce ApplicationMaster (MRAppMaster) behaviour.

The AM is the per-job component that YARN delegates scheduling to (paper
Section 3.2).  The simulator's AM reproduces the behaviour the paper derives
from the ``RMContainerAllocator`` source code:

* map containers are requested at priority 20, reduce containers at priority
  10, and map requests are served first (Section 3.3, Table 1);
* map container requests carry node-locality preferences taken from the HDFS
  replica placement of the task's input split; reduce requests ask for "any
  host" (Section 3.4);
* reduce containers are only requested once the *slow start* threshold of
  completed map tasks is reached (default 5 %); with slow start disabled they
  are requested only after every map task has finished (Section 4.2.2);
* when a container is granted, the AM matches it against its pending tasks
  preferring a task whose input data lives on the container's node
  (late binding, Section 3.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import SchedulerConfig
from ..exceptions import SimulationError
from ..randomness import make_rng
from .job import MapReduceJob
from .resources import (
    ANY_LOCATION,
    Container,
    Priority,
    Resource,
    ResourceRequest,
    ResourceRequestTable,
)
from .tasks import (
    SubtaskLabel,
    TaskAttempt,
    TaskState,
    TaskType,
    build_map_stages,
    build_reduce_stages,
)


@dataclass(frozen=True)
class ContainerAsk:
    """A single-container request the AM exposes to the scheduler."""

    priority: Priority
    resource: Resource
    preferred_nodes: tuple[int, ...]
    task_type: str
    task_id: str | None


class MRAppMaster:
    """Per-job ApplicationMaster driving container requests and task launch."""

    def __init__(
        self,
        job: MapReduceJob,
        scheduler_config: SchedulerConfig,
        map_resource: Resource,
        reduce_resource: Resource,
        am_resource: Resource | None = None,
        num_cluster_nodes: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.job = job
        self.scheduler_config = scheduler_config
        self.map_resource = map_resource
        self.reduce_resource = reduce_resource
        self.am_resource = am_resource or Resource(
            memory_bytes=map_resource.memory_bytes, vcores=1
        )
        self.num_cluster_nodes = num_cluster_nodes
        self._rng = make_rng(rng)
        #: True once the AM container is running and the AM has registered.
        self.registered = False
        #: Container currently hosting the AM itself.
        self.am_container: Container | None = None
        #: Whether the AM's own container has been requested already.
        self.am_requested = False
        #: Whether reduce requests have been issued.
        self.reduces_scheduled = False
        #: Containers currently held for tasks (container id → task id).
        self._held: dict[int, str] = {}
        #: Tasks indexed by id for container matching.
        self._tasks: dict[str, TaskAttempt] = {
            task.task_id: task for task in job.all_tasks
        }
        #: Tasks currently in the SCHEDULED state, in scheduling order
        #: (insertion-ordered dicts).  Maintained so each allocation pass can
        #: enumerate outstanding requests without rescanning every task.
        self._scheduled_maps: dict[str, TaskAttempt] = {}
        self._scheduled_reduces: dict[str, TaskAttempt] = {}
        #: Cached ask list; invalidated whenever the scheduled sets or the
        #: AM-container state change.
        self._asks_cache: list[ContainerAsk] | None = None

    # -- request generation -----------------------------------------------------

    @property
    def slowstart_threshold(self) -> float:
        """Fraction of completed maps required before reduces are requested."""
        if not self.scheduler_config.slowstart_enabled:
            return 1.0
        return self.scheduler_config.slowstart_completed_maps

    def container_asks(self) -> list[ContainerAsk]:
        """Outstanding single-container asks, most urgent first.

        Ordering: the AM's own container, then map tasks (priority 20), then
        reduce tasks (priority 10) — which matches how the RM serves
        priorities (larger value first, per the paper's convention).

        The list is assembled from the incrementally maintained scheduled-task
        sets and cached between state changes, so repeated allocation passes
        do not rescan (or re-allocate asks for) every task of the job.
        """
        if self._asks_cache is not None:
            return self._asks_cache
        asks: list[ContainerAsk] = []
        if not self.am_requested and self.am_container is None:
            asks.append(
                ContainerAsk(
                    priority=Priority.AM,
                    resource=self.am_resource,
                    preferred_nodes=(),
                    task_type="am",
                    task_id=None,
                )
            )
            self._asks_cache = asks
            return asks
        if not self.registered:
            self._asks_cache = asks
            return asks
        respect_locality = self.scheduler_config.respect_map_locality
        for task in self._scheduled_maps.values():
            asks.append(
                ContainerAsk(
                    priority=Priority.MAP,
                    resource=self.map_resource,
                    preferred_nodes=task.preferred_nodes if respect_locality else (),
                    task_type="map",
                    task_id=task.task_id,
                )
            )
        for task in self._scheduled_reduces.values():
            asks.append(
                ContainerAsk(
                    priority=Priority.REDUCE,
                    resource=self.reduce_resource,
                    preferred_nodes=(),
                    task_type="reduce",
                    task_id=task.task_id,
                )
            )
        self._asks_cache = asks
        return asks

    def resource_request_table(self) -> ResourceRequestTable:
        """Aggregated view of the current asks, as in paper Table 1.

        Single-container asks with the same (priority, locality, type) are
        merged into one row with a container count.
        """
        table = ResourceRequestTable()
        grouped: dict[tuple[int, str, str], int] = {}
        sizes: dict[tuple[int, str, str], Resource] = {}
        for ask in self.container_asks():
            locality = (
                f"node-{ask.preferred_nodes[0]}" if ask.preferred_nodes else ANY_LOCATION
            )
            key = (int(ask.priority), locality, ask.task_type)
            grouped[key] = grouped.get(key, 0) + 1
            sizes[key] = ask.resource
        for (priority, locality, task_type), count in grouped.items():
            table.add(
                ResourceRequest(
                    num_containers=count,
                    priority=Priority(priority),
                    resource=sizes[(priority, locality, task_type)],
                    locality=locality,
                    task_type=task_type,
                )
            )
        return table

    # -- lifecycle callbacks ------------------------------------------------------

    def on_am_container_granted(self, container: Container) -> None:
        """The RM granted the container that will host the AM itself."""
        self.am_container = container
        self.am_requested = True
        self._asks_cache = None

    def on_registered(self, time: float) -> None:
        """AM process is up: send the map requests (and reduces if trivially due)."""
        self.registered = True
        self.job.am_started_at = time
        for task in self.job.map_tasks:
            if task.state is TaskState.PENDING:
                task.mark_scheduled(time)
                self._scheduled_maps[task.task_id] = task
        self._asks_cache = None
        self._maybe_schedule_reduces(time)

    def _maybe_schedule_reduces(self, time: float) -> None:
        """Request reduce containers once the slow-start condition is met."""
        if self.reduces_scheduled:
            return
        fraction = self.job.map_completion_fraction()
        no_maps = not self.job.map_tasks
        if no_maps or fraction >= self.slowstart_threshold - 1e-12:
            for task in self.job.reduce_tasks:
                if task.state is TaskState.PENDING:
                    task.mark_scheduled(time)
                    self._scheduled_reduces[task.task_id] = task
            self.reduces_scheduled = True
            self._asks_cache = None

    def match_container(self, container: Container, hinted_task_id: str | None) -> TaskAttempt:
        """Late binding: pick the task that will actually use ``container``.

        Preference order (Section 3.4): a scheduled task of the matching type
        whose input data is local to the container's node; otherwise the
        hinted task; otherwise the first scheduled task of that type.
        """
        wanted_type = (
            TaskType.MAP if container.priority is Priority.MAP else TaskType.REDUCE
        )
        scheduled = (
            self._scheduled_maps
            if wanted_type is TaskType.MAP
            else self._scheduled_reduces
        )
        candidates = list(scheduled.values())
        if not candidates:
            raise SimulationError(
                f"job {self.job.job_id}: container granted but no {wanted_type.value} "
                "task is waiting"
            )
        if wanted_type is TaskType.MAP:
            for task in candidates:
                if container.node_id in task.preferred_nodes:
                    return task
        if hinted_task_id is not None:
            for task in candidates:
                if task.task_id == hinted_task_id:
                    return task
        return candidates[0]

    def on_container_granted(
        self, container: Container, time: float, hinted_task_id: str | None = None
    ) -> TaskAttempt:
        """Bind a granted task container to a concrete task attempt."""
        task = self.match_container(container, hinted_task_id)
        task.mark_assigned(time, node_id=container.node_id, container_id=container.container_id)
        if task.task_type is TaskType.MAP:
            self._scheduled_maps.pop(task.task_id, None)
        else:
            self._scheduled_reduces.pop(task.task_id, None)
        self._asks_cache = None
        container.assigned_task = task.task_id
        self._held[container.container_id] = task.task_id
        return task

    # -- failure-model hooks -----------------------------------------------------

    def reschedule_task(self, task: TaskAttempt, time: float) -> None:
        """Return a failed or killed attempt to the container-request pipeline.

        The attempt is reset to PENDING, marked scheduled again, and re-enters
        the scheduled sets, so the new attempt flows through the exact same
        RM/NM grant-and-launch path as the first one.
        """
        if task.container_id is not None:
            self._held.pop(task.container_id, None)
        task.reset_for_reexecution()
        task.mark_scheduled(time)
        if task.task_type is TaskType.MAP:
            self._scheduled_maps[task.task_id] = task
        else:
            self._scheduled_reduces[task.task_id] = task
        self._asks_cache = None

    def schedule_speculative(self, clone: TaskAttempt, time: float) -> None:
        """Request a container for a backup attempt of a straggling task."""
        self._tasks[clone.task_id] = clone
        clone.mark_scheduled(time)
        if clone.task_type is TaskType.MAP:
            self._scheduled_maps[clone.task_id] = clone
        else:
            self._scheduled_reduces[clone.task_id] = clone
        self._asks_cache = None

    def on_task_killed(self, task: TaskAttempt) -> None:
        """Drop all AM bookkeeping for a killed attempt (speculative loser)."""
        if task.container_id is not None:
            self._held.pop(task.container_id, None)
        if task.task_type is TaskType.MAP:
            self._scheduled_maps.pop(task.task_id, None)
        else:
            self._scheduled_reduces.pop(task.task_id, None)
        self._asks_cache = None

    def _duration_factor(self) -> float:
        """Log-normal multiplicative jitter applied to a task's work amounts.

        Mean 1, coefficient of variation ``profile.duration_cv`` — models the
        task-duration variability (stragglers) observed on real clusters.
        """
        cv = self.job.profile.duration_cv
        if cv <= 0:
            return 1.0
        sigma2 = math.log(1.0 + cv**2)
        mu = -0.5 * sigma2
        return float(self._rng.lognormal(mean=mu, sigma=math.sqrt(sigma2)))

    def build_stages(self, task: TaskAttempt) -> None:
        """Create the work stages of ``task`` for its assigned node."""
        if task.assigned_node is None:
            raise SimulationError(f"task {task.task_id} has no assigned node")
        profile = self.job.profile
        if task.task_type is TaskType.MAP:
            split = self.job.split_for(task)
            data_local = task.assigned_node in split.preferred_nodes
            stages = build_map_stages(
                split_bytes=split.size_bytes,
                map_output_bytes=self.job.map_output_bytes(split),
                cpu_seconds_per_mib=profile.map_cpu_seconds_per_mib,
                spill_write_factor=profile.spill_write_factor,
                startup_cpu_seconds=profile.startup_cpu_seconds,
                data_local=data_local,
            )
        else:
            remote_bytes, local_bytes = self._expected_shuffle_split(task.assigned_node)
            stages = build_reduce_stages(
                shuffle_bytes_remote=remote_bytes,
                shuffle_bytes_local=local_bytes,
                reduce_input_bytes=self.job.reduce_input_bytes,
                reduce_output_bytes=self.job.reduce_output_bytes,
                cpu_seconds_per_mib=profile.reduce_cpu_seconds_per_mib,
                merge_write_factor=profile.merge_write_factor,
                startup_cpu_seconds=profile.startup_cpu_seconds,
            )
        factor = self._duration_factor()
        if factor != 1.0:
            for stage in stages:
                stage.scale(factor)
        task.set_stages(stages)

    def _expected_shuffle_split(self, reduce_node: int) -> tuple[float, float]:
        """(remote, local) shuffle bytes expected for a reducer on ``reduce_node``.

        Maps already assigned contribute according to their actual node; maps
        not yet assigned contribute the expected remote fraction
        ``(n - 1) / n`` for a cluster of ``n`` nodes.
        """
        remote = 0.0
        local = 0.0
        n = max(1, self.num_cluster_nodes)
        expected_remote_fraction = (n - 1) / n
        for index, task in enumerate(self.job.map_tasks):
            share = self.job.map_output_bytes(self.job.splits[index]) / self.job.num_reduces
            if task.assigned_node is None:
                remote += share * expected_remote_fraction
                local += share * (1.0 - expected_remote_fraction)
            elif task.assigned_node == reduce_node:
                local += share
            else:
                remote += share
        return remote, local

    def on_task_completed(self, task: TaskAttempt, time: float) -> None:
        """Handle task completion: progress bookkeeping and slow-start check."""
        if task.container_id is not None:
            self._held.pop(task.container_id, None)
        if task.task_type is TaskType.MAP:
            self._maybe_schedule_reduces(time)

    def held_containers(self) -> int:
        """Number of task containers the AM currently holds (Fair scheduler metric)."""
        return len(self._held)

    @property
    def is_finished(self) -> bool:
        """Whether the job has fully completed."""
        return self.job.is_complete

    def subtask_durations(self) -> dict[SubtaskLabel, list[float]]:
        """Collect per-subtask wall-clock durations from completed tasks."""
        durations: dict[SubtaskLabel, list[float]] = {
            SubtaskLabel.MAP: [],
            SubtaskLabel.SHUFFLE_SORT: [],
            SubtaskLabel.MERGE: [],
        }
        for task in self.job.map_tasks:
            if task.state is TaskState.COMPLETED:
                durations[SubtaskLabel.MAP].append(task.duration)
        for task in self.job.reduce_tasks:
            if task.state is TaskState.COMPLETED:
                durations[SubtaskLabel.SHUFFLE_SORT].append(
                    task.subtask_duration(SubtaskLabel.SHUFFLE_SORT)
                )
                durations[SubtaskLabel.MERGE].append(
                    task.subtask_duration(SubtaskLabel.MERGE)
                )
        return durations
