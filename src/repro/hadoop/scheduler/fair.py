"""Fair scheduler (extension beyond the paper's assumptions).

Offers free capacity to the application currently holding the *fewest*
allocated containers, approximating YARN's FairScheduler with equal weights.
Used by the scheduler-comparison example and the scheduling ablation bench to
quantify how much the paper's FIFO assumption matters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..am import MRAppMaster


class FairScheduler(Scheduler):
    """Least-allocated-first ordering across applications."""

    name = "fair"

    def application_order(self, applications: list["MRAppMaster"]) -> list["MRAppMaster"]:
        """Order by number of currently held containers, fewest first."""
        return sorted(
            applications,
            key=lambda app: (app.held_containers(), app.job.job_id),
        )
