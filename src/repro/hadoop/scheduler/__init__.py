"""Pluggable YARN schedulers.

The paper assumes the default **Capacity** scheduler with a single root queue,
which degenerates to FIFO ordering across applications (Section 4.2.2,
scheduling assumption 1).  A plain FIFO scheduler and a Fair scheduler are
also provided so the effect of this assumption can be studied (ablation
benches).
"""

from .base import Assignment, Scheduler
from .capacity import CapacityScheduler
from .fifo import FifoScheduler
from .fair import FairScheduler


def create_scheduler(name: str) -> Scheduler:
    """Factory mapping a scheduler name to an instance.

    Parameters
    ----------
    name:
        ``"capacity"``, ``"fifo"`` or ``"fair"``.
    """
    registry = {
        "capacity": CapacityScheduler,
        "fifo": FifoScheduler,
        "fair": FairScheduler,
    }
    try:
        return registry[name]()
    except KeyError as exc:
        raise ValueError(f"unknown scheduler {name!r}") from exc


__all__ = [
    "Assignment",
    "Scheduler",
    "CapacityScheduler",
    "FifoScheduler",
    "FairScheduler",
    "create_scheduler",
]
