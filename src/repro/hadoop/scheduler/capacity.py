"""Capacity scheduler with a single root queue.

The paper's first scheduling assumption (Section 4.2.2): the ResourceManager
uses the Capacity scheduler, there are no hierarchical queues, only one root
queue — so resources are offered to applications in FIFO order of submission.
Within one application, requests are served by priority (maps before
reduces), which the base class already handles through the AM's ask ordering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..am import MRAppMaster


class CapacityScheduler(Scheduler):
    """Single-root-queue Capacity scheduler (FIFO across applications)."""

    name = "capacity"

    def application_order(self, applications: list["MRAppMaster"]) -> list["MRAppMaster"]:
        """FIFO by submission time, ties broken by job id."""
        return sorted(
            applications,
            key=lambda app: (app.job.submitted_at if app.job.submitted_at is not None else 0.0, app.job.job_id),
        )
