"""Scheduler interface shared by the Capacity, FIFO and Fair schedulers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..cluster import Cluster
from ..resources import Priority, Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from ..am import MRAppMaster


@dataclass(frozen=True)
class Assignment:
    """One container assignment decided by a scheduler pass."""

    job_id: int
    node_id: int
    priority: Priority
    resource: Resource
    task_type: str
    #: Identifier of the concrete pending task selected for this container
    #: (the AM may rebind it — late binding — but the simulator honours it).
    task_id: str | None = None


class Scheduler(ABC):
    """A YARN scheduler: decides which outstanding requests get containers.

    Schedulers are stateless between calls; each :meth:`assign` pass looks at
    the current free capacity of the cluster and the outstanding requests of
    the registered ApplicationMasters and returns the containers to grant.
    The ResourceManager applies the assignments (reserving node resources and
    notifying the AMs).
    """

    #: Human-readable scheduler name.
    name: str = "base"

    @abstractmethod
    def application_order(self, applications: list["MRAppMaster"]) -> list["MRAppMaster"]:
        """Return the order in which applications are offered free capacity."""

    def assign(
        self,
        cluster: Cluster,
        applications: list["MRAppMaster"],
    ) -> list[Assignment]:
        """Produce container assignments for the current cluster state.

        The default implementation walks applications in
        :meth:`application_order`, asks each for its outstanding requests
        (already sorted by priority, maps before reduces), and places each
        container honouring locality preferences when possible.
        """
        assignments: list[Assignment] = []
        # Track capacity tentatively consumed by this pass without mutating
        # the real nodes; the ResourceManager commits the assignments.  Dead
        # nodes are excluded here, which is what keeps every placement path
        # (preferred and scan) away from failed hardware.
        tentative: dict[int, Resource] = {
            node.node_id: node.available for node in cluster if node.alive
        }
        # Free capacity only shrinks within a pass, so once a container shape
        # fails to fit on every node, every later ask of the same shape fails
        # too: remember it and skip the full fit scan.
        unplaceable: set[Resource] = set()

        for app in self.application_order(applications):
            for ask in app.container_asks():
                if ask.resource in unplaceable:
                    continue
                placed_node = self._place(
                    cluster, tentative, ask.preferred_nodes, ask.resource
                )
                if placed_node is None:
                    unplaceable.add(ask.resource)
                    continue
                tentative[placed_node] = tentative[placed_node] - ask.resource
                assignments.append(
                    Assignment(
                        job_id=app.job.job_id,
                        node_id=placed_node,
                        priority=ask.priority,
                        resource=ask.resource,
                        task_type=ask.task_type,
                        task_id=ask.task_id,
                    )
                )
        return assignments

    @staticmethod
    def _place(
        cluster: Cluster,
        tentative: dict[int, Resource],
        preferred_nodes: tuple[int, ...],
        resource: Resource,
    ) -> int | None:
        """Pick a node for one container.

        Preference order: (1) a preferred (data-local) node with capacity,
        (2) the node with the lowest occupancy rate that has capacity — the
        "uniform distribution over nodes with the highest remaining capacity"
        rule of paper Section 4.2.2.  Occupancy is computed against the
        capacity still free in *this* scheduling pass (``tentative``).
        """
        for node_id in preferred_nodes:
            free = tentative.get(node_id)
            if free is not None and free.covers(resource):
                return node_id

        # Single fused scan: find the fitting node with the lowest occupancy
        # (ties: lowest id) without materialising a candidate list per ask.
        best_id: int | None = None
        best_occupancy = 0.0
        for node in cluster:
            free = tentative.get(node.node_id)
            if free is None or not free.covers(resource):
                continue
            capacity_bytes = node.capacity.memory_bytes
            occupancy = (
                1.0 - free.memory_bytes / capacity_bytes if capacity_bytes else 0.0
            )
            if best_id is None or occupancy < best_occupancy:
                best_id = node.node_id
                best_occupancy = occupancy
        return best_id
