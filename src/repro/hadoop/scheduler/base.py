"""Scheduler interface shared by the Capacity, FIFO and Fair schedulers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..cluster import Cluster
from ..resources import Priority, Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from ..am import MRAppMaster


@dataclass(frozen=True)
class Assignment:
    """One container assignment decided by a scheduler pass."""

    job_id: int
    node_id: int
    priority: Priority
    resource: Resource
    task_type: str
    #: Identifier of the concrete pending task selected for this container
    #: (the AM may rebind it — late binding — but the simulator honours it).
    task_id: str | None = None


class Scheduler(ABC):
    """A YARN scheduler: decides which outstanding requests get containers.

    Schedulers are stateless between calls; each :meth:`assign` pass looks at
    the current free capacity of the cluster and the outstanding requests of
    the registered ApplicationMasters and returns the containers to grant.
    The ResourceManager applies the assignments (reserving node resources and
    notifying the AMs).
    """

    #: Human-readable scheduler name.
    name: str = "base"

    @abstractmethod
    def application_order(self, applications: list["MRAppMaster"]) -> list["MRAppMaster"]:
        """Return the order in which applications are offered free capacity."""

    def assign(
        self,
        cluster: Cluster,
        applications: list["MRAppMaster"],
    ) -> list[Assignment]:
        """Produce container assignments for the current cluster state.

        The default implementation walks applications in
        :meth:`application_order`, asks each for its outstanding requests
        (already sorted by priority, maps before reduces), and places each
        container honouring locality preferences when possible.
        """
        assignments: list[Assignment] = []
        # Track capacity tentatively consumed by this pass without mutating
        # the real nodes; the ResourceManager commits the assignments.
        tentative: dict[int, Resource] = {
            node.node_id: node.available for node in cluster
        }

        for app in self.application_order(applications):
            for ask in app.container_asks():
                placed_node = self._place(
                    cluster, tentative, ask.preferred_nodes, ask.resource
                )
                if placed_node is None:
                    continue
                tentative[placed_node] = tentative[placed_node] - ask.resource
                assignments.append(
                    Assignment(
                        job_id=app.job.job_id,
                        node_id=placed_node,
                        priority=ask.priority,
                        resource=ask.resource,
                        task_type=ask.task_type,
                        task_id=ask.task_id,
                    )
                )
        return assignments

    @staticmethod
    def _place(
        cluster: Cluster,
        tentative: dict[int, Resource],
        preferred_nodes: tuple[int, ...],
        resource: Resource,
    ) -> int | None:
        """Pick a node for one container.

        Preference order: (1) a preferred (data-local) node with capacity,
        (2) the node with the lowest occupancy rate that has capacity — the
        "uniform distribution over nodes with the highest remaining capacity"
        rule of paper Section 4.2.2.  Occupancy is computed against the
        capacity still free in *this* scheduling pass (``tentative``).
        """
        def fits(node_id: int) -> bool:
            return tentative[node_id].covers(resource)

        for node_id in preferred_nodes:
            if 0 <= node_id < len(cluster) and fits(node_id):
                return node_id

        def occupancy(node_id: int) -> float:
            capacity = cluster.node(node_id).capacity
            if capacity.memory_bytes == 0:
                return 0.0
            free = tentative[node_id].memory_bytes
            return 1.0 - free / capacity.memory_bytes

        candidates = [node.node_id for node in cluster if fits(node.node_id)]
        if not candidates:
            return None
        return min(candidates, key=lambda node_id: (occupancy(node_id), node_id))
