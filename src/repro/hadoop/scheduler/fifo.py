"""Plain FIFO scheduler.

Functionally equivalent to the single-queue Capacity scheduler for the
workloads modelled here; kept as a separate class so experiments can make the
scheduling policy explicit and so the Fair scheduler has a natural sibling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..am import MRAppMaster


class FifoScheduler(Scheduler):
    """First-in-first-out across applications."""

    name = "fifo"

    def application_order(self, applications: list["MRAppMaster"]) -> list["MRAppMaster"]:
        """Order strictly by submission time (ties by job id)."""
        return sorted(
            applications,
            key=lambda app: (app.job.submitted_at if app.job.submitted_at is not None else 0.0, app.job.job_id),
        )
