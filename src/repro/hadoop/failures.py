"""Deterministic failure draws for the YARN simulator.

The simulator injects failures described by a frozen
:class:`~repro.config.FailureSpec`.  Every stochastic decision — is this
attempt a straggler, does it fail, where does it fail, which node dies —
is a pure function of ``(seed, kind, key, index)`` hashed through SHA-256,
the same idiom :class:`repro.testing.faults.FaultInjector` uses at the
harness layer.  This makes the failure schedule independent of event
interleaving and completely separate from the AM's numpy RNG stream, which
is what guarantees failure-free runs stay bit-identical to today's traces.

``MEAN_FAILURE_POINT`` is shared with the analytic backends' expected-value
inflation correction: a failed attempt wastes on average half its work, so
a failure rate ``p`` inflates expected task work by ``1 + p/(1-p) * 0.5``.
"""

from __future__ import annotations

import hashlib

from ..config import FailureSpec

#: Expected fraction of an attempt's work wasted when it fails (uniform draw).
MEAN_FAILURE_POINT = 0.5

#: Truncation bounds for the failure-point draw: keeps failed attempts from
#: degenerating into zero-length or indistinguishable-from-success runs
#: while preserving the uniform draw's mean of 0.5 by symmetry.
_FAILURE_POINT_LOW = 0.05
_FAILURE_POINT_HIGH = 0.95


class FailureModel:
    """Seeded, interleaving-independent draws for one simulation run."""

    def __init__(self, spec: FailureSpec, seed: int) -> None:
        self.spec = spec
        self._seed = int(seed)

    def _draw(self, kind: str, key: str, index: int) -> float:
        """Uniform [0, 1) draw keyed on (seed, kind, key, index)."""
        token = f"{self._seed}:{kind}:{key}:{index}".encode()
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def straggler_factor(self, task_id: str, attempt: int) -> float:
        """Runtime multiplier for this attempt (1.0 = not a straggler).

        Keyed per *attempt*, so a re-execution or speculative backup of a
        straggler draws fresh — which is exactly what lets speculation win.
        """
        if self.spec.straggler_fraction <= 0.0:
            return 1.0
        if self._draw("straggler", task_id, attempt) < self.spec.straggler_fraction:
            return self.spec.straggler_slowdown
        return 1.0

    def attempt_fails(self, task_id: str, attempt: int) -> bool:
        """Whether this attempt fails partway through.

        The last allowed attempt (``attempt >= max_attempts``) always
        succeeds, bounding re-execution and guaranteeing job completion.
        """
        if self.spec.task_failure_rate <= 0.0:
            return False
        if attempt >= self.spec.max_attempts:
            return False
        return self._draw("fail", task_id, attempt) < self.spec.task_failure_rate

    def failure_point(self, task_id: str, attempt: int) -> float:
        """Fraction of the attempt's work done before it fails (in (0, 1))."""
        u = self._draw("point", task_id, attempt)
        span = _FAILURE_POINT_HIGH - _FAILURE_POINT_LOW
        return _FAILURE_POINT_LOW + u * span

    def pick_victim(self, eligible: list[int], occurrence: int) -> int:
        """Deterministically choose the node id that dies at this event."""
        u = self._draw("node", "victim", occurrence)
        return eligible[min(int(u * len(eligible)), len(eligible) - 1)]


def expected_inflation(spec: FailureSpec) -> float:
    """Expected-value runtime inflation for straggler + re-execution effects.

    ``(1 + f*(s-1))`` is the expected per-task slowdown from a straggler
    fraction ``f`` at slowdown ``s``; ``1 + p/(1-p) * MEAN_FAILURE_POINT``
    is the expected extra work from failed attempts at rate ``p`` (each
    failure wastes on average half an attempt, and the number of failures
    before success is geometric).  Both factors are >= 1, which gives the
    analytic backends' corrections monotonicity by construction.
    """
    f = spec.straggler_fraction
    s = spec.straggler_slowdown
    p = spec.task_failure_rate
    straggler = 1.0 + f * (s - 1.0)
    rework = 1.0 + (p / (1.0 - p)) * MEAN_FAILURE_POINT
    return straggler * rework
