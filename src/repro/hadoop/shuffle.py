"""Shuffle availability model.

The shuffle phase of a reduce task can only fetch the output of map tasks
that have already completed — this is the map→shuffle pipeline the paper
models through reducer slow start and through the dependency of the
shuffle-sort subtask on the first/last map task (Algorithm 1, lines 7-11).

:class:`ShuffleTracker` answers, for a running reduce task, how many bytes of
*remote* map output are currently available to fetch over the network.  The
execution engine uses this cap to stall a shuffle stage that has caught up
with the map wave, and un-stalls it as further maps finish.
"""

from __future__ import annotations

from ..exceptions import SimulationError
from .job import MapReduceJob
from .tasks import StageKind, TaskAttempt, TaskType, WorkStage


class ShuffleTracker:
    """Per-job view of how much shuffle data a reducer can currently fetch."""

    def __init__(self, jobs: dict[int, MapReduceJob]) -> None:
        self._jobs = jobs

    def job_for(self, task: TaskAttempt) -> MapReduceJob:
        """The job owning ``task``."""
        try:
            return self._jobs[task.job_id]
        except KeyError as exc:
            raise SimulationError(f"unknown job id {task.job_id}") from exc

    def network_cap_bytes(self, task: TaskAttempt) -> float:
        """Upper bound on the network bytes ``task``'s shuffle may have processed.

        * Before all maps of the job finish, the cap is the remote portion of
          the map output already produced (from the reducer's standpoint).
        * Once every map has completed, the cap equals the full planned
          network work of the stage, letting it run to completion even if the
          plan slightly over- or under-estimated remoteness.
        """
        if task.task_type is not TaskType.REDUCE:
            raise SimulationError("network caps only apply to reduce tasks")
        job = self.job_for(task)
        network_stage = next(
            (stage for stage in task.stages if stage.kind is StageKind.NETWORK), None
        )
        if network_stage is None:
            return 0.0
        if job.all_maps_completed():
            return float(network_stage.amount)
        available_remote = job.shuffle_remote_available_bytes(task.assigned_node)
        return min(float(network_stage.amount), available_remote)

    #: Shuffle amounts below one byte are treated as "nothing left to fetch";
    #: using a whole byte (rather than a tiny epsilon) keeps the fluid engine
    #: from scheduling zero-length progress steps when a reducer has caught up
    #: with the map wave.
    _STALL_THRESHOLD_BYTES = 1.0

    def is_stalled(self, task: TaskAttempt) -> bool:
        """Whether the reduce task's *current* network stage cannot progress now."""
        stage = task.current_stage()
        if stage is None or stage.kind is not StageKind.NETWORK:
            return False
        if task.task_type is not TaskType.REDUCE:
            return False
        return self.is_stalled_stage(task, stage)

    def is_stalled_stage(self, task: TaskAttempt, stage: WorkStage) -> bool:
        """O(1) stall check for a reduce whose *current* stage is ``stage`` (network).

        The execution engine caches the current network stage per running
        reducer, so this avoids the per-event stage rescans of
        :meth:`is_stalled` / :meth:`network_cap_bytes`.
        """
        job = self.job_for(task)
        if job.all_maps_completed():
            return False
        processed = stage.amount - stage.remaining
        cap = min(float(stage.amount), job.shuffle_remote_available_bytes(task.assigned_node))
        return cap - processed <= self._STALL_THRESHOLD_BYTES

    def processable_bytes(self, task: TaskAttempt) -> float:
        """Bytes the current network stage can still process before stalling."""
        stage = task.current_stage()
        if stage is None or stage.kind is not StageKind.NETWORK:
            return 0.0
        return self.processable_bytes_stage(task, stage)

    def processable_bytes_stage(self, task: TaskAttempt, stage: WorkStage) -> float:
        """O(1) variant of :meth:`processable_bytes` for a cached network stage."""
        job = self.job_for(task)
        all_done = job.all_maps_completed()
        processed = stage.amount - stage.remaining
        if all_done:
            cap = float(stage.amount)
        else:
            cap = min(
                float(stage.amount),
                job.shuffle_remote_available_bytes(task.assigned_node),
            )
        available = min(stage.remaining, cap - processed)
        if available <= self._STALL_THRESHOLD_BYTES and not all_done:
            return 0.0
        return max(0.0, available)
