"""Fluid processor-sharing execution engine (incremental core).

The engine advances the work stages of all running task attempts between
discrete events.  Between two events the set of active stages is constant, so
each stage progresses at a constant rate determined by the
:class:`~repro.hadoop.contention.SharingModel`; the next interesting instant
is the earliest stage completion (or shuffle stall boundary).

The implementation is event-incremental: instead of rescanning every stage of
every active attempt on each event, the engine caches per attempt the index
of its current stage (advanced only on stage completion), keeps the per-node
:class:`~repro.hadoop.contention.ResourceDemandCount` triples up to date on
membership / stage-transition / stall changes only, and reuses the stage
rates computed for :meth:`ExecutionEngine.time_to_next_completion` in the
subsequent :meth:`ExecutionEngine.advance` call.  Shuffle stall states are
the only quantity that cannot be updated purely incrementally (they depend on
map completions recorded by the simulator between engine calls); they are
re-evaluated in O(1) per *running reducer in its network stage* before any
rate is used.

The engine deliberately knows nothing about YARN: it only sees running tasks,
the node each one runs on, and the shuffle availability tracker.  The
:class:`~repro.hadoop.simulator.ClusterSimulator` couples it with the
ResourceManager / ApplicationMaster logic.
"""

from __future__ import annotations

from ..exceptions import SimulationError
from .cluster import Cluster
from .contention import ResourceDemandCount, SharingModel
from .shuffle import ShuffleTracker
from .tasks import StageKind, TaskAttempt, TaskType, WorkStage

#: Numerical slack when deciding whether a stage has finished.
_EPSILON = 1e-9
#: Upper bound returned when no stage can complete (engine idle / all stalled).
INFINITY = float("inf")

#: Slot of each stage kind inside the per-node ``[cpu, disk, network]`` counts.
_KIND_SLOT = {StageKind.CPU: 0, StageKind.DISK: 1, StageKind.NETWORK: 2}


class _ActiveTask:
    """A running attempt plus the cached execution state the engine maintains."""

    __slots__ = (
        "attempt",
        "node_id",
        "stage_index",
        "stage",
        "slot",
        "is_reduce_network",
        "stalled",
    )

    def __init__(self, attempt: TaskAttempt, node_id: int, stage_index: int) -> None:
        self.attempt = attempt
        self.node_id = node_id
        self.stage_index = stage_index
        self.stage: WorkStage = attempt.stages[stage_index]
        self.slot = _KIND_SLOT[self.stage.kind]
        self.is_reduce_network = (
            self.stage.kind is StageKind.NETWORK
            and attempt.task_type is TaskType.REDUCE
        )
        self.stalled = False


class ExecutionEngine:
    """Advances running task attempts under processor sharing."""

    def __init__(self, cluster: Cluster, shuffle_tracker: ShuffleTracker) -> None:
        self.cluster = cluster
        self.shuffle = shuffle_tracker
        self.sharing = SharingModel(cluster.config.node)
        self._active: dict[str, _ActiveTask] = {}
        #: Per-node ``[cpu, disk, network]`` counts of active, non-stalled stages.
        self._demand: dict[int, list[int]] = {}
        #: Active reducers whose current stage is their network (shuffle) stage.
        self._network_entries: dict[str, _ActiveTask] = {}
        #: Entries added since the last advance whose leading zero-work stages
        #: still need their timestamps stamped (mirrors the full-scan stamping
        #: the non-incremental engine performed on every advance).
        self._pending_stamp: list[_ActiveTask] = []
        #: Per-node ``(cpu, disk, network)`` stage-rate vectors for the current
        #: demand counts, plus a memo keyed by the count triple (the cluster is
        #: homogeneous, so many nodes share the same contention state).
        self._node_rates: dict[int, tuple[float, float, float]] = {}
        self._rates_by_counts: dict[tuple[int, int, int], tuple[float, float, float]] = {}
        #: Whether ``_node_rates`` matches the current demand counts.
        self._rates_fresh = False

    # -- membership --------------------------------------------------------------

    def add_task(self, attempt: TaskAttempt, now: float) -> None:
        """Start executing ``attempt`` (its first stage becomes active)."""
        if attempt.task_id in self._active:
            raise SimulationError(f"task {attempt.task_id} is already executing")
        if attempt.assigned_node is None:
            raise SimulationError(f"task {attempt.task_id} has no node")
        stage_index = attempt.first_unfinished_index()
        if stage_index is None:
            raise SimulationError(f"task {attempt.task_id} has no work to do")
        entry = _ActiveTask(attempt, attempt.assigned_node, stage_index)
        entry.stage.started_at = now
        self._active[attempt.task_id] = entry
        if entry.is_reduce_network:
            self._network_entries[attempt.task_id] = entry
        self._demand_add(entry.node_id, entry.stage.kind)
        if stage_index > 0:
            self._pending_stamp.append(entry)
        self._rates_fresh = False

    def remove_task(self, attempt: TaskAttempt) -> None:
        """Stop tracking a (completed) attempt."""
        entry = self._active.pop(attempt.task_id, None)
        if entry is None:
            return
        self._network_entries.pop(attempt.task_id, None)
        if not entry.stalled:
            self._demand_remove(entry.node_id, entry.stage.kind)
        self._rates_fresh = False

    @property
    def active_tasks(self) -> list[TaskAttempt]:
        """Attempts currently executing."""
        return [entry.attempt for entry in self._active.values()]

    def has_work(self) -> bool:
        """Whether any attempt is currently executing."""
        return bool(self._active)

    # -- incremental demand bookkeeping -------------------------------------------

    def _demand_add(self, node_id: int, kind: StageKind) -> None:
        counts = self._demand.get(node_id)
        if counts is None:
            counts = self._demand[node_id] = [0, 0, 0]
        counts[_KIND_SLOT[kind]] += 1

    def _demand_remove(self, node_id: int, kind: StageKind) -> None:
        counts = self._demand.get(node_id)
        if counts is None or counts[_KIND_SLOT[kind]] <= 0:
            raise SimulationError(
                f"demand underflow on node {node_id} for {kind.value}"
            )
        counts[_KIND_SLOT[kind]] -= 1

    def _refresh_stalls(self) -> None:
        """Re-evaluate shuffle stall states (map completions change them)."""
        for entry in self._network_entries.values():
            stalled = self.shuffle.is_stalled_stage(entry.attempt, entry.stage)
            if stalled != entry.stalled:
                entry.stalled = stalled
                if stalled:
                    self._demand_remove(entry.node_id, StageKind.NETWORK)
                else:
                    self._demand_add(entry.node_id, StageKind.NETWORK)
                self._rates_fresh = False

    def _compute_rates(self) -> None:
        """Recompute the per-node stage-rate vectors from the demand counts."""
        rate_for_count = self.sharing.rate_for_count
        memo = self._rates_by_counts
        node_rates = self._node_rates
        node_rates.clear()
        for node_id, counts in self._demand.items():
            key = (counts[0], counts[1], counts[2])
            rates = memo.get(key)
            if rates is None:
                rates = (
                    rate_for_count(StageKind.CPU, key[0]) if key[0] else 0.0,
                    rate_for_count(StageKind.DISK, key[1]) if key[1] else 0.0,
                    rate_for_count(StageKind.NETWORK, key[2]) if key[2] else 0.0,
                )
                memo[key] = rates
            node_rates[node_id] = rates
        self._rates_fresh = True

    def _ensure_fresh(self) -> None:
        self._refresh_stalls()
        if not self._rates_fresh:
            self._compute_rates()

    # -- introspection (testing / debugging) ---------------------------------------

    def demand_snapshot(self) -> dict[int, ResourceDemandCount]:
        """The incrementally maintained per-node demand counts."""
        return {
            node_id: ResourceDemandCount(cpu=counts[0], disk=counts[1], network=counts[2])
            for node_id, counts in self._demand.items()
            if counts[0] or counts[1] or counts[2]
        }

    def recount_demand(self) -> dict[int, ResourceDemandCount]:
        """From-scratch recount of the demand counts (test oracle).

        Recomputes each attempt's current stage and stall state without using
        any cached engine state, exactly like the pre-incremental engine did
        on every event.
        """
        cpu: dict[int, int] = {}
        disk: dict[int, int] = {}
        network: dict[int, int] = {}
        for entry in self._active.values():
            stage = entry.attempt.current_stage()
            if stage is None:
                continue
            if stage.kind is StageKind.NETWORK and self.shuffle.is_stalled(entry.attempt):
                continue
            node = entry.node_id
            if stage.kind is StageKind.CPU:
                cpu[node] = cpu.get(node, 0) + 1
            elif stage.kind is StageKind.DISK:
                disk[node] = disk.get(node, 0) + 1
            else:
                network[node] = network.get(node, 0) + 1
        nodes = set(cpu) | set(disk) | set(network)
        return {
            node: ResourceDemandCount(
                cpu=cpu.get(node, 0), disk=disk.get(node, 0), network=network.get(node, 0)
            )
            for node in nodes
        }

    # -- time stepping -----------------------------------------------------------

    def time_to_next_completion(self) -> float:
        """Smallest time until some active stage completes (or hits its shuffle cap).

        Returns :data:`INFINITY` when nothing is running or everything is
        stalled waiting for map output.  The rates computed here are cached
        and reused by the immediately following :meth:`advance` call.
        """
        self._ensure_fresh()
        shuffle = self.shuffle
        node_rates = self._node_rates
        horizon = INFINITY
        for entry in self._active.values():
            if entry.stalled:
                continue
            rate = node_rates[entry.node_id][entry.slot]
            if rate <= 0:
                continue
            stage = entry.stage
            remaining = stage.remaining
            if entry.is_reduce_network:
                remaining = min(
                    remaining, shuffle.processable_bytes_stage(entry.attempt, stage)
                )
                if remaining <= _EPSILON:
                    continue
            step = remaining / rate
            if step <= 1e-9:
                # Guard against zero-length progress steps from floating-point
                # residue; treat the stage as completing "now".
                step = 1e-9
            if step < horizon:
                horizon = step
        return horizon

    def advance(self, dt: float, now: float) -> list[TaskAttempt]:
        """Progress every active stage by ``dt`` seconds ending at time ``now``.

        Returns the attempts that completed their final stage during this
        step.  Intermediate stage transitions are handled internally (the
        next stage starts immediately at ``now``).
        """
        if dt < 0:
            raise SimulationError("cannot advance time backwards")
        completed: list[TaskAttempt] = []
        transitioned: list[_ActiveTask] = []
        if dt > 0:
            if not self._rates_fresh:
                self._ensure_fresh()
            node_rates = self._node_rates
            for entry in self._active.values():
                if entry.stalled:
                    continue
                rate = node_rates[entry.node_id][entry.slot]
                if rate <= 0:
                    continue
                stage = entry.stage
                stage.remaining -= rate * dt
                if stage.is_finished:
                    stage.remaining = 0.0
                    transitioned.append(entry)
                if entry.is_reduce_network:
                    entry.attempt.shuffled_bytes = stage.amount - stage.remaining
        # Stamp the leading zero-work stages of attempts added since the last
        # advance (the non-incremental engine stamped them on its next full
        # stage scan, i.e. at this very timestamp).
        if self._pending_stamp:
            for entry in self._pending_stamp:
                if self._active.get(entry.attempt.task_id) is not entry:
                    continue
                for stage in entry.attempt.stages[: entry.stage_index]:
                    if stage.finished_at is None:
                        stage.finished_at = now
                        if stage.started_at is None:
                            stage.started_at = now
            self._pending_stamp.clear()
        # Handle stage transitions and task completions at the new time: stamp
        # the finish time of every newly finished stage and the start time of
        # the stage that becomes current.
        for entry in transitioned:
            attempt = entry.attempt
            stages = attempt.stages
            finished_stage = entry.stage
            if finished_stage.finished_at is None:
                finished_stage.finished_at = now
                if finished_stage.started_at is None:
                    finished_stage.started_at = now
            index = entry.stage_index + 1
            while index < len(stages):
                stage = stages[index]
                if stage.is_finished:
                    # Zero-work stage: starts and finishes instantaneously.
                    if stage.finished_at is None:
                        stage.finished_at = now
                        if stage.started_at is None:
                            stage.started_at = now
                    index += 1
                    continue
                if stage.started_at is None:
                    stage.started_at = now
                break
            if index >= len(stages):
                completed.append(attempt)
                continue
            # The attempt moves on to its next stage: update the cached stage
            # pointer and the per-node demand counts (the finished stage was
            # necessarily non-stalled, otherwise it could not have progressed).
            self._demand_remove(entry.node_id, finished_stage.kind)
            entry.stage_index = index
            entry.stage = stages[index]
            entry.slot = _KIND_SLOT[entry.stage.kind]
            was_reduce_network = entry.is_reduce_network
            entry.is_reduce_network = (
                entry.stage.kind is StageKind.NETWORK
                and attempt.task_type is TaskType.REDUCE
            )
            if was_reduce_network and not entry.is_reduce_network:
                self._network_entries.pop(attempt.task_id, None)
            elif entry.is_reduce_network and not was_reduce_network:
                self._network_entries[attempt.task_id] = entry
            entry.stalled = False  # re-evaluated before the next rate use
            self._demand_add(entry.node_id, entry.stage.kind)
        if transitioned:
            self._rates_fresh = False
        for attempt in completed:
            self.remove_task(attempt)
        return completed
