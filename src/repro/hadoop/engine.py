"""Fluid processor-sharing execution engine.

The engine advances the work stages of all running task attempts between
discrete events.  Between two events the set of active stages is constant, so
each stage progresses at a constant rate determined by the
:class:`~repro.hadoop.contention.SharingModel`; the next interesting instant
is the earliest stage completion (or shuffle stall boundary).

The engine deliberately knows nothing about YARN: it only sees running tasks,
the node each one runs on, and the shuffle availability tracker.  The
:class:`~repro.hadoop.simulator.ClusterSimulator` couples it with the
ResourceManager / ApplicationMaster logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import SimulationError
from .cluster import Cluster
from .contention import ResourceDemandCount, SharingModel
from .shuffle import ShuffleTracker
from .tasks import StageKind, TaskAttempt, TaskType

#: Numerical slack when deciding whether a stage has finished.
_EPSILON = 1e-9
#: Upper bound returned when no stage can complete (engine idle / all stalled).
INFINITY = float("inf")


@dataclass
class _ActiveTask:
    """A running attempt plus the node hosting it."""

    attempt: TaskAttempt
    node_id: int


class ExecutionEngine:
    """Advances running task attempts under processor sharing."""

    def __init__(self, cluster: Cluster, shuffle_tracker: ShuffleTracker) -> None:
        self.cluster = cluster
        self.shuffle = shuffle_tracker
        self.sharing = SharingModel(cluster.config.node)
        self._active: dict[str, _ActiveTask] = {}

    # -- membership --------------------------------------------------------------

    def add_task(self, attempt: TaskAttempt, now: float) -> None:
        """Start executing ``attempt`` (its first stage becomes active)."""
        if attempt.task_id in self._active:
            raise SimulationError(f"task {attempt.task_id} is already executing")
        if attempt.assigned_node is None:
            raise SimulationError(f"task {attempt.task_id} has no node")
        stage = attempt.current_stage()
        if stage is None:
            raise SimulationError(f"task {attempt.task_id} has no work to do")
        stage.started_at = now
        self._active[attempt.task_id] = _ActiveTask(attempt=attempt, node_id=attempt.assigned_node)

    def remove_task(self, attempt: TaskAttempt) -> None:
        """Stop tracking a (completed) attempt."""
        self._active.pop(attempt.task_id, None)

    @property
    def active_tasks(self) -> list[TaskAttempt]:
        """Attempts currently executing."""
        return [entry.attempt for entry in self._active.values()]

    def has_work(self) -> bool:
        """Whether any attempt is currently executing."""
        return bool(self._active)

    # -- rate computation ----------------------------------------------------------

    def _demand_counts(self) -> dict[int, ResourceDemandCount]:
        """Per-node counts of active, non-stalled stages per resource."""
        cpu: dict[int, int] = {}
        disk: dict[int, int] = {}
        network: dict[int, int] = {}
        for entry in self._active.values():
            stage = entry.attempt.current_stage()
            if stage is None:
                continue
            if stage.kind is StageKind.NETWORK and self.shuffle.is_stalled(entry.attempt):
                continue
            node = entry.node_id
            if stage.kind is StageKind.CPU:
                cpu[node] = cpu.get(node, 0) + 1
            elif stage.kind is StageKind.DISK:
                disk[node] = disk.get(node, 0) + 1
            else:
                network[node] = network.get(node, 0) + 1
        nodes = set(cpu) | set(disk) | set(network)
        return {
            node: ResourceDemandCount(
                cpu=cpu.get(node, 0), disk=disk.get(node, 0), network=network.get(node, 0)
            )
            for node in nodes
        }

    def _stage_rate(self, entry: _ActiveTask, demand: dict[int, ResourceDemandCount]) -> float:
        """Current processing rate for the entry's current stage (0 when stalled)."""
        stage = entry.attempt.current_stage()
        if stage is None:
            return 0.0
        if stage.kind is StageKind.NETWORK and self.shuffle.is_stalled(entry.attempt):
            return 0.0
        node_demand = demand.get(entry.node_id)
        if node_demand is None or node_demand.count(stage.kind) == 0:
            return 0.0
        return self.sharing.rate(stage.kind, node_demand)

    # -- time stepping -----------------------------------------------------------

    def time_to_next_completion(self) -> float:
        """Smallest time until some active stage completes (or hits its shuffle cap).

        Returns :data:`INFINITY` when nothing is running or everything is
        stalled waiting for map output.
        """
        demand = self._demand_counts()
        horizon = INFINITY
        for entry in self._active.values():
            stage = entry.attempt.current_stage()
            if stage is None:
                continue
            rate = self._stage_rate(entry, demand)
            if rate <= 0:
                continue
            remaining = stage.remaining
            if stage.kind is StageKind.NETWORK and entry.attempt.task_type is TaskType.REDUCE:
                remaining = min(remaining, self.shuffle.processable_bytes(entry.attempt))
                if remaining <= _EPSILON:
                    continue
            step = remaining / rate
            if step <= 1e-9:
                # Guard against zero-length progress steps from floating-point
                # residue; treat the stage as completing "now".
                step = 1e-9
            horizon = min(horizon, step)
        return horizon

    def advance(self, dt: float, now: float) -> list[TaskAttempt]:
        """Progress every active stage by ``dt`` seconds ending at time ``now``.

        Returns the attempts that completed their final stage during this
        step.  Intermediate stage transitions are handled internally (the
        next stage starts immediately at ``now``).
        """
        if dt < 0:
            raise SimulationError("cannot advance time backwards")
        demand = self._demand_counts()
        completed: list[TaskAttempt] = []
        if dt > 0:
            for entry in self._active.values():
                stage = entry.attempt.current_stage()
                if stage is None:
                    continue
                rate = self._stage_rate(entry, demand)
                if rate <= 0:
                    continue
                stage.remaining -= rate * dt
                if stage.is_finished:
                    stage.remaining = 0.0
                if entry.attempt.task_type is TaskType.REDUCE and stage.kind is StageKind.NETWORK:
                    entry.attempt.shuffled_bytes = stage.amount - stage.remaining
        # Handle stage transitions and task completions at the new time: stamp
        # the finish time of every newly finished stage and the start time of
        # the stage that becomes current.
        for entry in list(self._active.values()):
            attempt = entry.attempt
            for stage in attempt.stages:
                if stage.is_finished:
                    if stage.finished_at is None:
                        stage.finished_at = now
                        if stage.started_at is None:
                            stage.started_at = now  # zero-work stage
                    continue
                if stage.started_at is None:
                    stage.started_at = now
                break
            if attempt.is_complete:
                completed.append(attempt)
        for attempt in completed:
            self.remove_task(attempt)
        return completed
