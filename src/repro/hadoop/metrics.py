"""Simulation-wide metric collection.

Collects cluster-level counters while a simulation runs: container grants per
priority, data-local vs. remote map launches, per-node busy time, and the
makespan.  These are not needed by the analytic model itself but make the
simulator a credible stand-in for a monitored Hadoop cluster and are used by
a few tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .resources import Container, Priority
from .tasks import TaskAttempt, TaskType


@dataclass
class SimulationMetrics:
    """Counters accumulated during one simulation run."""

    containers_granted: dict[str, int] = field(
        default_factory=lambda: {"am": 0, "map": 0, "reduce": 0}
    )
    data_local_maps: int = 0
    remote_maps: int = 0
    tasks_completed: dict[str, int] = field(
        default_factory=lambda: {"map": 0, "reduce": 0}
    )
    #: Simulation time of the last processed event.
    makespan: float = 0.0
    #: Number of scheduling (allocation) passes performed.
    allocation_passes: int = 0
    #: Failure-injection counters (all zero on a failure-free run).
    task_failures: int = 0
    task_reexecutions: int = 0
    node_failures: int = 0
    containers_killed: int = 0
    maps_invalidated: int = 0
    speculative_launched: int = 0
    speculative_wins: int = 0

    def record_grant(self, container: Container) -> None:
        """Count a granted container by its priority class."""
        if container.priority is Priority.AM:
            self.containers_granted["am"] += 1
        elif container.priority is Priority.MAP:
            self.containers_granted["map"] += 1
        else:
            self.containers_granted["reduce"] += 1

    def record_launch(self, task: TaskAttempt, data_local: bool) -> None:
        """Count a task launch and its locality (maps only)."""
        if task.task_type is TaskType.MAP:
            if data_local:
                self.data_local_maps += 1
            else:
                self.remote_maps += 1

    def record_completion(self, task: TaskAttempt, time: float) -> None:
        """Count a task completion and advance the makespan."""
        self.tasks_completed[task.task_type.value] += 1
        self.makespan = max(self.makespan, time)

    @property
    def data_local_fraction(self) -> float:
        """Fraction of map tasks launched data-locally."""
        total = self.data_local_maps + self.remote_maps
        if total == 0:
            return 1.0
        return self.data_local_maps / total
