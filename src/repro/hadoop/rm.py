"""ResourceManager: global arbitration of cluster resources.

The RM runs the pluggable scheduler over the outstanding requests of the
registered ApplicationMasters and turns scheduler decisions into granted
:class:`~repro.hadoop.resources.Container` objects, reserving node capacity.
It mirrors the role described in paper Section 3.2 (Scheduler +
ApplicationManager service); the AM-side behaviour lives in
:mod:`repro.hadoop.am`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import SchedulingError
from .am import MRAppMaster
from .cluster import Cluster
from .resources import Container, Priority
from .scheduler import Scheduler


@dataclass(frozen=True)
class Grant:
    """One container grant produced by an allocation pass."""

    application: MRAppMaster
    container: Container
    #: Task the scheduler had in mind (the AM may rebind it: late binding).
    hinted_task_id: str | None


class ResourceManager:
    """Global resource arbiter."""

    def __init__(self, cluster: Cluster, scheduler: Scheduler) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self._applications: list[MRAppMaster] = []
        self._live_containers: dict[int, Container] = {}

    # -- application registry -----------------------------------------------------

    def submit_application(self, application: MRAppMaster) -> None:
        """Register a new application (its AM container is requested by the AM)."""
        if application in self._applications:
            raise SchedulingError("application already registered")
        self._applications.append(application)

    def unregister_application(self, application: MRAppMaster) -> None:
        """Remove a finished application from the registry."""
        if application in self._applications:
            self._applications.remove(application)

    @property
    def applications(self) -> list[MRAppMaster]:
        """Currently registered applications."""
        return list(self._applications)

    # -- allocation ----------------------------------------------------------------

    def allocate(self, now: float) -> list[Grant]:
        """Run one scheduling pass and commit the resulting assignments."""
        if not self._applications:
            return []
        assignments = self.scheduler.assign(self.cluster, self._applications)
        grants: list[Grant] = []
        app_by_job = {app.job.job_id: app for app in self._applications}
        for assignment in assignments:
            application = app_by_job.get(assignment.job_id)
            if application is None:
                raise SchedulingError(
                    f"scheduler assigned a container to unknown job {assignment.job_id}"
                )
            node = self.cluster.node(assignment.node_id)
            if not node.can_fit(assignment.resource):
                # The scheduler works on a consistent snapshot, so this should
                # not happen; guard anyway to fail loudly instead of silently
                # oversubscribing a node.
                raise SchedulingError(
                    f"node {node.name} cannot host the assigned container"
                )
            node.allocate(assignment.resource)
            container = Container.grant(
                job_id=assignment.job_id,
                node_id=assignment.node_id,
                resource=assignment.resource,
                priority=assignment.priority,
                granted_at=now,
            )
            self._live_containers[container.container_id] = container
            grants.append(
                Grant(
                    application=application,
                    container=container,
                    hinted_task_id=assignment.task_id,
                )
            )
        return grants

    def release_container(self, container: Container, now: float) -> None:
        """Return a container's resources to its node."""
        if container.container_id not in self._live_containers:
            raise SchedulingError(
                f"container {container.container_id} is not live"
            )
        node = self.cluster.node(container.node_id)
        node.release(container.resource)
        container.released_at = now
        del self._live_containers[container.container_id]

    # -- introspection ----------------------------------------------------------------

    def live_containers(self, priority: Priority | None = None) -> list[Container]:
        """Currently granted containers, optionally filtered by priority."""
        containers = list(self._live_containers.values())
        if priority is None:
            return containers
        return [c for c in containers if c.priority is priority]

    def cluster_utilization(self) -> float:
        """Fraction of the cluster's YARN memory currently allocated."""
        total = self.cluster.total_capacity().memory_bytes
        if total == 0:
            return 0.0
        allocated = sum(node.allocated.memory_bytes for node in self.cluster)
        return allocated / total
