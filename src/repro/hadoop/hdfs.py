"""A minimal HDFS model: blocks, replica placement, and input splits.

The number of map tasks of a MapReduce job equals the number of input splits,
i.e. HDFS blocks (paper Section 3.3, "static resource requirements").  The
placement of block replicas determines which nodes can run a map task
*data-locally*, which in turn drives the locality-aware container placement
of the ApplicationMaster (Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..config import JobConfig
from ..exceptions import ConfigurationError
from ..randomness import make_rng
from .cluster import Cluster

#: Default HDFS replication factor.
DEFAULT_REPLICATION = 3


@dataclass(frozen=True)
class Block:
    """One HDFS block of a file."""

    block_id: int
    size_bytes: int
    #: Node ids hosting a replica of this block.
    replica_nodes: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError("block size must be positive")
        if not self.replica_nodes:
            raise ConfigurationError("a block needs at least one replica")


@dataclass(frozen=True)
class InputSplit:
    """One input split — in this model, exactly one block."""

    split_id: int
    block: Block

    @property
    def size_bytes(self) -> int:
        """Split length in bytes."""
        return self.block.size_bytes

    @property
    def preferred_nodes(self) -> tuple[int, ...]:
        """Nodes where a map over this split would be data-local."""
        return self.block.replica_nodes


@dataclass
class HdfsNamespace:
    """Block placement for the input files of the submitted jobs."""

    cluster: Cluster
    replication: int = DEFAULT_REPLICATION
    seed: int | None = None
    _blocks: list[Block] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.replication <= 0:
            raise ConfigurationError("replication must be positive")
        self._rng = make_rng(self.seed)
        self._next_block_id = 0

    def place_file(self, total_bytes: int, block_size: int) -> list[Block]:
        """Split a file into blocks and place replicas across the cluster.

        Placement policy: the first replica goes to a node chosen uniformly at
        random (the "writer" node), the remaining replicas round-robin over
        the other nodes, preferring other racks first — a simplification of
        HDFS's default policy that preserves the property the simulator cares
        about: replicas are spread, so most maps can be scheduled node-locally
        when capacity allows.
        """
        if total_bytes <= 0:
            raise ConfigurationError("total_bytes must be positive")
        if block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        effective_replication = min(self.replication, len(self.cluster))
        blocks: list[Block] = []
        remaining = total_bytes
        while remaining > 0:
            size = min(block_size, remaining)
            remaining -= size
            writer = int(self._rng.integers(0, len(self.cluster)))
            replicas = [writer]
            # Prefer nodes in other racks, then remaining nodes, deterministic order.
            writer_rack = self.cluster.node(writer).rack
            other_rack_nodes = [
                node.node_id
                for node in self.cluster
                if node.rack != writer_rack and node.node_id != writer
            ]
            same_rack_nodes = [
                node.node_id
                for node in self.cluster
                if node.rack == writer_rack and node.node_id != writer
            ]
            for candidate in other_rack_nodes + same_rack_nodes:
                if len(replicas) >= effective_replication:
                    break
                replicas.append(candidate)
            block = Block(
                block_id=self._next_block_id,
                size_bytes=size,
                replica_nodes=tuple(replicas),
            )
            self._next_block_id += 1
            self._blocks.append(block)
            blocks.append(block)
        return blocks

    def splits_for_job(self, job_config: JobConfig) -> list[InputSplit]:
        """Place the job's input file and return its input splits."""
        blocks = self.place_file(job_config.input_size_bytes, job_config.block_size_bytes)
        return [
            InputSplit(split_id=index, block=block) for index, block in enumerate(blocks)
        ]

    @property
    def blocks(self) -> list[Block]:
        """All blocks placed so far."""
        return list(self._blocks)

    def blocks_on_node(self, node_id: int) -> list[Block]:
        """Blocks that have a replica on ``node_id``."""
        return [block for block in self._blocks if node_id in block.replica_nodes]

    def local_fraction_possible(self, splits: list[InputSplit]) -> float:
        """Upper bound on the fraction of splits that can be read locally.

        Every split with at least one replica inside the cluster can in
        principle be scheduled locally, so for a healthy namespace this is
        1.0; the method exists so tests can check placement sanity.
        """
        if not splits:
            return 1.0
        local = sum(
            1 for split in splits if any(0 <= n < len(self.cluster) for n in split.preferred_nodes)
        )
        return local / len(splits)
