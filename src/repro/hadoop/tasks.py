"""Task attempts, their lifecycle states, and their resource work stages.

The paper distinguishes (Section 4.1):

* **map** tasks (not subdivided into phases),
* **shuffle-sort** subtasks of a reduce (each shuffle + partial sort pair),
* **merge** subtasks of a reduce (final sort + reduce function + write).

In the simulator each task attempt is a sequence of :class:`WorkStage`
objects, each demanding one node resource (CPU, disk, or network).  The
boundaries between the shuffle-sort and merge stages are recorded so traces
can report the two subtask durations the analytic model needs.

Lifecycle states follow the vocabulary of Figures 2-3 of the paper
(pending → scheduled → assigned → completed), extended with an explicit
``RUNNING`` state between assignment and completion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..exceptions import SimulationError
from ..units import MiB


class TaskType(enum.Enum):
    """Kind of MapReduce task."""

    MAP = "map"
    REDUCE = "reduce"


class TaskState(enum.Enum):
    """Container-request / task lifecycle states (paper Figures 2-3)."""

    PENDING = "pending"
    SCHEDULED = "scheduled"
    ASSIGNED = "assigned"
    RUNNING = "running"
    COMPLETED = "completed"


class StageKind(enum.Enum):
    """Resource a work stage consumes."""

    CPU = "cpu"
    DISK = "disk"
    NETWORK = "network"


class SubtaskLabel(enum.Enum):
    """Which analytic-model subtask a stage belongs to."""

    MAP = "map"
    SHUFFLE_SORT = "shuffle-sort"
    MERGE = "merge"


@dataclass
class WorkStage:
    """One unit of sequential work within a task attempt.

    ``amount`` is measured in core-seconds for CPU stages and in bytes for
    disk and network stages.  ``remaining`` is decremented by the simulation
    engine as the stage progresses.
    """

    kind: StageKind
    amount: float
    subtask: SubtaskLabel
    remaining: float = field(init=False)
    started_at: float | None = None
    finished_at: float | None = None
    #: Precomputed completion tolerance (recomputed by :meth:`scale`).
    finish_threshold: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise SimulationError("stage amount must be non-negative")
        self.remaining = float(self.amount)
        self.finish_threshold = 1e-9 * max(1.0, self.amount)

    def scale(self, factor: float) -> None:
        """Multiply the stage's work amount by ``factor`` (before execution starts)."""
        self.amount *= factor
        self.remaining = self.amount
        self.finish_threshold = 1e-9 * max(1.0, self.amount)

    @property
    def is_finished(self) -> bool:
        """Whether all the stage's work has been processed.

        A relative tolerance is used so that floating-point residue left by
        the fluid engine (fractions of a byte on a multi-hundred-megabyte
        stage) never keeps a stage alive forever.
        """
        return self.remaining <= self.finish_threshold


@dataclass
class TaskAttempt:
    """A single attempt of a map or reduce task.

    Attributes
    ----------
    task_id:
        Cluster-unique string identifier, e.g. ``"job0_m_003"``.
    task_type:
        Map or reduce.
    job_id:
        Identifier of the owning job.
    stages:
        Sequential work stages; the attempt is complete when all stages are.
    preferred_nodes:
        Node ids where the attempt would be data-local (maps only).
    """

    task_id: str
    task_type: TaskType
    job_id: int
    stages: list[WorkStage] = field(default_factory=list)
    preferred_nodes: tuple[int, ...] = ()
    state: TaskState = TaskState.PENDING
    assigned_node: int | None = None
    container_id: int | None = None
    #: Simulation timestamps.
    scheduled_at: float | None = None
    assigned_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    #: Reduce-only: bytes of map output already fetched by the shuffle.
    shuffled_bytes: float = 0.0

    # -- stage helpers -------------------------------------------------------

    def set_stages(self, stages: list[WorkStage]) -> None:
        """Attach the work stages (done at launch time, once the node is known)."""
        if not stages:
            raise SimulationError(f"task {self.task_id} needs at least one stage")
        if self.stages:
            raise SimulationError(f"task {self.task_id} already has stages")
        self.stages = stages

    def first_unfinished_index(self) -> int | None:
        """Index of the first unfinished stage, or ``None`` when all are done.

        The execution engine caches this index per running attempt and only
        advances it on stage completion, so the linear scan here stays off the
        simulation hot path.
        """
        for index, stage in enumerate(self.stages):
            if not stage.is_finished:
                return index
        return None

    def current_stage(self) -> WorkStage | None:
        """The first unfinished stage, or ``None`` when the attempt is done."""
        index = self.first_unfinished_index()
        if index is None:
            return None
        return self.stages[index]

    @property
    def is_complete(self) -> bool:
        """Whether every stage has finished (False while stages are unset)."""
        if not self.stages:
            return False
        return all(stage.is_finished for stage in self.stages)

    @property
    def duration(self) -> float:
        """Wall-clock duration of the attempt (start of execution → finish)."""
        if self.started_at is None or self.finished_at is None:
            raise SimulationError(f"task {self.task_id} has not completed yet")
        return self.finished_at - self.started_at

    def subtask_duration(self, label: SubtaskLabel) -> float:
        """Wall-clock time spent in stages belonging to ``label``.

        Measured from the first start to the last finish of the matching
        stages (they are contiguous by construction).
        """
        starts = [s.started_at for s in self.stages if s.subtask is label and s.started_at is not None]
        ends = [s.finished_at for s in self.stages if s.subtask is label and s.finished_at is not None]
        if not starts or not ends:
            return 0.0
        return max(ends) - min(starts)

    def resource_busy_time(self, kind: StageKind) -> float:
        """Total busy time the attempt spent on resource ``kind``.

        For CPU stages the busy time is the wall-clock time of the stage (the
        stage holds the core while it runs); for disk/network stages the
        busy time is likewise the stage's wall-clock span.
        """
        total = 0.0
        for stage in self.stages:
            if stage.kind is kind and stage.started_at is not None and stage.finished_at is not None:
                total += stage.finished_at - stage.started_at
        return total

    def reset_for_reexecution(self) -> None:
        """Return the attempt to PENDING so the AM can schedule a new attempt.

        Used by the failure model when an attempt fails or its node dies:
        stages are discarded entirely (the AM rebuilds them at the next
        launch, on whatever node the new container lands) and all placement
        state and timestamps are cleared.  ``preferred_nodes`` is kept —
        data locality is a property of the split, not of the attempt.
        """
        self.stages = []
        self.state = TaskState.PENDING
        self.assigned_node = None
        self.container_id = None
        self.scheduled_at = None
        self.assigned_at = None
        self.started_at = None
        self.finished_at = None
        self.shuffled_bytes = 0.0

    # -- state transitions ----------------------------------------------------

    def mark_scheduled(self, time: float) -> None:
        """Pending → scheduled (request sent to the RM)."""
        if self.state is not TaskState.PENDING:
            raise SimulationError(
                f"task {self.task_id} cannot move to SCHEDULED from {self.state}"
            )
        self.state = TaskState.SCHEDULED
        self.scheduled_at = time

    def mark_assigned(self, time: float, node_id: int, container_id: int) -> None:
        """Scheduled → assigned (container granted)."""
        if self.state is not TaskState.SCHEDULED:
            raise SimulationError(
                f"task {self.task_id} cannot move to ASSIGNED from {self.state}"
            )
        self.state = TaskState.ASSIGNED
        self.assigned_at = time
        self.assigned_node = node_id
        self.container_id = container_id

    def mark_running(self, time: float) -> None:
        """Assigned → running (container launched by the NodeManager)."""
        if self.state is not TaskState.ASSIGNED:
            raise SimulationError(
                f"task {self.task_id} cannot move to RUNNING from {self.state}"
            )
        if not self.stages:
            raise SimulationError(
                f"task {self.task_id} cannot run without work stages"
            )
        self.state = TaskState.RUNNING
        self.started_at = time

    def mark_completed(self, time: float) -> None:
        """Running → completed."""
        if self.state is not TaskState.RUNNING:
            raise SimulationError(
                f"task {self.task_id} cannot move to COMPLETED from {self.state}"
            )
        self.state = TaskState.COMPLETED
        self.finished_at = time


# -- stage builders -----------------------------------------------------------


def build_map_stages(
    split_bytes: int,
    map_output_bytes: float,
    cpu_seconds_per_mib: float,
    spill_write_factor: float,
    startup_cpu_seconds: float,
    data_local: bool,
) -> list[WorkStage]:
    """Work stages of one map task attempt.

    read (disk if local, network if remote) → map function (CPU) →
    collect/spill/merge writes (disk).
    """
    read_kind = StageKind.DISK if data_local else StageKind.NETWORK
    cpu_work = startup_cpu_seconds + cpu_seconds_per_mib * (split_bytes / MiB)
    return [
        WorkStage(kind=read_kind, amount=float(split_bytes), subtask=SubtaskLabel.MAP),
        WorkStage(kind=StageKind.CPU, amount=cpu_work, subtask=SubtaskLabel.MAP),
        WorkStage(
            kind=StageKind.DISK,
            amount=float(map_output_bytes) * spill_write_factor,
            subtask=SubtaskLabel.MAP,
        ),
    ]


def build_reduce_stages(
    shuffle_bytes_remote: float,
    shuffle_bytes_local: float,
    reduce_input_bytes: float,
    reduce_output_bytes: float,
    cpu_seconds_per_mib: float,
    merge_write_factor: float,
    startup_cpu_seconds: float,
) -> list[WorkStage]:
    """Work stages of one reduce task attempt.

    shuffle-sort subtask: network fetch of remote map output + disk write of
    the fetched data (partial sorts); merge subtask: final sort + reduce
    function (CPU) + output write (disk).
    """
    shuffle_sort = [
        WorkStage(
            kind=StageKind.NETWORK,
            amount=float(shuffle_bytes_remote),
            subtask=SubtaskLabel.SHUFFLE_SORT,
        ),
        WorkStage(
            kind=StageKind.DISK,
            amount=float(shuffle_bytes_remote + shuffle_bytes_local),
            subtask=SubtaskLabel.SHUFFLE_SORT,
        ),
    ]
    merge_cpu = startup_cpu_seconds + cpu_seconds_per_mib * (reduce_input_bytes / MiB)
    merge = [
        WorkStage(
            kind=StageKind.DISK,
            amount=float(reduce_input_bytes) * merge_write_factor,
            subtask=SubtaskLabel.MERGE,
        ),
        WorkStage(kind=StageKind.CPU, amount=merge_cpu, subtask=SubtaskLabel.MERGE),
        WorkStage(
            kind=StageKind.DISK,
            amount=float(reduce_output_bytes),
            subtask=SubtaskLabel.MERGE,
        ),
    ]
    return shuffle_sort + merge
