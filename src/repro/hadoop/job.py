"""MapReduce job definition used by the simulator.

A :class:`MapReduceJob` pairs a :class:`~repro.config.JobConfig` (input size,
block size, number of reducers — the "static resource requirements" of paper
Section 3.3) with a :class:`JobResourceProfile` describing how much CPU and
I/O work each byte of data costs.  The job owns its map and reduce
:class:`~repro.hadoop.tasks.TaskAttempt` objects and tracks dataflow volumes
(map output per reducer, shuffle sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import JobConfig
from ..exceptions import ConfigurationError, SimulationError
from .hdfs import InputSplit
from .tasks import TaskAttempt, TaskState, TaskType


@dataclass(frozen=True)
class JobResourceProfile:
    """Per-byte resource cost profile of a MapReduce application.

    The defaults approximate the WordCount job used by the paper's
    evaluation (map-and-reduce-input heavy, per Shi et al. [8]); other
    applications ship their own profiles in :mod:`repro.workloads`.
    """

    #: CPU core-seconds needed to apply the map function to one MiB of input.
    map_cpu_seconds_per_mib: float = 0.28
    #: CPU core-seconds needed to merge/reduce one MiB of reduce input.
    reduce_cpu_seconds_per_mib: float = 0.20
    #: Bytes written to local disk per byte of map output (spill + merge passes).
    spill_write_factor: float = 1.5
    #: Bytes written/read per byte of reduce input during the final merge.
    merge_write_factor: float = 1.0
    #: Fixed per-task CPU overhead (JVM + container start), seconds.
    startup_cpu_seconds: float = 2.0
    #: Fixed overhead for launching the ApplicationMaster, seconds.
    am_startup_seconds: float = 2.5
    #: Overhead between container grant and task launch, seconds.
    container_launch_seconds: float = 0.8
    #: Coefficient of variation of per-stage work amounts (log-normal jitter).
    #: Real clusters exhibit substantial task-duration variability
    #: (stragglers); 0 makes the simulator fully deterministic.
    duration_cv: float = 0.3

    def __post_init__(self) -> None:
        for name in (
            "map_cpu_seconds_per_mib",
            "reduce_cpu_seconds_per_mib",
            "spill_write_factor",
            "merge_write_factor",
            "startup_cpu_seconds",
            "am_startup_seconds",
            "container_launch_seconds",
            "duration_cv",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass
class MapReduceJob:
    """One MapReduce job: configuration, profile, splits, and task attempts."""

    job_id: int
    config: JobConfig
    profile: JobResourceProfile
    splits: list[InputSplit]
    map_tasks: list[TaskAttempt] = field(default_factory=list)
    reduce_tasks: list[TaskAttempt] = field(default_factory=list)
    #: Simulation timestamps of the job's life.
    submitted_at: float | None = None
    am_started_at: float | None = None
    finished_at: float | None = None
    #: Incremental counters of completed map output (total and per node),
    #: maintained by :meth:`record_map_completion` so the shuffle-availability
    #: queries used on every engine event stay O(1).
    _completed_output_total: float = field(default=0.0, repr=False)
    _completed_output_by_node: dict[int, float] = field(default_factory=dict, repr=False)
    _completed_map_count: int = field(default=0, repr=False)
    #: Completed tasks of any type, maintained by :meth:`record_task_completion`
    #: (fast path for :attr:`is_complete`).
    _completed_task_count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if len(self.splits) != self.config.num_maps:
            raise ConfigurationError(
                f"job {self.job_id}: {len(self.splits)} splits but "
                f"{self.config.num_maps} map tasks expected"
            )
        if not self.map_tasks:
            self.map_tasks = [
                TaskAttempt(
                    task_id=f"job{self.job_id}_m_{index:04d}",
                    task_type=TaskType.MAP,
                    job_id=self.job_id,
                    preferred_nodes=split.preferred_nodes,
                )
                for index, split in enumerate(self.splits)
            ]
        if not self.reduce_tasks:
            self.reduce_tasks = [
                TaskAttempt(
                    task_id=f"job{self.job_id}_r_{index:04d}",
                    task_type=TaskType.REDUCE,
                    job_id=self.job_id,
                )
                for index in range(self.config.num_reduces)
            ]
        #: task_id → attempt and task_id → map index lookups, built once so the
        #: simulator's per-event task resolution and the shuffle bookkeeping
        #: stay O(1) instead of scanning (and deep-comparing) the task lists.
        self._task_by_id: dict[str, TaskAttempt] = {
            task.task_id: task for task in self.map_tasks + self.reduce_tasks
        }
        self._map_index: dict[str, int] = {
            task.task_id: index for index, task in enumerate(self.map_tasks)
        }

    # -- structural properties -------------------------------------------------

    @property
    def num_maps(self) -> int:
        """Number of map tasks."""
        return len(self.map_tasks)

    @property
    def num_reduces(self) -> int:
        """Number of reduce tasks."""
        return len(self.reduce_tasks)

    @property
    def all_tasks(self) -> list[TaskAttempt]:
        """Map tasks followed by reduce tasks."""
        return self.map_tasks + self.reduce_tasks

    def task_by_id(self, task_id: str) -> TaskAttempt:
        """The attempt with identifier ``task_id`` (O(1))."""
        try:
            return self._task_by_id[task_id]
        except KeyError as exc:
            raise SimulationError(f"unknown task {task_id}") from exc

    def split_for(self, map_task: TaskAttempt) -> InputSplit:
        """The input split processed by ``map_task``."""
        try:
            index = self._map_index[map_task.task_id]
        except KeyError as exc:
            raise SimulationError(f"task {map_task.task_id} is not a map task") from exc
        return self.splits[index]

    # -- dataflow volumes --------------------------------------------------------

    def map_output_bytes(self, split: InputSplit) -> float:
        """Bytes of intermediate data produced by the map over ``split``."""
        return split.size_bytes * self.config.map_output_ratio

    @property
    def total_map_output_bytes(self) -> float:
        """Total intermediate bytes produced by all map tasks."""
        return sum(self.map_output_bytes(split) for split in self.splits)

    @property
    def reduce_input_bytes(self) -> float:
        """Bytes of intermediate data each reduce task consumes (uniform partitioning)."""
        return self.total_map_output_bytes / self.num_reduces

    @property
    def reduce_output_bytes(self) -> float:
        """Bytes of final output each reduce task writes."""
        return self.reduce_input_bytes * self.config.reduce_output_ratio

    # -- progress tracking --------------------------------------------------------

    def record_map_completion(self, task: TaskAttempt) -> None:
        """Update the incremental shuffle-availability counters for ``task``.

        Called by the simulator when a map task completes; safe to call at
        most once per task.
        """
        index = self._map_index[task.task_id]
        output = self.map_output_bytes(self.splits[index])
        self._completed_output_total += output
        node = task.assigned_node if task.assigned_node is not None else -1
        self._completed_output_by_node[node] = (
            self._completed_output_by_node.get(node, 0.0) + output
        )
        self._completed_map_count += 1

    def completed_maps(self) -> int:
        """Number of map tasks that have completed."""
        if self._completed_map_count:
            return self._completed_map_count
        return sum(1 for task in self.map_tasks if task.state is TaskState.COMPLETED)

    def map_completion_fraction(self) -> float:
        """Fraction of completed map tasks (0..1)."""
        if not self.map_tasks:
            return 1.0
        return self.completed_maps() / len(self.map_tasks)

    def all_maps_assigned(self) -> bool:
        """Whether every map task has at least been assigned a container."""
        return all(
            task.state in (TaskState.ASSIGNED, TaskState.RUNNING, TaskState.COMPLETED)
            for task in self.map_tasks
        )

    def record_task_completion(self, task: TaskAttempt) -> None:
        """Count a completed task (simulator hook keeping :attr:`is_complete` O(1))."""
        self._completed_task_count += 1

    # -- failure-model hooks -----------------------------------------------------

    def invalidate_map_completion(self, task: TaskAttempt) -> None:
        """Exact inverse of a recorded map completion (node-failure output loss).

        Called when the node holding ``task``'s map output dies: the bytes
        become unfetchable, so the incremental shuffle-availability counters
        and the completion counters are decremented by exactly the amounts
        :meth:`record_map_completion` / :meth:`record_task_completion` added.
        Running reducers that already counted those bytes simply stall until
        the re-executed map completes again (the shuffle layer clamps
        negative availability to a stall).
        """
        index = self._map_index[task.task_id]
        output = self.map_output_bytes(self.splits[index])
        self._completed_output_total -= output
        node = task.assigned_node if task.assigned_node is not None else -1
        self._completed_output_by_node[node] = (
            self._completed_output_by_node.get(node, 0.0) - output
        )
        self._completed_map_count -= 1
        self._completed_task_count -= 1

    def register_speculative_attempt(
        self, clone: TaskAttempt, original: TaskAttempt
    ) -> None:
        """Make a backup attempt addressable by id (and by split, for maps)."""
        self._task_by_id[clone.task_id] = clone
        if clone.task_type is TaskType.MAP:
            self._map_index[clone.task_id] = self._map_index[original.task_id]

    def adopt_speculative_winner(
        self, clone: TaskAttempt, original: TaskAttempt
    ) -> None:
        """Replace ``original`` with its winning backup in the task lists.

        After this, every aggregate view (trace building, subtask durations,
        shuffle accounting) sees the attempt that actually finished.
        """
        if clone.task_type is TaskType.MAP:
            self.map_tasks[self._map_index[original.task_id]] = clone
        else:
            self.reduce_tasks[self.reduce_tasks.index(original)] = clone

    @property
    def is_complete(self) -> bool:
        """Whether every task of the job has completed."""
        if self._completed_task_count:
            # The simulator counts every completion through
            # :meth:`record_task_completion`, so the counter is authoritative.
            return self._completed_task_count >= len(self.map_tasks) + len(self.reduce_tasks)
        return all(task.state is TaskState.COMPLETED for task in self.map_tasks) and all(
            task.state is TaskState.COMPLETED for task in self.reduce_tasks
        )

    @property
    def response_time(self) -> float:
        """Job response time: submission → completion of the last task."""
        if self.submitted_at is None or self.finished_at is None:
            raise SimulationError(f"job {self.job_id} has not finished yet")
        return self.finished_at - self.submitted_at

    def shuffle_available_bytes_per_reduce(self) -> float:
        """Intermediate bytes currently available for each reducer to fetch.

        Grows as map tasks complete; equals :attr:`reduce_input_bytes` once
        all maps are done.  This drives the pipelined shuffle in the engine.
        """
        return self._completed_output_total / self.num_reduces

    def shuffle_remote_available_bytes(self, reduce_node: int | None) -> float:
        """Remote intermediate bytes currently fetchable by a reducer on ``reduce_node``.

        Only output of *completed* map tasks counts, and only the portion
        produced on a node different from the reducer's (same-node output is
        read from local disk, not over the network).
        """
        local = (
            self._completed_output_by_node.get(reduce_node, 0.0)
            if reduce_node is not None
            else 0.0
        )
        return (self._completed_output_total - local) / self.num_reduces

    def all_maps_completed(self) -> bool:
        """Whether every map task has completed."""
        return self._completed_map_count >= len(self.map_tasks)
