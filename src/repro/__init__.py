"""Reproduction of "MapReduce Performance Models for Hadoop 2.x" (EDBT 2017).

The package is organised in layers (see DESIGN.md):

* :mod:`repro.queueing` — closed queueing-network substrate (MVA solvers,
  Erlang/hyperexponential distributions, fork/join estimates);
* :mod:`repro.hadoop` — discrete-event YARN cluster simulator, the stand-in
  for the paper's real Hadoop 2.x testbed;
* :mod:`repro.static_models` — static baselines from related work
  (Herodotou, ARIA, Vianna et al.);
* :mod:`repro.core` — the paper's contribution: the Hadoop 2.x analytic
  performance model (timeline → precedence tree → overlap factors →
  modified MVA → Tripathi / fork-join job response-time estimators);
* :mod:`repro.workloads` — job profiles and workload generators;
* :mod:`repro.api` — the unified prediction-backend API (scenario specs,
  backend registry, batch :class:`~repro.api.PredictionService`);
* :mod:`repro.experiments` / :mod:`repro.analysis` — the evaluation harness
  regenerating every figure of the paper.

The most common entry points are re-exported here.  The :mod:`repro.api`
names are loaded lazily (PEP 562): they transitively pull in every engine,
and ``import repro`` must stay cheap for consumers that only need the
configuration and unit helpers.
"""

from .config import ClusterConfig, ContainerSpec, JobConfig, NodeSpec, SchedulerConfig
from .units import gigabytes, megabytes

__version__ = "1.1.0"

_API_EXPORTS = {
    "BackendComparison",
    "CapacityPlanner",
    "Constraint",
    "Objective",
    "PlanReport",
    "PlanSpec",
    "PredictionBackend",
    "PredictionResult",
    "PredictionService",
    "ResultStore",
    "Scenario",
    "ScenarioSuite",
    "SearchSpace",
    "SuiteResult",
    "backend_names",
    "create_backend",
    "register_backend",
    "register_workload_profile",
}


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | _API_EXPORTS)

__all__ = [
    "BackendComparison",
    "CapacityPlanner",
    "ClusterConfig",
    "Constraint",
    "ContainerSpec",
    "JobConfig",
    "NodeSpec",
    "Objective",
    "PlanReport",
    "PlanSpec",
    "PredictionBackend",
    "PredictionResult",
    "PredictionService",
    "ResultStore",
    "Scenario",
    "ScenarioSuite",
    "SchedulerConfig",
    "SearchSpace",
    "SuiteResult",
    "backend_names",
    "create_backend",
    "gigabytes",
    "megabytes",
    "register_backend",
    "register_workload_profile",
    "__version__",
]
