"""Reproduction of "MapReduce Performance Models for Hadoop 2.x" (EDBT 2017).

The package is organised in layers (see DESIGN.md):

* :mod:`repro.queueing` — closed queueing-network substrate (MVA solvers,
  Erlang/hyperexponential distributions, fork/join estimates);
* :mod:`repro.hadoop` — discrete-event YARN cluster simulator, the stand-in
  for the paper's real Hadoop 2.x testbed;
* :mod:`repro.static_models` — static baselines from related work
  (Herodotou, ARIA, Vianna et al.);
* :mod:`repro.core` — the paper's contribution: the Hadoop 2.x analytic
  performance model (timeline → precedence tree → overlap factors →
  modified MVA → Tripathi / fork-join job response-time estimators);
* :mod:`repro.workloads` — job profiles and workload generators;
* :mod:`repro.experiments` / :mod:`repro.analysis` — the evaluation harness
  regenerating every figure of the paper.

The most common entry points are re-exported here.
"""

from .config import ClusterConfig, ContainerSpec, JobConfig, NodeSpec, SchedulerConfig
from .units import gigabytes, megabytes

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "ContainerSpec",
    "JobConfig",
    "NodeSpec",
    "SchedulerConfig",
    "gigabytes",
    "megabytes",
    "__version__",
]
