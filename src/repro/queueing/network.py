"""Closed multi-class queueing-network description and solution container.

A :class:`ClosedNetwork` bundles together the service centers, the task
classes with their populations, and the per-class per-center service demands.
Solvers in :mod:`repro.queueing.mva_exact`, :mod:`repro.queueing.mva_approximate`
and :mod:`repro.queueing.mva_overlap` consume a :class:`ClosedNetwork` and
produce a :class:`NetworkSolution`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from .service_center import CenterKind, ServiceCenter, ServiceDemand


@dataclass
class ClosedNetwork:
    """A closed, multi-class, product-form queueing network.

    Parameters
    ----------
    centers:
        The shared resources.
    class_names:
        Names of the task classes (the paper uses ``map``, ``shuffle-sort``
        and ``merge``).
    populations:
        Number of circulating tasks of each class, aligned with
        ``class_names``.
    demands:
        Per (class, center) average service demands; missing pairs default to
        zero demand.
    think_times:
        Optional per-class "think time" spent outside all centers between
        visits (defaults to zero for a pure batch system, which is how the
        paper treats MapReduce tasks).
    """

    centers: list[ServiceCenter]
    class_names: list[str]
    populations: list[int]
    demands: list[ServiceDemand] = field(default_factory=list)
    think_times: list[float] | None = None

    def __post_init__(self) -> None:
        if not self.centers:
            raise ConfigurationError("network needs at least one service center")
        if not self.class_names:
            raise ConfigurationError("network needs at least one task class")
        if len(self.class_names) != len(set(self.class_names)):
            raise ConfigurationError("class names must be unique")
        center_names = [c.name for c in self.centers]
        if len(center_names) != len(set(center_names)):
            raise ConfigurationError("center names must be unique")
        if len(self.populations) != len(self.class_names):
            raise ConfigurationError(
                "populations must align with class_names "
                f"({len(self.populations)} vs {len(self.class_names)})"
            )
        for population in self.populations:
            if population < 0:
                raise ConfigurationError("populations must be non-negative")
        if self.think_times is None:
            self.think_times = [0.0] * len(self.class_names)
        if len(self.think_times) != len(self.class_names):
            raise ConfigurationError("think_times must align with class_names")
        for think in self.think_times:
            if think < 0:
                raise ConfigurationError("think times must be non-negative")
        known_classes = set(self.class_names)
        known_centers = set(center_names)
        for demand in self.demands:
            if demand.class_name not in known_classes:
                raise ConfigurationError(
                    f"demand references unknown class {demand.class_name!r}"
                )
            if demand.center_name not in known_centers:
                raise ConfigurationError(
                    f"demand references unknown center {demand.center_name!r}"
                )

    # -- convenience accessors ----------------------------------------------

    @property
    def num_classes(self) -> int:
        """Number of task classes."""
        return len(self.class_names)

    @property
    def num_centers(self) -> int:
        """Number of service centers."""
        return len(self.centers)

    def class_index(self, class_name: str) -> int:
        """Return the index of ``class_name`` in :attr:`class_names`."""
        try:
            return self.class_names.index(class_name)
        except ValueError as exc:
            raise ConfigurationError(f"unknown class {class_name!r}") from exc

    def center_index(self, center_name: str) -> int:
        """Return the index of ``center_name`` among :attr:`centers`."""
        for index, center in enumerate(self.centers):
            if center.name == center_name:
                return index
        raise ConfigurationError(f"unknown center {center_name!r}")

    def demand_matrix(self) -> np.ndarray:
        """Return the (num_classes, num_centers) matrix of service demands."""
        matrix = np.zeros((self.num_classes, self.num_centers), dtype=float)
        for demand in self.demands:
            row = self.class_index(demand.class_name)
            col = self.center_index(demand.center_name)
            matrix[row, col] += demand.demand
        return matrix

    def queueing_mask(self) -> np.ndarray:
        """Boolean vector marking which centers are queueing (vs. delay)."""
        return np.array(
            [center.kind is CenterKind.QUEUEING for center in self.centers],
            dtype=bool,
        )

    def server_vector(self) -> np.ndarray:
        """Number of servers per center (used by the multi-server MVA approximation)."""
        return np.array([center.servers for center in self.centers], dtype=float)

    def population_vector(self) -> np.ndarray:
        """Populations as an integer numpy vector."""
        return np.asarray(self.populations, dtype=int)

    def think_time_vector(self) -> np.ndarray:
        """Think times as a float numpy vector."""
        assert self.think_times is not None  # normalised in __post_init__
        return np.asarray(self.think_times, dtype=float)


@dataclass(frozen=True)
class NetworkSolution:
    """Solution of a closed network produced by one of the MVA solvers.

    Attributes
    ----------
    class_names / center_names:
        Labels for the rows/columns of the matrices below.
    residence_times:
        (classes, centers) matrix ``R_{c,k}``: time a class-``c`` task spends
        at center ``k`` per system visit, **including** queueing.
    response_times:
        Per-class total response time ``R_c = sum_k R_{c,k}``.
    throughputs:
        Per-class throughput ``X_c``.
    queue_lengths:
        (classes, centers) matrix of mean number of class-``c`` tasks at
        center ``k``.
    utilizations:
        (classes, centers) matrix of utilisation contributed by each class.
    iterations:
        Number of iterations the (approximate) solver used; 0 for exact MVA.
    """

    class_names: tuple[str, ...]
    center_names: tuple[str, ...]
    residence_times: np.ndarray
    response_times: np.ndarray
    throughputs: np.ndarray
    queue_lengths: np.ndarray
    utilizations: np.ndarray
    iterations: int = 0

    def response_time(self, class_name: str) -> float:
        """Response time of one class by name."""
        return float(self.response_times[self.class_names.index(class_name)])

    def throughput(self, class_name: str) -> float:
        """Throughput of one class by name."""
        return float(self.throughputs[self.class_names.index(class_name)])

    def total_utilization(self, center_name: str) -> float:
        """Total utilisation of a center, summed over classes."""
        col = self.center_names.index(center_name)
        return float(self.utilizations[:, col].sum())
