"""Response-time distributions used by the Tripathi-based estimator.

Section 4.2.4 of the paper (option 1, "Tripathi-based") approximates the
response-time distribution of every precedence-tree node by either an
**Erlang** distribution (coefficient of variation CV <= 1) or a
**Hyperexponential** distribution (CV >= 1), following Liang & Tripathi and
Trivedi.  Knowing the children's distributions, the parent's distribution is

* the distribution of the **maximum** for a parallel-and (P) node, and
* the distribution of the **sum** for a serial (S) node,

after which the result is re-fitted to an Erlang/Hyperexponential by matching
mean and CV so the recursion can continue up the tree.

This module provides the two distribution families, the CV-based fitting rule
(:func:`fit_distribution`), and the max/sum composition operators
(:func:`maximum_of`, :func:`sum_of`).
"""

from __future__ import annotations

import enum
import math
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..exceptions import DistributionError

#: CV below which a distribution is considered deterministic.
_DETERMINISTIC_CV = 1e-9
#: Largest Erlang shape used when fitting nearly deterministic variables.
_MAX_ERLANG_SHAPE = 500
#: Number of grid points used for numerical max-composition.
_GRID_POINTS = 4096
#: Upper-quantile multiplier for the integration grid.
_GRID_SPAN_FACTOR = 12.0


class DistributionKind(enum.Enum):
    """Family of a fitted response-time distribution."""

    DETERMINISTIC = "deterministic"
    ERLANG = "erlang"
    HYPEREXPONENTIAL = "hyperexponential"


class ResponseTimeDistribution(ABC):
    """A non-negative response-time distribution with known moments."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Mean of the distribution."""

    @property
    @abstractmethod
    def variance(self) -> float:
        """Variance of the distribution."""

    @property
    @abstractmethod
    def kind(self) -> DistributionKind:
        """Family of the distribution."""

    @abstractmethod
    def cdf(self, times: np.ndarray) -> np.ndarray:
        """Cumulative distribution function evaluated at ``times`` (vectorised)."""

    @property
    def std(self) -> float:
        """Standard deviation."""
        return math.sqrt(max(self.variance, 0.0))

    @property
    def coefficient_of_variation(self) -> float:
        """CV = sigma / mu (0 for a zero-mean / deterministic distribution)."""
        if self.mean <= 0:
            return 0.0
        return self.std / self.mean

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(mean={self.mean:.6g}, "
            f"cv={self.coefficient_of_variation:.4g})"
        )


@dataclass(frozen=True)
class DeterministicDistribution(ResponseTimeDistribution):
    """Point mass at ``value`` (used for zero or variance-free durations)."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise DistributionError("deterministic value must be non-negative")

    @property
    def mean(self) -> float:
        return self.value

    @property
    def variance(self) -> float:
        return 0.0

    @property
    def kind(self) -> DistributionKind:
        return DistributionKind.DETERMINISTIC

    def cdf(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        return (times >= self.value).astype(float)


@dataclass(frozen=True)
class ErlangDistribution(ResponseTimeDistribution):
    """Erlang distribution with integer ``shape`` and ``rate`` per stage.

    Mean = shape / rate, variance = shape / rate**2, CV = 1 / sqrt(shape).
    """

    shape: int
    rate: float

    def __post_init__(self) -> None:
        if self.shape < 1:
            raise DistributionError("Erlang shape must be >= 1")
        if self.rate <= 0:
            raise DistributionError("Erlang rate must be positive")

    @property
    def mean(self) -> float:
        return self.shape / self.rate

    @property
    def variance(self) -> float:
        return self.shape / self.rate**2

    @property
    def kind(self) -> DistributionKind:
        return DistributionKind.ERLANG

    def cdf(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        flat = _erlang_cdf_batch(
            np.array([self.shape]), np.array([self.rate]), np.atleast_1d(times)
        )[0]
        return flat.reshape(times.shape)


@dataclass(frozen=True)
class HyperexponentialDistribution(ResponseTimeDistribution):
    """Two-branch hyperexponential distribution (probabilities + rates)."""

    probabilities: tuple[float, float]
    rates: tuple[float, float]

    def __post_init__(self) -> None:
        p1, p2 = self.probabilities
        if not math.isclose(p1 + p2, 1.0, rel_tol=0, abs_tol=1e-9):
            raise DistributionError("branch probabilities must sum to 1")
        if min(p1, p2) < 0:
            raise DistributionError("branch probabilities must be non-negative")
        if min(self.rates) <= 0:
            raise DistributionError("branch rates must be positive")

    @property
    def mean(self) -> float:
        return sum(p / r for p, r in zip(self.probabilities, self.rates))

    @property
    def variance(self) -> float:
        second_moment = sum(2.0 * p / r**2 for p, r in zip(self.probabilities, self.rates))
        return second_moment - self.mean**2

    @property
    def kind(self) -> DistributionKind:
        return DistributionKind.HYPEREXPONENTIAL

    def cdf(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        clipped = np.clip(times, 0.0, None)
        result = np.zeros_like(clipped)
        for probability, rate in zip(self.probabilities, self.rates):
            result = result + probability * (1.0 - np.exp(-rate * clipped))
        return np.where(times < 0, 0.0, np.clip(result, 0.0, 1.0))


def fit_distribution(mean: float, cv: float) -> ResponseTimeDistribution:
    """Fit an Erlang / Hyperexponential distribution from mean and CV.

    Implements the rule of Section 4.2.4: Erlang when ``CV <= 1``,
    two-branch balanced-means hyperexponential when ``CV > 1``.  A mean of
    zero or a CV of (almost) zero yields a deterministic distribution.
    """
    if mean < 0:
        raise DistributionError(f"mean must be non-negative, got {mean}")
    if cv < 0:
        raise DistributionError(f"CV must be non-negative, got {cv}")
    if mean == 0 or cv <= _DETERMINISTIC_CV:
        return DeterministicDistribution(value=mean)
    if cv <= 1.0:
        shape = int(round(1.0 / cv**2))
        shape = max(1, min(shape, _MAX_ERLANG_SHAPE))
        rate = shape / mean
        return ErlangDistribution(shape=shape, rate=rate)
    # Balanced-means two-branch hyperexponential fit.
    cv2 = cv**2
    p1 = 0.5 * (1.0 + math.sqrt((cv2 - 1.0) / (cv2 + 1.0)))
    p2 = 1.0 - p1
    rate1 = 2.0 * p1 / mean
    rate2 = 2.0 * p2 / mean
    return HyperexponentialDistribution(probabilities=(p1, p2), rates=(rate1, rate2))


def fit_from_moments(mean: float, variance: float) -> ResponseTimeDistribution:
    """Fit a distribution from mean and variance (helper on top of :func:`fit_distribution`)."""
    if variance < 0:
        variance = 0.0
    if mean <= 0:
        return DeterministicDistribution(value=max(mean, 0.0))
    cv = math.sqrt(variance) / mean
    return fit_distribution(mean, cv)


def _erlang_cdf_batch(
    shapes: np.ndarray, rates: np.ndarray, times: np.ndarray
) -> np.ndarray:
    """Erlang CDFs of several (shape, rate) pairs on one time grid.

    ``P(X <= t) = 1 - exp(-rate t) * sum_{n=0}^{k-1} (rate t)^n / n!``.  The
    partial sums of all distributions advance through one shared recurrence
    (``term_n = term_{n-1} * x / n``) up to the largest shape; rows whose
    shape is already exhausted stop accumulating, so each row performs exactly
    the arithmetic of the scalar per-distribution loop.

    A partial sum can only overflow once ``x`` is in the several-hundreds
    (the peak term ``x^n / n!`` needs ``x`` ~> 700 to exceed float range), so
    the shape is large there too; those entries fall back to the normal
    approximation ``Erlang(k, r) ~ N(k, k)`` in ``x = r t`` units, which is
    accurate to well under 1e-3 at such shapes, instead of propagating NaN.
    """
    x = np.clip(rates[:, None] * times[None, :], 0.0, None)
    total = np.ones_like(x)
    term = np.ones_like(x)
    with np.errstate(invalid="ignore", over="ignore"):
        for n in range(1, int(shapes.max())):
            term = term * x / n
            active = (n < shapes)[:, None]
            total = np.where(active, total + term, total)
        result = 1.0 - np.exp(-x) * total
    overflowed = ~np.isfinite(total)
    if overflowed.any():
        shape_grid = np.broadcast_to(shapes[:, None].astype(float), x.shape)
        z = (x[overflowed] - shape_grid[overflowed]) / np.sqrt(shape_grid[overflowed])
        result[overflowed] = [
            0.5 * (1.0 + math.erf(value / math.sqrt(2.0))) for value in z
        ]
    return np.clip(result, 0.0, 1.0)


def _hyperexponential_cdf_batch(
    probabilities: np.ndarray, rates: np.ndarray, times: np.ndarray
) -> np.ndarray:
    """Two-branch hyperexponential CDFs (D×2 parameter arrays) on one grid."""
    clipped = np.clip(times, 0.0, None)[None, :]
    result = np.zeros((probabilities.shape[0], times.size))
    for branch in range(probabilities.shape[1]):
        result = result + probabilities[:, branch, None] * (
            1.0 - np.exp(-rates[:, branch, None] * clipped)
        )
    return np.where(times[None, :] < 0, 0.0, np.clip(result, 0.0, 1.0))


def _batched_cdf(
    distributions: Sequence[ResponseTimeDistribution], times: np.ndarray
) -> np.ndarray:
    """Evaluate every distribution's CDF on ``times``, grouped by family.

    Returns a ``(len(distributions), len(times))`` array whose rows are in
    input order and bit-identical to calling each ``cdf`` individually.
    """
    times = np.asarray(times, dtype=float)
    out = np.empty((len(distributions), times.size))
    deterministic: list[int] = []
    erlang: list[int] = []
    hyper: list[int] = []
    for index, distribution in enumerate(distributions):
        # Exact-type dispatch: subclasses may override cdf, so only the
        # built-in families are batched; everything else evaluates itself.
        if type(distribution) is DeterministicDistribution:
            deterministic.append(index)
        elif type(distribution) is ErlangDistribution:
            erlang.append(index)
        elif type(distribution) is HyperexponentialDistribution:
            hyper.append(index)
        else:
            out[index] = distribution.cdf(times)
    if deterministic:
        values = np.array([distributions[i].value for i in deterministic])
        out[deterministic] = (times[None, :] >= values[:, None]).astype(float)
    if erlang:
        shapes = np.array([distributions[i].shape for i in erlang])
        rates = np.array([distributions[i].rate for i in erlang])
        out[erlang] = _erlang_cdf_batch(shapes, rates, times)
    if hyper:
        probabilities = np.array([distributions[i].probabilities for i in hyper])
        rates = np.array([distributions[i].rates for i in hyper])
        out[hyper] = _hyperexponential_cdf_batch(probabilities, rates, times)
    return out


def _integration_grid(distributions: Sequence[ResponseTimeDistribution]) -> np.ndarray:
    """Build a time grid covering the bulk of all distributions' mass."""
    upper = 0.0
    for distribution in distributions:
        upper = max(upper, distribution.mean + _GRID_SPAN_FACTOR * max(distribution.std, 1e-12))
    if upper <= 0:
        upper = 1.0
    return np.linspace(0.0, upper, _GRID_POINTS)


def maximum_of(distributions: Sequence[ResponseTimeDistribution]) -> ResponseTimeDistribution:
    """Distribution of the maximum of independent response times.

    Mean and second moment are computed by numerical integration of the
    survival function of the maximum::

        E[max]   = ∫ (1 - Π_i F_i(t)) dt
        E[max^2] = ∫ 2 t (1 - Π_i F_i(t)) dt

    and the result is re-fitted via :func:`fit_from_moments` so it can be used
    as a child distribution further up the precedence tree.
    """
    if not distributions:
        raise DistributionError("maximum_of requires at least one distribution")
    if len(distributions) == 1:
        return distributions[0]
    if all(isinstance(d, DeterministicDistribution) for d in distributions):
        return DeterministicDistribution(value=max(d.mean for d in distributions))
    grid = _integration_grid(distributions)
    cdfs = _batched_cdf(distributions, grid)
    # Multiply rows in input order so rounding matches the historical
    # one-distribution-at-a-time product exactly.
    product_cdf = np.ones_like(grid)
    for row in cdfs:
        product_cdf = product_cdf * row
    survival = 1.0 - product_cdf
    mean = float(np.trapezoid(survival, grid))
    # The maximum stochastically dominates every component, so E[max] can
    # never fall below the largest component mean; the finite grid truncates
    # heavy (CV > 1) tails and may undershoot it by a hair.
    mean = max(mean, max(d.mean for d in distributions))
    second_moment = float(np.trapezoid(2.0 * grid * survival, grid))
    variance = max(second_moment - mean**2, 0.0)
    return fit_from_moments(mean, variance)


def sum_of(distributions: Sequence[ResponseTimeDistribution]) -> ResponseTimeDistribution:
    """Distribution of the sum of independent response times.

    Means and variances add; the result is re-fitted to the Erlang /
    hyperexponential family by CV.
    """
    if not distributions:
        raise DistributionError("sum_of requires at least one distribution")
    mean = sum(d.mean for d in distributions)
    variance = sum(d.variance for d in distributions)
    return fit_from_moments(mean, variance)
