"""Exact multi-class Mean Value Analysis (Reiser & Lavenberg, 1980).

The exact algorithm recursively evaluates every population vector between the
origin and the target population, which is exponential in the number of
classes but exact for product-form networks.  The paper (Section 4.2.5)
builds on MVA as the core queueing solver; the exact variant implemented here
is used both as a reference in tests and as a solver for small models.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..exceptions import ModelError
from .network import ClosedNetwork, NetworkSolution


def _population_vectors(target: np.ndarray) -> list[tuple[int, ...]]:
    """Enumerate all population vectors from 0 up to ``target`` inclusive.

    Vectors are produced in an order where every vector appears after all
    vectors obtained from it by removing one customer, which is the order the
    exact MVA recursion requires.
    """
    ranges = [range(int(n) + 1) for n in target]
    vectors = list(itertools.product(*ranges))
    vectors.sort(key=sum)
    return vectors


def solve_mva_exact(network: ClosedNetwork) -> NetworkSolution:
    """Solve ``network`` with exact multi-class MVA.

    Raises
    ------
    ModelError
        If the total population is so large that exact evaluation would need
        more than ~2 million population vectors (use the approximate solver
        instead).
    """
    demands = network.demand_matrix()
    queueing = network.queueing_mask()
    servers = network.server_vector()
    target = network.population_vector()
    think = network.think_time_vector()
    num_classes, num_centers = demands.shape

    state_count = int(np.prod(target + 1))
    if state_count > 2_000_000:
        raise ModelError(
            "exact MVA would enumerate "
            f"{state_count} population vectors; use solve_mva_approximate"
        )

    # queue_lengths[n] -> vector of total queue length per center at population n
    queue_lengths: dict[tuple[int, ...], np.ndarray] = {
        tuple(0 for _ in range(num_classes)): np.zeros(num_centers)
    }
    residence = np.zeros((num_classes, num_centers))
    throughput = np.zeros(num_classes)

    for vector in _population_vectors(target):
        if sum(vector) == 0:
            continue
        population = np.asarray(vector, dtype=int)
        residence = np.zeros((num_classes, num_centers))
        throughput = np.zeros(num_classes)
        for c in range(num_classes):
            if population[c] == 0:
                continue
            reduced = population.copy()
            reduced[c] -= 1
            previous_queues = queue_lengths[tuple(int(x) for x in reduced)]
            for k in range(num_centers):
                if queueing[k]:
                    # Multi-server stations use the approximation that only
                    # customers in excess of the free servers cause waiting
                    # (exact for single-server stations).
                    excess = max(0.0, previous_queues[k] - (servers[k] - 1.0))
                    residence[c, k] = demands[c, k] * (1.0 + excess / servers[k])
                else:
                    residence[c, k] = demands[c, k]
            total = think[c] + residence[c].sum()
            throughput[c] = population[c] / total if total > 0 else 0.0
        queues = np.zeros(num_centers)
        for k in range(num_centers):
            queues[k] = float(np.dot(throughput, residence[:, k]))
        queue_lengths[tuple(int(x) for x in population)] = queues

    response = residence.sum(axis=1)
    per_class_queues = residence * throughput[:, None]
    utilizations = demands * throughput[:, None]
    return NetworkSolution(
        class_names=tuple(network.class_names),
        center_names=tuple(center.name for center in network.centers),
        residence_times=residence,
        response_times=response,
        throughputs=throughput,
        queue_lengths=per_class_queues,
        utilizations=utilizations,
        iterations=0,
    )
