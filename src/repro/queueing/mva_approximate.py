"""Approximate multi-class MVA (Schweitzer / Bard fixed point).

The approximation replaces the exact recursion over population vectors by the
Schweitzer estimate of the queue length seen by an arriving customer::

    Q_{c,k}(N - e_c)  ≈  ((N_c - 1) / N_c) * Q_{c,k}(N)   for the same class
    Q_{j,k}(N - e_c)  ≈  Q_{j,k}(N)                        for other classes

and iterates to a fixed point.  Complexity is ``O(C * K)`` per iteration,
which matches the paper's complexity claim ``O(C^2 N^2 K)`` for the full
multi-job model (Section 4.3).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConvergenceError
from .network import ClosedNetwork, NetworkSolution


def solve_mva_approximate(
    network: ClosedNetwork,
    tolerance: float = 1e-9,
    max_iterations: int = 10_000,
) -> NetworkSolution:
    """Solve ``network`` with Schweitzer approximate MVA.

    Parameters
    ----------
    network:
        The closed network to solve.
    tolerance:
        Convergence threshold on the largest absolute change of any per-class
        per-center queue length between iterations.
    max_iterations:
        Safety bound; a :class:`~repro.exceptions.ConvergenceError` is raised
        when exceeded.
    """
    demands = network.demand_matrix()
    queueing = network.queueing_mask()
    servers = network.server_vector()
    population = network.population_vector().astype(float)
    think = network.think_time_vector()
    num_classes, num_centers = demands.shape

    active = population > 0
    # Initial guess: spread each class's population evenly over the queueing
    # centers where it has non-zero demand.
    queue = np.zeros((num_classes, num_centers))
    for c in range(num_classes):
        if not active[c]:
            continue
        positive = (demands[c] > 0) & queueing
        count = int(positive.sum())
        if count:
            queue[c, positive] = population[c] / count

    residence = np.zeros_like(demands)
    throughput = np.zeros(num_classes)
    for iteration in range(1, max_iterations + 1):
        arrival_queue = np.zeros((num_classes, num_centers))
        total_queue = queue.sum(axis=0)
        for c in range(num_classes):
            if not active[c]:
                continue
            own_correction = (
                (population[c] - 1.0) / population[c] if population[c] > 0 else 0.0
            )
            arrival_queue[c] = total_queue - queue[c] + own_correction * queue[c]

        # Multi-server correction: only the customers in excess of the free
        # servers cause waiting (M/M/c-style approximation; exact for c = 1).
        excess = np.maximum(0.0, arrival_queue - (servers[None, :] - 1.0))
        residence = np.where(
            queueing[None, :],
            demands * (1.0 + excess / servers[None, :]),
            demands,
        )
        totals = think + residence.sum(axis=1)
        throughput = np.divide(
            population,
            totals,
            out=np.zeros_like(population),
            where=(totals > 0) & active,
        )
        new_queue = residence * throughput[:, None]
        delta = float(np.max(np.abs(new_queue - queue))) if new_queue.size else 0.0
        queue = new_queue
        if delta <= tolerance:
            break
    else:
        raise ConvergenceError(
            f"approximate MVA did not converge in {max_iterations} iterations"
        )

    response = residence.sum(axis=1)
    utilizations = demands * throughput[:, None]
    return NetworkSolution(
        class_names=tuple(network.class_names),
        center_names=tuple(center.name for center in network.centers),
        residence_times=residence,
        response_times=response,
        throughputs=throughput,
        queue_lengths=queue,
        utilizations=utilizations,
        iterations=iteration,
    )
