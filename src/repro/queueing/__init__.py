"""Closed queueing-network substrate.

This subpackage contains the queueing-theoretic building blocks the paper's
performance model is constructed from:

* :mod:`repro.queueing.service_center` — service centers (queueing or delay)
  and per-class service demands;
* :mod:`repro.queueing.network` — closed multi-class network description;
* :mod:`repro.queueing.mva_exact` — exact Mean Value Analysis
  (Reiser & Lavenberg 1980);
* :mod:`repro.queueing.mva_approximate` — Schweitzer/Bard approximate MVA for
  large populations;
* :mod:`repro.queueing.mva_overlap` — approximate MVA whose queueing terms are
  weighted by task *overlap factors* (Mak & Lundstrom 1990), the variant the
  paper's modified-MVA loop relies on;
* :mod:`repro.queueing.forkjoin` — fork/join response-time estimates
  (Varki 1999), used by the fork/join job-response-time estimator;
* :mod:`repro.queueing.distributions` — Erlang and hyperexponential response
  time distributions, CV-based fitting, and max/sum composition used by the
  Tripathi estimator;
* :mod:`repro.queueing.markov` — an exact continuous-time Markov-chain solver
  for tiny networks, used in tests as ground truth and to illustrate the
  state-space explosion discussed in Section 2.2 of the paper.
"""

from .service_center import CenterKind, ServiceCenter, ServiceDemand
from .network import ClosedNetwork, NetworkSolution
from .mva_exact import solve_mva_exact
from .mva_approximate import solve_mva_approximate
from .mva_overlap import OverlapFactors, solve_mva_with_overlaps
from .forkjoin import forkjoin_response_time, harmonic_number
from .distributions import (
    DistributionKind,
    ErlangDistribution,
    HyperexponentialDistribution,
    ResponseTimeDistribution,
    fit_distribution,
    maximum_of,
    sum_of,
)
from .markov import CTMCSolution, solve_ctmc_closed_network, state_space_size

__all__ = [
    "CenterKind",
    "ServiceCenter",
    "ServiceDemand",
    "ClosedNetwork",
    "NetworkSolution",
    "solve_mva_exact",
    "solve_mva_approximate",
    "OverlapFactors",
    "solve_mva_with_overlaps",
    "forkjoin_response_time",
    "harmonic_number",
    "DistributionKind",
    "ErlangDistribution",
    "HyperexponentialDistribution",
    "ResponseTimeDistribution",
    "fit_distribution",
    "maximum_of",
    "sum_of",
    "CTMCSolution",
    "solve_ctmc_closed_network",
    "state_space_size",
]
