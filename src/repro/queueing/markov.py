"""Exact continuous-time Markov-chain solver for tiny closed networks.

Section 2.2 of the paper recalls the classical alternative to MVA: enumerate
the states of the system as a Markov chain and use the queueing network to
compute transition rates.  The approach is exact but "does not scale well
since the state space grows exponentially with the number of tasks".

This module implements that classical approach for *small* closed networks
(exponential service, processor sharing at queueing centers, cyclic routing
through the centers).  It serves two purposes:

* a ground-truth oracle for the MVA solvers in the test-suite, and
* a concrete demonstration of the state-space explosion (``state_space_size``)
  that motivates the MVA-based design of the paper.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ModelError
from .network import ClosedNetwork


def state_space_size(network: ClosedNetwork) -> int:
    """Number of CTMC states for ``network``.

    Each class-``c`` population of ``N_c`` customers can be distributed over
    the ``K`` centers in ``C(N_c + K - 1, K - 1)`` ways; classes multiply.
    """
    size = 1
    centers = network.num_centers
    for population in network.populations:
        size *= math.comb(population + centers - 1, centers - 1)
    return size


def _class_states(population: int, centers: int) -> list[tuple[int, ...]]:
    """All ways of placing ``population`` identical customers onto ``centers``."""
    if centers == 1:
        return [(population,)]
    states = []
    for head in range(population + 1):
        for tail in _class_states(population - head, centers - 1):
            states.append((head,) + tail)
    return states


@dataclass(frozen=True)
class CTMCSolution:
    """Steady-state metrics computed from the exact CTMC."""

    class_names: tuple[str, ...]
    center_names: tuple[str, ...]
    response_times: np.ndarray
    throughputs: np.ndarray
    queue_lengths: np.ndarray
    state_count: int

    def response_time(self, class_name: str) -> float:
        """Response time of one class by name."""
        return float(self.response_times[self.class_names.index(class_name)])


def solve_ctmc_closed_network(
    network: ClosedNetwork,
    max_states: int = 20_000,
) -> CTMCSolution:
    """Solve a small closed network exactly via its CTMC.

    Assumptions (documented limitations — this is an oracle, not the model):

    * exponential service times with mean equal to the per-visit demand;
    * processor sharing at queueing centers, pure delay at delay centers;
    * cyclic routing: a class-``c`` customer that completes service at center
      ``k`` moves to center ``k + 1 (mod K)``; centers where the class has
      zero demand are skipped instantly.

    Raises
    ------
    ModelError
        If the state space exceeds ``max_states`` — the point the paper makes
        about this technique.
    """
    size = state_space_size(network)
    if size > max_states:
        raise ModelError(
            f"CTMC state space has {size} states (> {max_states}); "
            "this exact method does not scale — use MVA"
        )
    demands = network.demand_matrix()
    queueing = network.queueing_mask()
    num_classes, num_centers = demands.shape

    per_class_states = [
        _class_states(int(population), num_centers) for population in network.populations
    ]
    states = [tuple(combo) for combo in itertools.product(*per_class_states)]
    index_of = {state: i for i, state in enumerate(states)}
    count = len(states)

    def next_center(class_index: int, center: int) -> int:
        """Next center with positive demand for this class (cyclic)."""
        for step in range(1, num_centers + 1):
            candidate = (center + step) % num_centers
            if demands[class_index, candidate] > 0:
                return candidate
        return center

    generator = np.zeros((count, count))
    for state_index, state in enumerate(states):
        occupancy = np.array(state, dtype=float)  # shape: (classes, centers)
        totals = occupancy.sum(axis=0)
        for c in range(num_classes):
            for k in range(num_centers):
                customers = state[c][k]
                if customers == 0 or demands[c, k] <= 0:
                    continue
                if queueing[k]:
                    share = customers / totals[k] if totals[k] > 0 else 0.0
                    rate = share / demands[c, k]
                else:
                    rate = customers / demands[c, k]
                if rate <= 0:
                    continue
                destination = next_center(c, k)
                new_state = [list(row) for row in state]
                new_state[c][k] -= 1
                new_state[c][destination] += 1
                target = tuple(tuple(row) for row in new_state)
                target_index = index_of[target]
                if target_index == state_index:
                    continue
                generator[state_index, target_index] += rate
    np.fill_diagonal(generator, 0.0)
    np.fill_diagonal(generator, -generator.sum(axis=1))

    # Steady state: pi Q = 0, sum(pi) = 1.
    system = np.vstack([generator.T, np.ones((1, count))])
    rhs = np.zeros(count + 1)
    rhs[-1] = 1.0
    pi, *_ = np.linalg.lstsq(system, rhs, rcond=None)
    pi = np.clip(pi, 0.0, None)
    pi = pi / pi.sum()

    queue_lengths = np.zeros((num_classes, num_centers))
    throughput = np.zeros(num_classes)
    for state_index, state in enumerate(states):
        probability = pi[state_index]
        occupancy = np.array(state, dtype=float)
        queue_lengths += probability * occupancy
        totals = occupancy.sum(axis=0)
        for c in range(num_classes):
            # Throughput measured at the class's first positive-demand center.
            reference = next(
                (k for k in range(num_centers) if demands[c, k] > 0), None
            )
            if reference is None:
                continue
            customers = state[c][reference]
            if customers == 0:
                continue
            if queueing[reference]:
                share = customers / totals[reference] if totals[reference] > 0 else 0.0
                throughput[c] += probability * share / demands[c, reference]
            else:
                throughput[c] += probability * customers / demands[c, reference]

    populations = network.population_vector().astype(float)
    response = np.divide(
        populations,
        throughput,
        out=np.zeros_like(populations),
        where=throughput > 0,
    )
    return CTMCSolution(
        class_names=tuple(network.class_names),
        center_names=tuple(center.name for center in network.centers),
        response_times=response,
        throughputs=throughput,
        queue_lengths=queue_lengths,
        state_count=count,
    )
