"""Fork/join response-time estimates (Varki, 1999).

The paper's preferred job-response-time estimator treats every parallel phase
as a fork/join block and uses the classic harmonic-number bound::

    R_fork_join = H_s * max(T_1, ..., T_s),       H_s = sum_{i=1..s} 1 / i

For the binary precedence tree used in the paper ``s = 2`` and ``H_2 = 3/2``
(Section 4.2.4): the response time of a P-node is the larger child response
time inflated by 50 % to account for synchronisation delay.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exceptions import ModelError


def harmonic_number(count: int) -> float:
    """Return the ``count``-th harmonic number ``H_count = sum_{i<=count} 1/i``."""
    if count <= 0:
        raise ModelError(f"harmonic_number requires a positive count, got {count}")
    return sum(1.0 / i for i in range(1, count + 1))


def forkjoin_response_time(child_response_times: Sequence[float]) -> float:
    """Estimate the response time of a fork/join block.

    Parameters
    ----------
    child_response_times:
        Average response times of the parallel branches.

    Returns
    -------
    float
        ``H_s * max(children)`` where ``s`` is the number of branches.

    Notes
    -----
    For a single branch the estimate equals the branch response time
    (``H_1 = 1``), and the estimate is monotone in every child's response
    time — two properties the property-based tests rely on.
    """
    values = [float(value) for value in child_response_times]
    if not values:
        raise ModelError("fork/join block needs at least one branch")
    for value in values:
        if value < 0:
            raise ModelError(f"response times must be non-negative, got {value}")
    return harmonic_number(len(values)) * max(values)
