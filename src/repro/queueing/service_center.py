"""Service centers and service demands for closed queueing networks.

The paper models the cluster with two kinds of shared resources per node
("service centers", Section 4.1): *CPU & memory* and *network*.  A service
center is either a **queueing** center (tasks contend and queue, e.g. CPU,
disk) or a **delay** center (no contention, pure latency, e.g. a think-time
station).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..exceptions import ConfigurationError


class CenterKind(enum.Enum):
    """Kind of service center in a queueing network."""

    #: Tasks queue for the resource (load-dependent waiting).
    QUEUEING = "queueing"
    #: Pure delay; tasks never wait for each other.
    DELAY = "delay"


@dataclass(frozen=True)
class ServiceCenter:
    """A shared resource in the closed queueing network.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"cpu"``, ``"network"``).
    kind:
        Whether the resource is a queueing or a delay center.
    servers:
        Number of identical servers at this center.  Multi-server queueing
        centers are handled with the standard approximation of scaling the
        effective demand by ``1 / servers`` while keeping queueing behaviour
        (adequate for the symmetric clusters modelled here).
    """

    name: str
    kind: CenterKind = CenterKind.QUEUEING
    servers: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("service center name must be non-empty")
        if self.servers <= 0:
            raise ConfigurationError("servers must be positive")


@dataclass(frozen=True)
class ServiceDemand:
    """Average service demand of one task class at one service center.

    ``demand`` is the total busy time the class requires from the center per
    visit to the system (the paper's ``S_{i,k}``, "residence time for task of
    class *i* in the service center *k*"), in seconds.
    """

    class_name: str
    center_name: str
    demand: float

    def __post_init__(self) -> None:
        if not self.class_name:
            raise ConfigurationError("class_name must be non-empty")
        if not self.center_name:
            raise ConfigurationError("center_name must be non-empty")
        if self.demand < 0:
            raise ConfigurationError(
                f"service demand must be non-negative, got {self.demand}"
            )
