"""Overlap-adjusted approximate MVA (Mak & Lundstrom, 1990).

For a workload of tasks with precedence constraints, the queueing delay a
class-``i`` task suffers because of class-``j`` tasks is *not* proportional to
the full queue of class ``j``: it is proportional to the fraction of time the
two classes actually execute concurrently.  Mak & Lundstrom capture this with
**overlap factors**, and the paper (Sections 4.2.3 and 4.2.5) adopts the same
idea: the queueing terms of the MVA are weighted by the intra-job overlap
``alpha_{ij}`` and the inter-job overlap ``beta_{kr}``.

:class:`OverlapFactors` carries both matrices; :func:`solve_mva_with_overlaps`
is a Schweitzer-style fixed point whose arrival-queue estimate is weighted by
those factors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, ConvergenceError
from .network import ClosedNetwork, NetworkSolution


@dataclass(frozen=True)
class OverlapFactors:
    """Overlap factors between task classes.

    Attributes
    ----------
    class_names:
        Names aligned with the rows/columns of the matrices.
    intra_job:
        ``alpha[i, j]`` — probability that a class-``j`` task *of the same
        job* is executing while a class-``i`` task executes.  The diagonal
        describes overlap with other instances of the same class.
    inter_job:
        ``beta[i, j]`` — probability that a class-``j`` task *of a different
        job* is executing while a class-``i`` task executes.
    """

    class_names: tuple[str, ...]
    intra_job: np.ndarray
    inter_job: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.class_names)
        for name, matrix in (("intra_job", self.intra_job), ("inter_job", self.inter_job)):
            if matrix.shape != (n, n):
                raise ConfigurationError(
                    f"{name} matrix must be {n}x{n}, got {matrix.shape}"
                )
            if np.any(matrix < -1e-12) or np.any(matrix > 1.0 + 1e-9):
                raise ConfigurationError(f"{name} factors must lie in [0, 1]")
        # Per-instance memo for :meth:`combined` (frozen dataclass, hence
        # object.__setattr__); solvers call it once per fixed-point solve and
        # the matrices are treated as read-only.
        object.__setattr__(self, "_combined_cache", {})

    @classmethod
    def uniform(cls, class_names: tuple[str, ...] | list[str], value: float = 1.0) -> "OverlapFactors":
        """Build factors with every entry equal to ``value`` (default: full overlap).

        With ``value=1`` the overlap-adjusted MVA degenerates to plain
        Schweitzer MVA, which is a useful baseline and test oracle.
        """
        names = tuple(class_names)
        matrix = np.full((len(names), len(names)), float(value))
        return cls(class_names=names, intra_job=matrix, inter_job=matrix.copy())

    def combined(self, jobs_in_system: int) -> np.ndarray:
        """Effective per-class-pair weighting for ``jobs_in_system`` concurrent jobs.

        With a single job only the intra-job factors matter.  With ``J`` jobs,
        a class-``i`` task shares the resources with same-job tasks (weighted
        by ``alpha``) and with tasks of the other ``J - 1`` jobs (weighted by
        ``beta``); the effective factor is the population-weighted mix::

            w_{ij} = (alpha_{ij} + (J - 1) * beta_{ij}) / J

        which keeps the factor in ``[0, 1]`` and reduces to ``alpha`` for
        ``J = 1``.

        The result is memoized per instance (callers must not mutate it):
        solver loops re-solve the same factors for a fixed ``jobs_in_system``.
        """
        if jobs_in_system <= 0:
            raise ConfigurationError("jobs_in_system must be positive")
        cache: dict[int, np.ndarray] = self._combined_cache  # type: ignore[attr-defined]
        cached = cache.get(jobs_in_system)
        if cached is not None:
            return cached
        if jobs_in_system == 1:
            weight = self.intra_job.copy()
        else:
            weight = np.clip(
                (self.intra_job + (jobs_in_system - 1) * self.inter_job) / jobs_in_system,
                0.0,
                1.0,
            )
        # The cached array is shared between callers: make accidental in-place
        # mutation an immediate error instead of silent cache corruption.
        weight.setflags(write=False)
        cache[jobs_in_system] = weight
        return weight


def solve_mva_with_overlaps(
    network: ClosedNetwork,
    overlaps: OverlapFactors,
    jobs_in_system: int = 1,
    tolerance: float = 1e-9,
    max_iterations: int = 10_000,
) -> NetworkSolution:
    """Solve ``network`` with overlap-weighted approximate MVA.

    The fixed point is the Schweitzer iteration where the queue length of
    class ``j`` seen by an arriving class-``i`` task is scaled by the
    effective overlap ``w_{ij}`` (see :meth:`OverlapFactors.combined`).

    Parameters
    ----------
    network:
        Closed network; class names must match ``overlaps.class_names``.
    overlaps:
        Intra-/inter-job overlap factors.
    jobs_in_system:
        Number of concurrently executing jobs (used to mix alpha and beta).
    """
    if tuple(network.class_names) != tuple(overlaps.class_names):
        raise ConfigurationError(
            "overlap factors classes "
            f"{overlaps.class_names!r} do not match network classes "
            f"{tuple(network.class_names)!r}"
        )
    demands = network.demand_matrix()
    queueing = network.queueing_mask()
    servers = network.server_vector()
    population = network.population_vector().astype(float)
    think = network.think_time_vector()
    num_classes, num_centers = demands.shape
    weights = overlaps.combined(jobs_in_system)

    active = population > 0
    queue = np.zeros((num_classes, num_centers))
    for c in range(num_classes):
        if not active[c]:
            continue
        positive = (demands[c] > 0) & queueing
        count = int(positive.sum())
        if count:
            queue[c, positive] = population[c] / count

    # Vectorised Schweitzer step: the arrival queue seen by class ``c`` at
    # center ``k`` is ``sum_j w[c,j] * q[j,k]`` with the usual (N-1)/N
    # self-correction on the diagonal term, i.e. a single ``weights @ queue``
    # product minus a rank-1 diagonal adjustment (mirrors the vectorised
    # plain-Schweitzer solver in :mod:`repro.queueing.mva_approximate`).
    own_correction = np.where(active, (population - 1.0) / np.maximum(population, 1.0), 0.0)
    diagonal_weights = np.diagonal(weights)
    self_adjustment = (diagonal_weights * (1.0 - own_correction))[:, None]
    active_column = active[:, None]

    residence = np.zeros_like(demands)
    throughput = np.zeros(num_classes)
    for iteration in range(1, max_iterations + 1):
        seen = weights @ queue - self_adjustment * queue
        # Multi-server correction: only the customers in excess of the
        # free servers cause waiting (M/M/c-style approximation).
        excess = np.maximum(0.0, seen - (servers - 1.0))
        residence = np.where(
            queueing, demands * (1.0 + excess / servers), demands
        )
        residence = np.where(active_column, residence, 0.0)
        totals = think + residence.sum(axis=1)
        throughput = np.divide(
            population,
            totals,
            out=np.zeros_like(population),
            where=(totals > 0) & active,
        )
        new_queue = residence * throughput[:, None]
        delta = float(np.max(np.abs(new_queue - queue))) if new_queue.size else 0.0
        queue = new_queue
        if delta <= tolerance:
            break
    else:
        raise ConvergenceError(
            f"overlap MVA did not converge in {max_iterations} iterations"
        )

    response = residence.sum(axis=1)
    utilizations = demands * throughput[:, None]
    return NetworkSolution(
        class_names=tuple(network.class_names),
        center_names=tuple(center.name for center in network.centers),
        residence_times=residence,
        response_times=response,
        throughputs=throughput,
        queue_lengths=queue,
        utilizations=utilizations,
        iterations=iteration,
    )
