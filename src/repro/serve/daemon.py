"""Prediction-as-a-service daemon: asyncio front end over the service layer.

The reproduction's north star is serving what-if queries like a long-running
daemon, and this module is that daemon: a single-process asyncio HTTP/JSON
server wrapping one resident :class:`~repro.api.service.PredictionService`,
so every request shares the same in-memory cache, persistent store, circuit
breakers and in-flight coalescing registry.

Serving semantics:

* **Admission.** POST work passes a bounded admission gate: at most
  ``max_inflight`` requests execute concurrently and at most ``queue_depth``
  more wait; beyond that the daemon answers ``429`` with ``Retry-After``
  instead of buffering unbounded work.  ``GET /stats`` and ``GET /healthz``
  bypass admission — observability must keep answering exactly when the
  daemon is saturated.
* **Coalescing.** Concurrent identical requests — same
  ``(Scenario.cache_key(), backend)`` — share one evaluation through the
  service's in-flight registry; joins surface in ``/stats`` as the
  ``coalesced`` counter.
* **Per-request policy.** A request's ``policy`` object selects ``retries``
  / ``timeout`` / ``on_error`` for that request only, clamped to the
  server's ceilings (:attr:`ServeConfig.max_retries`,
  :attr:`ServeConfig.max_timeout`).
* **Streaming sweeps.** ``POST /sweep`` answers NDJSON over chunked
  transfer: a ``plan`` line, one ``point`` line per grid point *as it
  completes* (via :meth:`~repro.api.sweep.SweepScheduler.iter_results`), and
  a ``done`` line.  A client that disconnects mid-stream cancels the
  not-yet-started points; finished points are already persisted, so the
  store stays consistent and a re-run resumes from them.
* **Capacity planning.** ``POST /plan`` runs a
  :class:`~repro.plan.PlanSpec` search through the resident service under
  the same admission gate and returns the full
  :class:`~repro.plan.PlanReport` envelope — identical to ``repro plan
  --json`` for the same spec.
* **Lifecycle.** SIGTERM/SIGINT stop the listener, answer new work ``503``,
  drain the admitted + queued requests, flush the result store, and return
  — the CLI exits 0.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import signal
import threading
from collections import deque
from collections.abc import Callable, Iterator
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial

from ..api.resilience import (
    BREAKER_OPEN,
    ON_ERROR_MODES,
    BreakerSnapshot,
)
from ..api.results import BackendComparison, FailedResult, PredictionResult
from ..api.scenario import Scenario, ScenarioSuite
from ..api.service import PredictionService
from ..api.sweep import SweepScheduler
from ..exceptions import CircuitOpenError, ReproError, ValidationError
from ..plan import CapacityPlanner, PlanSpec
from .http import (
    LAST_CHUNK,
    HttpError,
    Request,
    encode_chunk,
    encode_response,
    encode_stream_head,
    error_body,
    json_body,
    read_request,
)

#: Keys a request's ``policy`` object may carry.
POLICY_FIELDS = ("retries", "timeout", "on_error")


def retry_after_value(seconds: float) -> str:
    """``Retry-After`` wire value: RFC 9110 delay-seconds, a non-negative
    integer — fractional configs round *up* so clients never retry early."""
    return str(max(0, math.ceil(seconds)))


@dataclass(frozen=True)
class ServeConfig:
    """Daemon tunables (the CLI flags map straight onto these)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; the bound port is announced and exposed
    #: as :attr:`PredictionDaemon.port`.
    port: int = 0
    #: Admitted requests executing concurrently.
    max_inflight: int = 4
    #: Requests allowed to wait for a slot before 429s start.
    queue_depth: int = 16
    #: Ceiling on per-request ``policy.retries``.
    max_retries: int = 5
    #: Ceiling on per-request ``policy.timeout`` (seconds).
    max_timeout: float = 120.0
    #: ``Retry-After`` seconds advertised on 429 and drain-503 responses
    #: (rounded up to whole seconds on the wire, per RFC 9110).
    retry_after: float = 1.0
    #: Largest accepted request body.
    max_body_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValidationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.queue_depth < 0:
            raise ValidationError(
                f"queue_depth must be >= 0, got {self.queue_depth}"
            )
        if self.max_retries < 0 or self.max_timeout <= 0:
            raise ValidationError("policy ceilings must be positive")


def resolve_policy(
    policy: object, config: ServeConfig, default_on_error: str = "record"
) -> tuple[int | None, float | None, str]:
    """Validate a request's ``policy`` object and clamp it to the ceilings.

    Returns ``(retries, timeout, on_error)`` ready for
    :meth:`~repro.api.service.PredictionService.evaluate_point`; ``None``
    means "use the service default".  Values above the server ceilings are
    clamped, not rejected — a client asking for more resilience than the
    server allows gets as much as the server allows.
    """
    if policy is None:
        policy = {}
    if not isinstance(policy, dict):
        raise HttpError(
            400, f"policy must be a JSON object, got {type(policy).__name__}"
        )
    unknown = set(policy) - set(POLICY_FIELDS)
    if unknown:
        raise HttpError(
            400,
            f"unknown policy fields {sorted(unknown)}; known: {list(POLICY_FIELDS)}",
        )
    retries: int | None = None
    if policy.get("retries") is not None:
        value = policy["retries"]
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise HttpError(400, f"policy.retries must be an int >= 0, got {value!r}")
        retries = min(value, config.max_retries)
    timeout: float | None = None
    if policy.get("timeout") is not None:
        value = policy["timeout"]
        if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
            raise HttpError(400, f"policy.timeout must be a number > 0, got {value!r}")
        timeout = min(float(value), config.max_timeout)
    on_error = policy.get("on_error", default_on_error)
    if on_error not in ON_ERROR_MODES:
        raise HttpError(
            400, f"policy.on_error must be one of {list(ON_ERROR_MODES)}, got {on_error!r}"
        )
    return retries, timeout, on_error


def _result_dict(result: PredictionResult | FailedResult | None) -> dict | None:
    return None if result is None else result.to_dict()


class PredictionDaemon:
    """One resident service behind an asyncio HTTP front end."""

    def __init__(
        self, service: PredictionService, config: ServeConfig | None = None
    ) -> None:
        self.service = service
        self.config = config or ServeConfig()
        self.scheduler = SweepScheduler(service)
        self.host = self.config.host
        #: Bound port; resolved from an ephemeral bind once serving starts.
        self.port = self.config.port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping: asyncio.Event | None = None
        self._draining = False
        self._inflight = 0
        self._waiters: deque[asyncio.Future] = deque()
        self._connections: set[asyncio.Task] = set()
        # One pool thread per admitted request is enough: predict/compare
        # evaluate on it directly, a sweep uses it to pump the streaming
        # generator (which fans out on its own pool).
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_inflight,
            thread_name_prefix="repro-serve",
        )

    # -- admission ------------------------------------------------------------

    @property
    def queued(self) -> int:
        """Requests currently waiting for an execution slot."""
        return len(self._waiters)

    @property
    def inflight(self) -> int:
        """Admitted requests currently executing."""
        return self._inflight

    @property
    def draining(self) -> bool:
        """Whether shutdown has begun (new work is rejected)."""
        return self._draining

    async def _admit(self) -> None:
        """Take one execution slot, waiting in the bounded queue if needed.

        All admission state lives on the event loop thread, so the
        check-then-act sequences here are atomic without a lock.
        """
        if self._draining:
            raise HttpError(
                503,
                "daemon is draining; not accepting new work",
                headers={"retry-after": retry_after_value(self.config.retry_after)},
            )
        if self._inflight < self.config.max_inflight:
            self._inflight += 1
            return
        if len(self._waiters) >= self.config.queue_depth:
            raise HttpError(
                429,
                f"admission queue is full ({self.config.max_inflight} in flight, "
                f"{self.config.queue_depth} queued)",
                headers={"retry-after": retry_after_value(self.config.retry_after)},
            )
        loop = asyncio.get_running_loop()
        slot: asyncio.Future = loop.create_future()
        self._waiters.append(slot)
        try:
            await slot
        except asyncio.CancelledError:
            if slot.done():
                # The slot was handed to us after cancellation hit: pass it on.
                self._release_slot()
            else:
                self._waiters.remove(slot)
            raise
        # A granted slot transfers the releaser's _inflight count — no bump.

    def _release_slot(self) -> None:
        if self._waiters:
            self._waiters.popleft().set_result(None)
        else:
            self._inflight -= 1

    # -- request handling ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_one(reader, writer)
        except (ConnectionError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await read_request(reader, max_body=self.config.max_body_bytes)
        except HttpError as exc:
            writer.write(
                encode_response(exc.status, error_body(exc.status, exc.message))
            )
            await writer.drain()
            return
        if request is None:
            return
        try:
            await self._dispatch(request, writer)
        except HttpError as exc:
            writer.write(
                encode_response(
                    exc.status, error_body(exc.status, exc.message), exc.headers
                )
            )
            await writer.drain()

    async def _dispatch(self, request: Request, writer: asyncio.StreamWriter) -> None:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            status, payload = self._health()
            await self._respond(writer, status, payload)
        elif route == ("GET", "/stats"):
            await self._respond(writer, 200, self._stats_payload())
        elif route == ("POST", "/predict"):
            await self._handle_predict(request, writer)
        elif route == ("POST", "/compare"):
            await self._handle_compare(request, writer)
        elif route == ("POST", "/sweep"):
            await self._handle_sweep(request, writer)
        elif route == ("POST", "/plan"):
            await self._handle_plan(request, writer)
        elif request.path in (
            "/healthz",
            "/stats",
            "/predict",
            "/compare",
            "/sweep",
            "/plan",
        ):
            raise HttpError(405, f"{request.method} is not supported on {request.path}")
        else:
            raise HttpError(404, f"unknown endpoint {request.path!r}")

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        writer.write(encode_response(status, json_body(payload)))
        await writer.drain()

    # -- observability endpoints (no admission) --------------------------------

    def _health(self) -> tuple[int, dict]:
        """503 only when *every* backend's breaker is open — one healthy
        (or not-yet-tripped) backend keeps the daemon serviceable."""
        snapshots = self.service.breakers()
        names = self.service.backends()
        open_names = [
            name for name, snap in snapshots.items() if snap.state == BREAKER_OPEN
        ]
        all_open = bool(names) and all(
            snapshots.get(name) is not None
            and snapshots[name].state == BREAKER_OPEN
            for name in names
        )
        if all_open:
            return 503, {"status": "unhealthy", "open_breakers": sorted(open_names)}
        status = "degraded" if open_names else "ok"
        return 200, {
            "status": status,
            "open_breakers": sorted(open_names),
            "draining": self._draining,
        }

    def _stats_payload(self) -> dict:
        stats = self.service.stats()
        return {
            "service": stats.to_dict(),
            # The degradation ladder's counters, pulled out of the service
            # stats so dashboards and operators can alarm on them without
            # knowing the full counter schema.
            "degradation": {
                "pool_rebuilds": stats.pool_rebuilds,
                "pool_fallbacks": stats.pool_fallbacks,
                "batch_fallbacks": stats.batch_fallbacks,
                "breaker_trips": stats.breaker_trips,
                "declined": stats.declined,
            },
            "breakers": {
                name: snapshot.to_dict()
                for name, snapshot in self.service.breakers().items()
            },
            "server": {
                "inflight": self._inflight,
                "queued": self.queued,
                "draining": self._draining,
                "max_inflight": self.config.max_inflight,
                "queue_depth": self.config.queue_depth,
            },
            # Engine-agnostic store surface: null without a store, else the
            # engine name and path so operators can see what the daemon
            # persists into (json shards vs one sqlite file).
            "store": (
                None
                if self.service.store is None
                else {
                    "format": self.service.store.format_name,
                    "path": str(self.service.store.path),
                    "indexed_records": len(self.service.store),
                }
            ),
        }

    # -- work endpoints --------------------------------------------------------

    def _parse_scenario(self, payload: dict, key: str = "scenario") -> Scenario:
        if key not in payload:
            raise HttpError(400, f"request body is missing {key!r}")
        try:
            return Scenario.from_dict(payload[key])
        except ValidationError as exc:
            raise HttpError(400, f"invalid scenario: {exc}") from exc

    def _check_backend(self, name: object) -> str:
        known = self.service.backends()
        if not isinstance(name, str) or name not in known:
            raise HttpError(400, f"unknown backend {name!r}; known: {known}")
        return name

    @staticmethod
    def _check_fields(payload: dict, allowed: tuple[str, ...]) -> None:
        unknown = set(payload) - set(allowed)
        if unknown:
            raise HttpError(
                400, f"unknown request fields {sorted(unknown)}; known: {list(allowed)}"
            )

    async def _run_admitted(self, fn: Callable[[], object]) -> object:
        """Run one blocking unit of service work under an admission slot."""
        await self._admit()
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(self._pool, fn)
        finally:
            self._release_slot()

    @staticmethod
    def _map_service_error(exc: ReproError) -> HttpError:
        if isinstance(exc, ValidationError):
            return HttpError(400, str(exc))
        if isinstance(exc, CircuitOpenError):
            return HttpError(503, str(exc))
        return HttpError(500, f"{type(exc).__name__}: {exc}")

    async def _handle_predict(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        payload = request.json()
        self._check_fields(payload, ("scenario", "backend", "policy"))
        scenario = self._parse_scenario(payload)
        backend = self._check_backend(payload.get("backend"))
        retries, timeout, on_error = resolve_policy(
            payload.get("policy"), self.config
        )
        work = partial(
            self.service.evaluate_point,
            scenario,
            backend,
            on_error=on_error,
            retry=retries,
            timeout=timeout,
        )
        try:
            result = await self._run_admitted(work)
        except ReproError as exc:
            raise self._map_service_error(exc) from exc
        await self._respond(
            writer,
            200,
            {"backend": backend, "result": _result_dict(result)},
        )

    async def _handle_compare(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        payload = request.json()
        self._check_fields(payload, ("scenario", "backends", "baseline", "policy"))
        scenario = self._parse_scenario(payload)
        requested = payload.get("backends")
        if requested is None:
            names = self.service.backends()
        elif isinstance(requested, list):
            names = [self._check_backend(name) for name in requested]
        else:
            raise HttpError(400, "backends must be a JSON array of backend names")
        baseline = payload.get("baseline", names[0] if names else None)
        baseline = self._check_backend(baseline)
        if baseline not in names:
            names = [baseline, *names]
        retries, timeout, _ = resolve_policy(payload.get("policy"), self.config)

        def work() -> BackendComparison:
            results = {
                name: self.service.evaluate(
                    scenario, name, retry=retries, timeout=timeout
                )
                for name in names
            }
            return BackendComparison(
                scenario=scenario, baseline=baseline, results=results
            )

        try:
            comparison = await self._run_admitted(work)
        except ReproError as exc:
            raise self._map_service_error(exc) from exc
        await self._respond(
            writer,
            200,
            {
                "baseline": comparison.baseline,
                "results": {
                    name: result.to_dict()
                    for name, result in comparison.results.items()
                },
                "relative_errors": comparison.relative_errors(),
            },
        )

    async def _handle_plan(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        """``POST /plan``: run a capacity-planning search under admission.

        The body carries a serialised :class:`~repro.plan.PlanSpec` under
        ``"plan"``; the response is the full
        :class:`~repro.plan.PlanReport` envelope — byte-identical to what
        ``repro plan --json`` prints for the same spec, so a daemon and a
        CLI answering the same question are interchangeable.  The search
        runs through the daemon's resident service, so its probes share the
        cache, the store, and the coalescing registry with every other
        request.
        """
        payload = request.json()
        self._check_fields(payload, ("plan",))
        if "plan" not in payload:
            raise HttpError(400, "request body is missing 'plan'")
        try:
            spec = PlanSpec.from_dict(payload["plan"])
        except ValidationError as exc:
            raise HttpError(400, f"invalid plan spec: {exc}") from exc
        self._check_backend(spec.backend)
        if spec.confirm_backend is not None:
            self._check_backend(spec.confirm_backend)
        planner = CapacityPlanner(self.service)
        try:
            report = await self._run_admitted(partial(planner.plan, spec))
        except ReproError as exc:
            raise self._map_service_error(exc) from exc
        await self._respond(writer, 200, report.to_dict())

    async def _handle_sweep(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        payload = request.json()
        self._check_fields(payload, ("suite", "backends", "policy"))
        if "suite" not in payload:
            raise HttpError(400, "request body is missing 'suite'")
        try:
            suite = ScenarioSuite.from_dict(payload["suite"])
        except ValidationError as exc:
            raise HttpError(400, f"invalid suite: {exc}") from exc
        requested = payload.get("backends")
        if requested is None:
            names = self.service.backends()
        elif isinstance(requested, list):
            names = [self._check_backend(name) for name in requested]
        else:
            raise HttpError(400, "backends must be a JSON array of backend names")
        retries, timeout, on_error = resolve_policy(payload.get("policy"), self.config)
        await self._admit()
        try:
            await self._stream_sweep(
                writer, suite, names, on_error, retries, timeout
            )
        finally:
            self._release_slot()

    async def _stream_sweep(
        self,
        writer: asyncio.StreamWriter,
        suite: ScenarioSuite,
        names: list[str],
        on_error: str,
        retries: int | None,
        timeout: float | None,
    ) -> None:
        """Pump the streaming sweep generator into a chunked NDJSON response.

        The generator runs on a daemon pool thread; each yielded point hops
        to the event loop through a bounded queue (so a slow client applies
        backpressure to evaluation draining, not memory).  On client
        disconnect the pump stops and closes the generator, which cancels
        the unstarted points and waits for in-flight ones — those still land
        in the cache and store, so the scheduler and store stay consistent.
        """
        loop = asyncio.get_running_loop()
        before = self.service.stats()
        plan = self.scheduler.plan(suite, names)
        results = self.scheduler.iter_results(
            suite,
            names,
            on_error=on_error,
            plan=plan,
            retry=retries,
            timeout=timeout,
        )
        queue: asyncio.Queue = asyncio.Queue(maxsize=8)
        stop = threading.Event()
        done = object()

        def emit(item: object) -> None:
            asyncio.run_coroutine_threadsafe(queue.put(item), loop).result()

        def pump(generator: Iterator) -> None:
            error: BaseException | None = None
            try:
                for point in generator:
                    if stop.is_set():
                        break
                    emit(point)
            except BaseException as exc:  # surfaced as the stream's error line
                error = exc
            finally:
                generator.close()
                emit((done, error))

        writer.write(encode_stream_head())
        writer.write(
            encode_chunk(_ndjson_line({"event": "plan", "plan": _plan_dict(plan)}))
        )
        await writer.drain()
        pump_future = loop.run_in_executor(self._pool, pump, results)
        sentinel_seen = False
        try:
            while True:
                item = await queue.get()
                if isinstance(item, tuple) and len(item) == 2 and item[0] is done:
                    sentinel_seen = True
                    error = item[1]
                    if error is not None:
                        line = {
                            "event": "error",
                            "error_type": type(error).__name__,
                            "error": str(error),
                        }
                        writer.write(encode_chunk(_ndjson_line(line)))
                    break
                index, backend, result = item
                line = {
                    "event": "point",
                    "index": index,
                    "backend": backend,
                    "result": _result_dict(result),
                }
                writer.write(encode_chunk(_ndjson_line(line)))
                await writer.drain()
            stats = self.service.stats().delta(before)
            tail = {"event": "done", "stats": stats.to_dict()}
            writer.write(encode_chunk(_ndjson_line(tail)))
            writer.write(LAST_CHUNK)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            stop.set()
            # Always drain to the sentinel so the pump thread can never
            # deadlock on a queue nobody is reading.  (If the main loop
            # already consumed it, the pump has nothing further to emit.)
            while not sentinel_seen:
                item = await queue.get()
                if isinstance(item, tuple) and len(item) == 2 and item[0] is done:
                    sentinel_seen = True
            await pump_future

    # -- lifecycle -------------------------------------------------------------

    def request_shutdown(self) -> None:
        """Begin the drain (idempotent; callable from a signal handler)."""
        self._draining = True
        if self._stopping is not None:
            self._stopping.set()

    def shutdown_threadsafe(self) -> None:
        """Begin the drain from another thread (tests / embedding)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_shutdown)

    async def run(self, ready: Callable[[], None] | None = None) -> None:
        """Serve until a shutdown signal, then drain and flush.

        ``ready`` (if given) is called once the socket is bound — by then
        :attr:`port` holds the real port, so an ephemeral-port daemon can
        announce itself.
        """
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        signals_installed: list[signal.Signals] = []
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(signum, self.request_shutdown)
                    signals_installed.append(signum)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        try:
            if ready is not None:
                ready()
            if self._draining:
                # Shutdown was requested before the listener came up.
                self._stopping.set()
            await self._stopping.wait()
            server.close()
            await server.wait_closed()
            # Connections admitted (or queued) before the drain finish their
            # work; anything still reaching admission now gets 503.
            pending = [task for task in self._connections if not task.done()]
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            for signum in signals_installed:
                self._loop.remove_signal_handler(signum)
            self._pool.shutdown(wait=True)
            if self.service.store is not None:
                self.service.store.refresh()
            self._loop = None


def _ndjson_line(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _plan_dict(plan) -> dict:
    return {
        "suite": plan.suite.name,
        "backends": list(plan.backends),
        "total_points": plan.total_points,
        "memory_hits": len(plan.memory_hits),
        "store_hits": len(plan.store_hits),
        "missing": len(plan.missing),
        "leased": len(plan.leased),
    }


@contextlib.contextmanager
def daemon_in_thread(
    service: PredictionService, config: ServeConfig | None = None
) -> Iterator[PredictionDaemon]:
    """Run a daemon on a background thread for tests and benchmarks.

    Yields the daemon once its socket is bound (``daemon.port`` is real);
    on exit requests the drain and joins the server thread, propagating any
    crash out of the ``with`` block.
    """
    daemon = PredictionDaemon(service, config)
    bound = threading.Event()
    failure: list[BaseException] = []

    def _serve() -> None:
        try:
            asyncio.run(daemon.run(ready=bound.set))
        except BaseException as exc:  # pragma: no cover - surfaced on exit
            failure.append(exc)
        finally:
            bound.set()

    thread = threading.Thread(target=_serve, name="repro-serve-daemon", daemon=True)
    thread.start()
    try:
        if not bound.wait(timeout=10.0):
            raise RuntimeError("daemon did not start within 10s")
        if failure:
            raise RuntimeError("daemon failed to start") from failure[0]
        yield daemon
    finally:
        daemon.shutdown_threadsafe()
        thread.join(timeout=30.0)
        if thread.is_alive():  # pragma: no cover - drain hang is a bug
            raise RuntimeError("daemon did not drain within 30s")
        if failure:
            raise RuntimeError("daemon crashed") from failure[0]


# Re-exported for callers that inspect breaker health through the daemon.
__all__ = [
    "POLICY_FIELDS",
    "BreakerSnapshot",
    "PredictionDaemon",
    "ServeConfig",
    "daemon_in_thread",
    "resolve_policy",
]
