"""Prediction-as-a-service: the long-lived HTTP daemon over the API layer.

Everything one-shot about the CLI becomes resident here: one
:class:`~repro.api.service.PredictionService` (cache + store + breakers +
in-flight coalescing) behind an asyncio HTTP/JSON front end with bounded
admission, per-request resilience policies, streaming sweeps, and a graceful
SIGTERM drain.  See :mod:`repro.serve.daemon` for the serving semantics and
:mod:`repro.serve.loadgen` for the multi-client load generator the
``BENCH_SERVE`` benchmark drives.
"""

from .daemon import (
    POLICY_FIELDS,
    PredictionDaemon,
    ServeConfig,
    daemon_in_thread,
    resolve_policy,
)
from .http import HttpError, Request
from .loadgen import LoadReport, percentile, run_predict_load

__all__ = [
    "POLICY_FIELDS",
    "HttpError",
    "LoadReport",
    "PredictionDaemon",
    "Request",
    "ServeConfig",
    "daemon_in_thread",
    "percentile",
    "resolve_policy",
    "run_predict_load",
]
