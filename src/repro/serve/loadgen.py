"""Multi-client load generator for the prediction daemon (stdlib only).

The daemon's acceptance story is measured, not asserted: this module drives
it the way a fleet of clients would — N threads, each opening plain HTTP
connections against the serving endpoints — and reports sustained request
rate and latency percentiles.  The ``BENCH_SERVE`` benchmark
(`benchmarks/test_bench_serve.py`) is the canonical driver; tests reuse the
same :class:`DaemonClient` for single requests and NDJSON streams.

Latency is recorded per request in milliseconds; :func:`percentile` uses the
same linear interpolation as the accuracy layer so p50/p99 here and there
mean the same thing.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from ..exceptions import ValidationError


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Matches NumPy's default method so bench numbers are comparable with the
    accuracy layer's bands.
    """
    if not values:
        raise ValidationError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise ValidationError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class DaemonClient:
    """Minimal HTTP client for the daemon (one connection per request)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def request_json(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        """One request; returns ``(status, decoded JSON body)``."""
        connection = self._connect()
        try:
            body = None if payload is None else json.dumps(payload).encode("utf-8")
            headers = {} if body is None else {"Content-Type": "application/json"}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
            return response.status, decoded
        finally:
            connection.close()

    def get_json(self, path: str) -> tuple[int, dict]:
        return self.request_json("GET", path)

    def post_json(self, path: str, payload: dict) -> tuple[int, dict]:
        return self.request_json("POST", path, payload)

    def stream_ndjson(
        self, path: str, payload: dict, max_lines: int | None = None
    ) -> Iterator[dict]:
        """POST and yield the response's NDJSON lines as they arrive.

        ``max_lines`` simulates a client that walks away mid-stream: the
        connection is closed after that many lines even though the server
        has more to send.
        """
        connection = self._connect()
        try:
            body = json.dumps(payload).encode("utf-8")
            connection.request(
                "POST", path, body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read()
                raise ValidationError(
                    f"stream request failed with {response.status}: "
                    f"{raw.decode('utf-8', 'replace')}"
                )
            seen = 0
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                yield json.loads(line.decode("utf-8"))
                seen += 1
                if max_lines is not None and seen >= max_lines:
                    return
        finally:
            connection.close()


@dataclass
class LoadReport:
    """Outcome of one load-generator run."""

    clients: int
    requests: int
    ok: int
    #: 429 backpressure rejections.
    rejected: int
    #: Any other non-200 outcome (these should be zero in a healthy run).
    failed: int
    duration_s: float
    #: Per-request wall-clock latencies, milliseconds, completion order.
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def req_per_s(self) -> float:
        """Sustained completed-request rate over the run."""
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    def latency_ms(self, q: float) -> float:
        return percentile(self.latencies_ms, q)

    def to_dict(self) -> dict:
        """JSON-serialisable summary (the ``BENCH_SERVE`` line's core)."""
        return {
            "clients": self.clients,
            "requests": self.requests,
            "ok": self.ok,
            "rejected": self.rejected,
            "failed": self.failed,
            "duration_s": round(self.duration_s, 6),
            "req_per_s": round(self.req_per_s, 3),
            "p50_ms": round(self.latency_ms(50.0), 3),
            "p99_ms": round(self.latency_ms(99.0), 3),
        }


def run_predict_load(
    host: str,
    port: int,
    scenarios: Sequence[dict],
    backend: str,
    clients: int = 4,
    requests_per_client: int = 25,
    policy: dict | None = None,
    timeout: float = 30.0,
) -> LoadReport:
    """Hammer ``POST /predict`` from ``clients`` concurrent threads.

    Every client walks the scenario list round-robin from its own offset, so
    with fewer scenarios than total requests the same points are requested
    concurrently — exactly the shape that exercises coalescing.  All clients
    start on a barrier; the duration excludes thread spin-up.
    """
    if clients < 1 or requests_per_client < 1:
        raise ValidationError("clients and requests_per_client must be >= 1")
    if not scenarios:
        raise ValidationError("at least one scenario is required")
    barrier = threading.Barrier(clients + 1)
    lock = threading.Lock()
    latencies: list[float] = []
    counts = {"ok": 0, "rejected": 0, "failed": 0}
    errors: list[BaseException] = []

    def worker(offset: int) -> None:
        client = DaemonClient(host, port, timeout=timeout)
        try:
            barrier.wait()
            for step in range(requests_per_client):
                scenario = scenarios[(offset + step) % len(scenarios)]
                payload: dict = {"scenario": scenario, "backend": backend}
                if policy is not None:
                    payload["policy"] = policy
                started = time.perf_counter()
                status, _body = client.post_json("/predict", payload)
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                with lock:
                    latencies.append(elapsed_ms)
                    if status == 200:
                        counts["ok"] += 1
                    elif status == 429:
                        counts["rejected"] += 1
                    else:
                        counts["failed"] += 1
        except BaseException as exc:  # pragma: no cover - surfaced below
            with lock:
                errors.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(index,), name=f"loadgen-{index}")
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started
    if errors:
        raise RuntimeError("load-generator client crashed") from errors[0]
    return LoadReport(
        clients=clients,
        requests=len(latencies),
        ok=counts["ok"],
        rejected=counts["rejected"],
        failed=counts["failed"],
        duration_s=duration,
        latencies_ms=latencies,
    )
