"""Minimal HTTP/1.1 layer for the prediction daemon (stdlib only).

The daemon's transport needs are deliberately small — parse one request per
connection, answer with a fixed-length JSON body or a chunked NDJSON stream —
so rather than pulling in a web framework this module implements exactly
that slice of HTTP/1.1 over :mod:`asyncio` streams:

* :func:`read_request` parses a request head + ``Content-Length`` body from a
  stream reader with hard limits on line length, header count and body size
  (an oversized body is answered ``413``, not buffered);
* :func:`encode_response` / :func:`encode_chunk` build wire bytes for
  fixed-length and ``Transfer-Encoding: chunked`` responses;
* :class:`HttpError` carries a status + message (and optional extra headers,
  e.g. ``Retry-After``) from anywhere in request handling back to the one
  place that writes the error response.

Every response is ``Connection: close``: one request per connection keeps
the daemon's admission accounting trivially correct (a connection maps to at
most one unit of admitted work) at a throughput cost that is irrelevant next
to a model evaluation.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import urlsplit

#: Reason phrases for the status codes the daemon actually emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Hard parser limits; requests beyond them are rejected, never buffered.
MAX_LINE_BYTES = 8192
MAX_HEADERS = 100
DEFAULT_MAX_BODY_BYTES = 1 << 20


class HttpError(Exception):
    """A request that must be answered with an HTTP error status."""

    def __init__(
        self, status: int, message: str, headers: dict[str, str] | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request."""

    method: str
    #: Path component of the request target (query string stripped).
    path: str
    query: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """Decode the body as a JSON object, or raise a 400 :class:`HttpError`."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise HttpError(
                400, f"request body must be a JSON object, got {type(payload).__name__}"
            )
        return payload


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""
        raise HttpError(400, "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, "request line too long") from exc
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(400, "request line too long")
    return line


async def read_request(
    reader: asyncio.StreamReader, max_body: int = DEFAULT_MAX_BODY_BYTES
) -> Request | None:
    """Parse one request from ``reader``.

    Returns ``None`` on a clean EOF before any bytes (client connected and
    went away); raises :class:`HttpError` on anything malformed or over the
    size limits.  Only ``Content-Length`` bodies are supported — a chunked
    request body is answered ``411`` (the daemon's request payloads are tiny
    scenario/suite documents, so nothing legitimate streams them).
    """
    request_line = await _read_line(reader)
    if not request_line:
        return None
    parts = request_line.decode("latin-1").rstrip("\r\n").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, _version = parts
    try:
        split = urlsplit(target)
    except ValueError as exc:  # e.g. an unbalanced IPv6 bracket in the target
        raise HttpError(400, f"malformed request target: {target!r}") from exc
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await _read_line(reader)
        if line in (b"\r\n", b""):
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many headers")
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(411, "chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "invalid Content-Length") from exc
        if length < 0:
            raise HttpError(400, "invalid Content-Length")
        if length > max_body:
            raise HttpError(413, f"request body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated request body") from exc
    return Request(
        method=method.upper(),
        path=split.path or "/",
        query=split.query,
        headers=headers,
        body=body,
    )


def encode_response(
    status: int,
    body: bytes = b"",
    headers: dict[str, str] | None = None,
    content_type: str = "application/json",
) -> bytes:
    """Wire bytes for one fixed-length ``Connection: close`` response."""
    lines = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}"]
    merged = {
        "content-type": content_type,
        "content-length": str(len(body)),
        "connection": "close",
    }
    merged.update({name.lower(): value for name, value in (headers or {}).items()})
    lines.extend(f"{name}: {value}" for name, value in merged.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def encode_stream_head(
    status: int = 200, content_type: str = "application/x-ndjson"
) -> bytes:
    """Response head opening a ``Transfer-Encoding: chunked`` stream."""
    return (
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
        f"content-type: {content_type}\r\n"
        "transfer-encoding: chunked\r\n"
        "connection: close\r\n\r\n"
    ).encode("latin-1")


def encode_chunk(data: bytes) -> bytes:
    """One chunk of a chunked response (empty data ends the stream)."""
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


#: Terminator of a chunked response.
LAST_CHUNK = b"0\r\n\r\n"


def json_body(payload: dict) -> bytes:
    """Canonical JSON bytes for a response body."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def error_body(status: int, message: str) -> bytes:
    """The daemon's uniform error-response body."""
    return json_body(
        {"error": message, "status": status, "reason": REASONS.get(status, "Unknown")}
    )
