"""Command-line interface.

``python -m repro`` (or the ``repro-hadoop2`` console script) exposes the
main entry points of the library:

* ``figure``   — regenerate one of the paper's evaluation figures;
* ``predict``  — run the analytic model for a single workload description;
* ``simulate`` — run the YARN simulator for the same workload;
* ``list``     — list the available figures.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .analysis import ascii_series_plot, format_series_table
from .core.estimators import EstimatorKind
from .core.model import Hadoop2PerformanceModel
from .experiments.figures import FIGURE_DEFINITIONS, run_figure
from .hadoop.simulator import ClusterSimulator
from .units import parse_size
from .workloads.generators import WorkloadSpec, paper_cluster, paper_scheduler
from .workloads.profiles import model_input_from_profile
from .workloads.wordcount import wordcount_profile


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=4, help="number of cluster nodes")
    parser.add_argument("--input-size", default="1GB", help="input data size (e.g. 1GB, 5GB)")
    parser.add_argument("--block-size", default="128MB", help="HDFS block size (e.g. 128MB, 64MB)")
    parser.add_argument("--jobs", type=int, default=1, help="number of concurrent jobs")
    parser.add_argument("--reduces", type=int, default=4, help="reduce tasks per job")
    parser.add_argument("--seed", type=int, default=1234, help="random seed")


def _workload_from_args(args: argparse.Namespace) -> WorkloadSpec:
    return WorkloadSpec.wordcount(
        input_size_bytes=parse_size(args.input_size),
        num_jobs=args.jobs,
        block_size_bytes=parse_size(args.block_size),
        num_reduces=args.reduces,
    )


def _command_list(_: argparse.Namespace) -> int:
    for figure_id, definition in sorted(FIGURE_DEFINITIONS.items()):
        print(f"{figure_id}: {definition.description}")
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    series = run_figure(args.figure_id, repetitions=args.repetitions, base_seed=args.seed)
    print(FIGURE_DEFINITIONS[args.figure_id].description)
    print(format_series_table(series.x_label, series.x_values, series.series()))
    if args.plot:
        print()
        print(ascii_series_plot(series.x_values, series.series()))
    for kind in (EstimatorKind.FORK_JOIN, EstimatorKind.TRIPATHI):
        errors = [abs(error) for error in series.errors(kind)]
        print(
            f"{kind.value}: mean |error| = {100 * sum(errors) / len(errors):.1f}%, "
            f"max |error| = {100 * max(errors):.1f}%"
        )
    return 0


def _command_predict(args: argparse.Namespace) -> int:
    workload = _workload_from_args(args)
    cluster = paper_cluster(args.nodes)
    model_input = model_input_from_profile(
        wordcount_profile(),
        cluster,
        workload.job_configs()[0],
        num_jobs=args.jobs,
    )
    model = Hadoop2PerformanceModel(model_input)
    for kind, result in model.predict_all().items():
        print(result.summary())
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    workload = _workload_from_args(args)
    cluster = paper_cluster(args.nodes)
    simulator = ClusterSimulator(cluster, paper_scheduler(), seed=args.seed)
    for job_config in workload.job_configs():
        simulator.submit_job(job_config, workload.profile.simulator_profile())
    result = simulator.run()
    for trace in result.job_traces:
        print(
            f"job {trace.job_id}: response {trace.response_time:.1f}s "
            f"(maps {trace.num_maps}, reduces {trace.num_reduces}, "
            f"avg map {trace.average_map_duration():.1f}s)"
        )
    print(f"mean job response time: {result.mean_response_time:.1f}s")
    print(f"makespan: {result.makespan:.1f}s")
    print(f"data-local map fraction: {result.metrics.data_local_fraction:.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-hadoop2",
        description="MapReduce performance models for Hadoop 2.x (EDBT 2017) — reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list the available figures")
    list_parser.set_defaults(handler=_command_list)

    figure_parser = subparsers.add_parser("figure", help="regenerate one evaluation figure")
    figure_parser.add_argument("figure_id", choices=sorted(FIGURE_DEFINITIONS))
    figure_parser.add_argument("--repetitions", type=int, default=3)
    figure_parser.add_argument("--seed", type=int, default=1234)
    figure_parser.add_argument("--plot", action="store_true", help="print an ASCII plot")
    figure_parser.set_defaults(handler=_command_figure)

    predict_parser = subparsers.add_parser("predict", help="run the analytic model")
    _add_workload_arguments(predict_parser)
    predict_parser.set_defaults(handler=_command_predict)

    simulate_parser = subparsers.add_parser("simulate", help="run the YARN simulator")
    _add_workload_arguments(simulate_parser)
    simulate_parser.set_defaults(handler=_command_simulate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
