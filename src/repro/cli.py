"""Command-line interface.

``python -m repro`` (or the ``repro-hadoop2`` console script) exposes the
main entry points of the library through the unified prediction API:

* ``list``     — list available figures, prediction backends, and workloads;
* ``figure``   — regenerate one of the paper's evaluation figures;
* ``predict``  — evaluate one scenario with selected backends;
* ``compare``  — evaluate all backends side by side with relative errors
  against a baseline (the simulator by default);
* ``sweep``    — evaluate a :class:`~repro.api.ScenarioSuite` JSON file
  across backends;
* ``dashboard`` — sweep every backend over a named experiment grid, print
  the per-backend error bands against the simulator (markdown table +
  ``ACCURACY_DASHBOARD`` JSONL lines), and optionally gate the run against a
  committed ``accuracy-baseline.json`` (nonzero exit on band drift);
* ``plan``     — invert the model: search a :class:`~repro.api.SearchSpace`
  of cluster sizes / container memories / reduce counts for the candidate
  optimising an :class:`~repro.api.Objective` (min-cost / min-makespan /
  min-nodes) under a :class:`~repro.api.Constraint` (deadline, budget,
  memory ceiling), printing the full auditable
  :class:`~repro.api.PlanReport`;
* ``serve``    — run the long-lived prediction daemon (HTTP/JSON endpoints
  with bounded admission, request coalescing, per-request resilience
  policies, streaming NDJSON sweeps, graceful SIGTERM drain);
* ``store``    — maintain a persistent result store (``store gc`` expires,
  evicts and compacts records; ``store info`` reports contents and leases);
* ``simulate`` — run the YARN simulator and print per-job traces.

Scenario-taking commands (``predict`` / ``compare`` / ``simulate``) accept
deterministic failure-injection knobs — ``--failure-rate``,
``--straggler-frac`` / ``--straggler-slowdown``, ``--node-failure-time``
(repeatable), ``--speculative``, ``--max-attempts`` — that attach a
:class:`~repro.config.FailureSpec` to the scenario.  The simulator models
the faults mechanistically; analytic backends either apply an
expected-value inflation or decline the point as a structured failure.

``predict`` / ``compare`` / ``sweep`` / ``figure`` accept ``--store PATH``
(persist results across runs through a result store; ``--store-format
json|sqlite`` selects the engine for a new store), ``--execution
{serial,thread,process}`` (suite fan-out strategy), ``--no-batch`` (disable
one-call ``predict_batch`` dispatch for the batch-capable analytic
backends), and the fault-tolerance knobs ``--retries N`` (retry transient
failures with exponential backoff), ``--timeout SECONDS`` (per-evaluation
deadline) and ``--on-error {raise,skip,record}`` (partial-results contract
for points that fail terminally).  ``sweep`` schedules through
:class:`~repro.api.SweepScheduler`: it first reports how many grid points
are already answered by the cache/store and evaluates only the missing ones,
so an interrupted store-backed sweep resumes where it left off.  With
``--worker-id`` (plus ``--store``), ``sweep`` joins the *cooperative* fabric
instead: k such processes sharing one store path claim points through the
store's lease namespace and drain the grid together with zero duplicate
evaluations — kill one mid-run and its claims expire after ``--lease-ttl``
seconds, to be taken over by the survivors.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from .analysis import ascii_series_plot, format_series_table
from .api import (
    EXECUTION_MODES,
    ON_ERROR_MODES,
    STORE_FORMATS,
    PredictionService,
    Scenario,
    ScenarioSuite,
    SweepScheduler,
    WORKLOAD_PROFILES,
    backend_names,
    open_store,
)
from .plan import OBJECTIVE_KINDS, CapacityPlanner, Constraint, Objective, PlanSpec, SearchSpace
from .api.dashboard import (
    ARTIFACT_PREFIX,
    DASHBOARD_BACKENDS,
    DASHBOARD_GRIDS,
    DEFAULT_MAX_ABS_TOLERANCE,
    DEFAULT_MEAN_ABS_TOLERANCE,
    AccuracyBaseline,
    baseline_from_report,
    compare_to_baseline,
    render_jsonl,
    render_markdown,
    run_dashboard,
    write_artifacts,
)
from .config import FailureSpec
from .core.estimators import EstimatorKind
from .exceptions import BackendCapabilityError, ReproError, ValidationError
from .experiments.figures import FIGURE_DEFINITIONS, run_figure
from .experiments.runner import POINT_BACKENDS
from .hadoop.simulator import ClusterSimulator
from .units import parse_size

#: Backends ``predict`` evaluates when no ``--backend`` is given (both
#: estimators of the paper's model, mirroring the historical behaviour).
DEFAULT_PREDICT_BACKENDS = ("mva-forkjoin", "mva-tripathi")
#: Backends ``sweep`` evaluates when no ``--backend`` is given.
DEFAULT_SWEEP_BACKENDS = ("simulator", "mva-forkjoin", "mva-tripathi")


class _DefaultsFormatter(argparse.HelpFormatter):
    """Help formatter that appends ``(default: X)`` to every knob.

    Options whose help text already states its default (in any phrasing
    containing the word "default") are left alone, as are flags and
    required/positional arguments — so the normalisation cannot produce
    ``(default: False)`` noise or contradict a hand-written explanation.
    """

    def _get_help_string(self, action: argparse.Action) -> str:
        text = action.help or ""
        default = action.default
        if (
            default is None
            or default is argparse.SUPPRESS
            or isinstance(default, bool)
            or not isinstance(default, (int, float, str))
            or not action.option_strings
            or "default" in text.lower()
        ):
            return text
        return f"{text} (default: %(default)s)"


def _json_envelope(result, metadata: dict, failed: list) -> str:
    """The shared ``--json`` shape every subcommand emits."""
    return json.dumps(
        {"result": result, "metadata": metadata, "failed": failed}, indent=2
    )


def _add_scenario_arguments(
    parser: argparse.ArgumentParser, repetitions: bool = True
) -> None:
    parser.add_argument(
        "--workload",
        default="wordcount",
        choices=sorted(WORKLOAD_PROFILES),
        help="application profile",
    )
    parser.add_argument("--nodes", type=int, default=4, help="number of cluster nodes")
    parser.add_argument("--input-size", default="1GB", help="input data size (e.g. 1GB, 5GB)")
    parser.add_argument("--block-size", default="128MB", help="HDFS block size (e.g. 128MB, 64MB)")
    parser.add_argument("--jobs", type=int, default=1, help="number of concurrent jobs")
    parser.add_argument("--reduces", type=int, default=4, help="reduce tasks per job")
    parser.add_argument("--seed", type=int, default=1234, help="random seed")
    if repetitions:
        parser.add_argument(
            "--repetitions", type=int, default=3, help="simulator repetitions per point"
        )
    failures = parser.add_argument_group(
        "failure injection",
        "deterministic faults for the simulator backend; analytic backends "
        "apply an expected-value correction where they can and decline "
        "(structured failure, not a crash) where they cannot",
    )
    failures.add_argument(
        "--failure-rate",
        dest="failure_rate",
        type=float,
        default=0.0,
        metavar="P",
        help="per-attempt task failure probability in [0, 1)",
    )
    failures.add_argument(
        "--straggler-frac",
        dest="straggler_frac",
        type=float,
        default=0.0,
        metavar="F",
        help="fraction of task attempts slowed down as stragglers",
    )
    failures.add_argument(
        "--straggler-slowdown",
        dest="straggler_slowdown",
        type=float,
        default=2.5,
        metavar="X",
        help="slowdown factor applied to straggler attempts (>= 1)",
    )
    failures.add_argument(
        "--node-failure-time",
        dest="node_failure_times",
        type=float,
        action="append",
        default=None,
        metavar="SECONDS",
        help="kill one node at this simulation time (repeatable)",
    )
    failures.add_argument(
        "--speculative",
        action="store_true",
        help="launch speculative backup attempts for detected stragglers",
    )
    failures.add_argument(
        "--max-attempts",
        dest="max_attempts",
        type=int,
        default=4,
        metavar="N",
        help="attempts per task before the last one is forced to succeed",
    )


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """Options configuring the shared prediction service (store + executor)."""
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent result-store directory; results are reused across runs",
    )
    parser.add_argument(
        "--store-format",
        dest="store_format",
        default=None,
        choices=STORE_FORMATS,
        help="store engine for a NEW --store directory (an existing store "
        "keeps its engine; default for new stores: json)",
    )
    parser.add_argument(
        "--execution",
        default="thread",
        choices=EXECUTION_MODES,
        help="suite fan-out strategy (process sidesteps the GIL for the simulator)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="evaluate suite points one by one instead of dispatching "
        "batch-capable backends in one vectorised call",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry transient evaluation failures up to N times "
        "(exponential backoff with deterministic jitter; default: no retries)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-evaluation deadline; a timed-out point is retried "
        "(if --retries allows) or reported as failed",
    )
    parser.add_argument(
        "--on-error",
        dest="on_error",
        default="raise",
        choices=ON_ERROR_MODES,
        help="suite contract for points that fail terminally: raise aborts, "
        "skip omits them, record keeps structured failure rows",
    )


def _service_from_args(
    args: argparse.Namespace,
    backends: Sequence[str],
    max_workers: int | None = None,
) -> PredictionService:
    return PredictionService(
        backends=backends,
        max_workers=max_workers,
        store=args.store,
        store_format=args.store_format,
        execution=args.execution,
        batch=not args.no_batch,
        retry=args.retries,
        timeout=args.timeout,
        on_error=args.on_error,
    )


def _print_store_summary(args: argparse.Namespace, service: PredictionService) -> None:
    """One stderr line saying how much work the persistent store saved."""
    if args.store is None:
        return
    stats = service.stats()
    print(
        f"store {args.store}: {stats.store_hits} store hits, "
        f"{stats.memory_hits} cache hits, {stats.evaluations} evaluated",
        file=sys.stderr,
    )


def _print_resilience_summary(service: PredictionService) -> None:
    """One stderr line on retries/failures/degradations — only when any fired."""
    stats = service.stats()
    noteworthy = (
        stats.retries
        or stats.failures
        or stats.declined
        or stats.timeouts
        or stats.batch_fallbacks
        or stats.pool_rebuilds
        or stats.pool_fallbacks
        or stats.breaker_trips
    )
    if not noteworthy:
        return
    print(
        f"resilience: {stats.retries} retries, {stats.failures} failed points, "
        f"{stats.declined} declined, "
        f"{stats.timeouts} timeouts, {stats.batch_fallbacks} batch fallbacks, "
        f"{stats.pool_rebuilds} pool rebuilds, {stats.pool_fallbacks} pool "
        f"fallbacks, {stats.breaker_trips} breaker trips",
        file=sys.stderr,
    )


def _failures_from_args(args: argparse.Namespace) -> FailureSpec | None:
    """The CLI's failure spec, or ``None`` when every knob is at rest.

    Returning ``None`` for the failure-free default keeps scenario cache
    keys (and hence stored results) identical to runs that predate the
    failure knobs.
    """
    spec = FailureSpec(
        task_failure_rate=getattr(args, "failure_rate", 0.0),
        max_attempts=getattr(args, "max_attempts", 4),
        straggler_fraction=getattr(args, "straggler_frac", 0.0),
        straggler_slowdown=getattr(args, "straggler_slowdown", 2.5),
        node_failure_times=tuple(getattr(args, "node_failure_times", None) or ()),
        speculative=getattr(args, "speculative", False),
    )
    return None if spec.is_noop else spec


def _scenario_from_args(args: argparse.Namespace) -> Scenario:
    return Scenario(
        workload=args.workload,
        input_size_bytes=parse_size(args.input_size),
        block_size_bytes=parse_size(args.block_size),
        num_nodes=args.nodes,
        num_jobs=args.jobs,
        num_reduces=args.reduces,
        seed=args.seed,
        repetitions=getattr(args, "repetitions", 1),
        failures=_failures_from_args(args),
    )


def _command_list(_: argparse.Namespace) -> int:
    print("figures:")
    for figure_id, definition in sorted(FIGURE_DEFINITIONS.items()):
        print(f"  {figure_id}: {definition.description}")
    print("backends:")
    for name in backend_names():
        print(f"  {name}")
    print("workloads:")
    for name in sorted(WORKLOAD_PROFILES):
        print(f"  {name}")
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    service = _service_from_args(args, list(POINT_BACKENDS))
    series = run_figure(
        args.figure_id,
        repetitions=args.repetitions,
        base_seed=args.seed,
        service=service,
    )
    print(FIGURE_DEFINITIONS[args.figure_id].description)
    print(format_series_table(series.x_label, series.x_values, series.series()))
    if args.plot:
        print()
        print(ascii_series_plot(series.x_values, series.series()))
    for kind in (EstimatorKind.FORK_JOIN, EstimatorKind.TRIPATHI):
        errors = [abs(error) for error in series.errors(kind)]
        print(
            f"{kind.value}: mean |error| = {100 * sum(errors) / len(errors):.1f}%, "
            f"max |error| = {100 * max(errors):.1f}%"
        )
    _print_store_summary(args, service)
    return 0


def _command_predict(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    backends = args.backend or list(DEFAULT_PREDICT_BACKENDS)
    service = _service_from_args(args, backends)
    results = service.evaluate_many(scenario, backends)
    for name in backends:
        print(results[name].summary())
    _print_store_summary(args, service)
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    backends = args.backend or backend_names()
    service = _service_from_args(args, backends)
    names = list(backends)
    if args.baseline not in names:
        names = [args.baseline, *names]
    # Under a failure spec, backends that cannot model it decline rather
    # than crash or answer wrongly; render their rows as such instead of
    # aborting the whole comparison.  A declining *baseline* is still fatal
    # (there is nothing to compare against).
    declined: dict[str, str] = {}
    if scenario.failures is not None:
        kept = []
        for name in names:
            try:
                service.evaluate(scenario, name)  # cached for compare below
            except BackendCapabilityError as exc:
                if name == args.baseline:
                    raise
                declined[name] = str(exc)
            else:
                kept.append(name)
        names = kept
    comparison = service.compare(scenario, names, baseline=args.baseline)
    baseline = comparison.baseline_result()
    errors = comparison.relative_errors()
    print(f"scenario: {scenario.describe()}")
    print(f"{'backend':<14} {'total (s)':>10} {'vs ' + args.baseline:>12}")
    print(f"{args.baseline:<14} {baseline.total_seconds:>10.2f} {'—':>12}")
    for name in sorted(errors):
        total = comparison.results[name].total_seconds
        print(f"{name:<14} {total:>10.2f} {100 * errors[name]:>+11.1f}%")
    for name in sorted(declined):
        print(f"{name:<14} {'declined':>10} {'—':>12}")
    for name in sorted(declined):
        print(f"note: {name} declined: {declined[name]}", file=sys.stderr)
    _print_store_summary(args, service)
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    if args.suite == "-":
        text = sys.stdin.read()
    else:
        try:
            text = Path(args.suite).read_text()
        except OSError as exc:
            raise ValidationError(f"cannot read suite file {args.suite!r}: {exc}") from exc
    suite = ScenarioSuite.from_json(text)
    backends = args.backend or list(DEFAULT_SWEEP_BACKENDS)
    service = _service_from_args(args, backends, max_workers=args.max_workers)
    scheduler = SweepScheduler(service)
    if args.worker_id is not None:
        # Cooperative mode: claim points through the shared store's lease
        # namespace and drain the grid together with every peer process
        # pointed at the same --store path.
        if args.store is None:
            raise ValidationError("--worker-id requires --store (the shared store)")
        outcome = scheduler.run_cooperative(
            suite,
            backends,
            worker_id=args.worker_id,
            lease_ttl=args.lease_ttl,
            claim_limit=args.claim_limit,
        )
        print(outcome.plan.describe(), file=sys.stderr, flush=True)
        print(outcome.describe(), file=sys.stderr, flush=True)
    else:
        # Plan first and announce it *before* evaluating, then execute exactly
        # that plan: the stderr line reflects the final memory/store/miss
        # partition (probes included), and appears up front on long sweeps.
        plan = scheduler.plan(suite, backends)
        print(plan.describe(), file=sys.stderr, flush=True)
        outcome = scheduler.run(suite, backends, plan=plan)
    suite_result = outcome.result
    if args.json:
        # The shared envelope: the grid under "result", run accounting under
        # "metadata", structured failure rows under "failed" (they also stay
        # embedded in their grid cells for per-scenario context).
        failed = [
            {"scenario": index, "backend": name, **failure.to_dict()}
            for index, name, failure in suite_result.failures()
        ]
        metadata = {
            "total_points": outcome.plan.total_points,
            "cached": outcome.plan.cached_points,
            "evaluations": outcome.stats.evaluations,
        }
        print(_json_envelope(suite_result.to_dict(), metadata, failed))
        _print_store_summary(args, service)
        return 0
    print(f"suite: {suite.name} ({len(suite.scenarios)} scenarios)")
    header = f"{'scenario':<42}" + "".join(f"{name:>14}" for name in backends)
    print(header)
    for scenario, row in zip(suite.scenarios, suite_result.rows):
        cells = "".join(_sweep_cell(row, name) for name in backends)
        print(f"{scenario.describe():<42}{cells}")
    _print_store_summary(args, service)
    _print_resilience_summary(service)
    return 0


def _sweep_cell(row: dict, name: str) -> str:
    """One table cell: the estimate, or what happened to the point instead."""
    result = row.get(name)
    if result is None:
        return f"{'skipped':>14}"
    if not result.ok:
        return f"{'failed':>14}"
    return f"{result.total_seconds:>14.2f}"


def _parse_int_axis(text: str) -> tuple[int, ...]:
    """Parse an axis spec: ``A:B[:S]`` (inclusive range) or ``a,b,c``."""
    try:
        if ":" in text:
            parts = [int(part) for part in text.split(":")]
            if len(parts) not in (2, 3):
                raise ValueError("expected A:B or A:B:S")
            start, stop = parts[0], parts[1]
            step = parts[2] if len(parts) == 3 else 1
            values = tuple(range(start, stop + 1, step))
        else:
            values = tuple(int(part) for part in text.split(","))
    except ValueError as exc:
        raise ValidationError(f"invalid axis {text!r}: {exc}") from exc
    if not values:
        raise ValidationError(f"axis {text!r} names no values")
    return values


def _parse_size_axis(text: str) -> tuple[int, ...]:
    """Parse a comma list of sizes (``1GB,16GB,32GB``) into bytes."""
    return tuple(parse_size(part) for part in text.split(","))


def _plan_spec_from_args(args: argparse.Namespace) -> PlanSpec:
    scenario = _scenario_from_args(args)
    overrides: dict = {}
    if args.plan_nodes is not None:
        overrides["num_nodes"] = _parse_int_axis(args.plan_nodes)
    if args.plan_memory is not None:
        overrides["container_memory_bytes"] = _parse_size_axis(args.plan_memory)
    if args.plan_reduces is not None:
        overrides["num_reduces"] = _parse_int_axis(args.plan_reduces)
    space = (
        SearchSpace.for_workload(scenario.workload, **overrides)
        if overrides
        else None  # None = the workload profile's declared knobs
    )
    return PlanSpec(
        scenario=scenario,
        objective=Objective(kind=args.objective, node_cost_per_hour=args.node_cost),
        constraint=Constraint(
            deadline_seconds=args.deadline,
            budget=args.budget,
            memory_ceiling_bytes=(
                parse_size(args.memory_ceiling)
                if args.memory_ceiling is not None
                else None
            ),
        ),
        space=space,
        backend=args.plan_backend,
        confirm_backend=args.confirm_backend,
        surrogate=args.surrogate,
        max_evaluations=args.max_evaluations,
        coarse=args.coarse,
    )


def _command_plan(args: argparse.Namespace) -> int:
    spec = _plan_spec_from_args(args)
    backends = [spec.backend]
    if spec.confirm_backend is not None and spec.confirm_backend not in backends:
        backends.append(spec.confirm_backend)
    service = _service_from_args(args, backends)
    report = CapacityPlanner(service).plan(spec)
    if args.json:
        # PlanReport.to_dict() already is the result/metadata/failed envelope.
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_table())
    _print_store_summary(args, service)
    _print_resilience_summary(service)
    return 0 if report.feasible else 1


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import PredictionDaemon, ServeConfig

    backends = args.backend or backend_names()
    service = _service_from_args(args, backends)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        max_retries=args.max_retries,
        max_timeout=args.max_timeout,
    )
    daemon = PredictionDaemon(service, config)

    def announce() -> None:
        print(
            f"serving on http://{daemon.host}:{daemon.port}",
            file=sys.stderr,
            flush=True,
        )

    asyncio.run(daemon.run(ready=announce))
    stats = service.stats()
    print(
        f"drained: {stats.evaluations} evaluations, {stats.coalesced} coalesced, "
        f"{stats.memory_hits} cache hits, {stats.store_hits} store hits",
        file=sys.stderr,
    )
    return 0


def _command_dashboard(args: argparse.Namespace) -> int:
    backends = args.backend or list(DASHBOARD_BACKENDS)
    service = _service_from_args(args, backends, max_workers=args.max_workers)
    on_error = args.on_error
    if args.grid == "failure" and on_error == "raise":
        # Capability declines are expected on the failure grid (only the
        # simulator models every spec); record them as structured rows so
        # the sweep completes instead of aborting on the first decline.
        on_error = "record"
    run = run_dashboard(
        args.grid,
        backends=backends,
        service=service,
        repetitions=args.repetitions,
        base_seed=args.seed,
        evaluate=not args.no_evaluate,
        on_error=on_error,
    )
    report = run.report
    if run.outcome is not None:
        print(run.outcome.plan.describe(), file=sys.stderr)
        _print_resilience_summary(service)
    print(render_markdown(report))
    for line in render_jsonl(report).splitlines():
        print(f"{ARTIFACT_PREFIX} {line}")
    if args.output is not None:
        paths = write_artifacts(report, args.output)
        print(
            "artifacts: " + ", ".join(str(path) for path in paths.values()),
            file=sys.stderr,
        )
    _print_store_summary(args, service)
    if args.write_baseline is not None:
        baseline = baseline_from_report(
            report,
            tolerance_mean_abs=args.tolerance_mean,
            tolerance_max_abs=args.tolerance_max,
        )
        baseline.write(args.write_baseline)
        print(f"accuracy baseline written to {args.write_baseline}", file=sys.stderr)
        return 0
    if args.baseline is not None:
        baseline = AccuracyBaseline.load(args.baseline)
        violations = compare_to_baseline(report, baseline)
        if violations:
            for violation in violations:
                print(f"drift: {violation.describe()}", file=sys.stderr)
            print(
                f"accuracy gate FAILED against {args.baseline}: "
                f"{len(violations)} violation(s)",
                file=sys.stderr,
            )
            return 1
        print(f"accuracy gate passed against {args.baseline}", file=sys.stderr)
    return 0


def _command_store_gc(args: argparse.Namespace) -> int:
    store = open_store(args.path, format=args.store_format)
    stats = store.gc(
        ttl=args.ttl, max_records=args.max_records, dry_run=args.dry_run
    )
    if args.json:
        print(
            json.dumps(
                {
                    "store": str(store.path),
                    "format": store.format_name,
                    "examined": stats.examined,
                    "expired": stats.expired,
                    "stale": stats.stale,
                    "evicted": stats.evicted,
                    "corrupt": stats.corrupt,
                    "remaining": stats.remaining,
                    "leases_removed": stats.leases_removed,
                    "shards_removed": stats.shards_removed,
                    "reclaimed_bytes": stats.reclaimed_bytes,
                    "dry_run": stats.dry_run,
                }
            )
        )
    else:
        print(f"store {store.path} ({store.format_name}): {stats.describe()}")
    return 0


def _command_store_info(args: argparse.Namespace) -> int:
    store = open_store(args.path, format=args.store_format)
    stats = store.refresh()
    leases = store.lease_manager(worker_id="info").scan()
    live = sum(1 for info in leases if not info.expired())
    print(f"store:   {store.path}")
    print(f"format:  {store.format_name}")
    print(f"records: {stats.loaded} usable, {stats.stale} stale, {stats.corrupt} corrupt")
    print(f"leases:  {live} live, {len(leases) - live} expired")
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    workload = scenario.workload_spec()
    simulator = ClusterSimulator(
        scenario.cluster_config(),
        scenario.scheduler_config(),
        seed=scenario.seed,
        failures=scenario.failures,
    )
    for job_config in workload.job_configs():
        simulator.submit_job(job_config, workload.profile.simulator_profile())
    result = simulator.run()
    for trace in result.job_traces:
        print(
            f"job {trace.job_id}: response {trace.response_time:.1f}s "
            f"(maps {trace.num_maps}, reduces {trace.num_reduces}, "
            f"avg map {trace.average_map_duration():.1f}s)"
        )
    print(f"mean job response time: {result.mean_response_time:.1f}s")
    print(f"makespan: {result.makespan:.1f}s")
    print(f"data-local map fraction: {result.metrics.data_local_fraction:.2f}")
    if scenario.failures is not None:
        metrics = result.metrics
        print(
            f"failures: {metrics.task_failures} task failures, "
            f"{metrics.task_reexecutions} re-executions, "
            f"{metrics.node_failures} node failures "
            f"({metrics.containers_killed} containers killed, "
            f"{metrics.maps_invalidated} map outputs lost), "
            f"{metrics.speculative_launched} speculative launched "
            f"({metrics.speculative_wins} won)"
        )
    return 0


def _subparser(subparsers, name: str, **kwargs) -> argparse.ArgumentParser:
    """``add_parser`` with the defaults-announcing help formatter applied."""
    kwargs.setdefault("formatter_class", _DefaultsFormatter)
    return subparsers.add_parser(name, **kwargs)


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-hadoop2",
        description="MapReduce performance models for Hadoop 2.x (EDBT 2017) — reproduction",
        formatter_class=_DefaultsFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = _subparser(
        subparsers, "list", help="list available figures, backends, and workloads"
    )
    list_parser.set_defaults(handler=_command_list)

    figure_parser = _subparser(subparsers, "figure", help="regenerate one evaluation figure")
    figure_parser.add_argument("figure_id", choices=sorted(FIGURE_DEFINITIONS))
    figure_parser.add_argument("--repetitions", type=int, default=3)
    figure_parser.add_argument("--seed", type=int, default=1234)
    figure_parser.add_argument("--plot", action="store_true", help="print an ASCII plot")
    _add_service_arguments(figure_parser)
    figure_parser.set_defaults(handler=_command_figure)

    predict_parser = _subparser(
        subparsers, "predict", help="evaluate one scenario with selected backends"
    )
    _add_scenario_arguments(predict_parser)
    predict_parser.add_argument(
        "--backend",
        action="append",
        choices=backend_names(),
        help="backend to evaluate (repeatable; default: both MVA estimators)",
    )
    _add_service_arguments(predict_parser)
    predict_parser.set_defaults(handler=_command_predict)

    compare_parser = _subparser(
        subparsers, "compare", help="all backends side by side with relative errors"
    )
    _add_scenario_arguments(compare_parser)
    compare_parser.add_argument(
        "--backend",
        action="append",
        choices=backend_names(),
        help="backend to include (repeatable; default: all registered)",
    )
    compare_parser.add_argument(
        "--baseline",
        default="simulator",
        choices=backend_names(),
        help="baseline backend the errors are measured against",
    )
    _add_service_arguments(compare_parser)
    compare_parser.set_defaults(handler=_command_compare)

    sweep_parser = _subparser(
        subparsers, "sweep", help="evaluate a scenario-suite JSON file across backends"
    )
    sweep_parser.add_argument(
        "--suite", required=True, help="path to a ScenarioSuite JSON file ('-' for stdin)"
    )
    sweep_parser.add_argument(
        "--backend",
        action="append",
        choices=backend_names(),
        help="backend to evaluate (repeatable; default: simulator + both MVA estimators)",
    )
    sweep_parser.add_argument(
        "--max-workers", type=int, default=None, help="thread-pool size for the sweep"
    )
    sweep_parser.add_argument(
        "--json", action="store_true", help="print the full result grid as JSON"
    )
    sweep_parser.add_argument(
        "--worker-id",
        dest="worker_id",
        default=None,
        metavar="NAME",
        help="join the cooperative sweep fabric under this worker name "
        "(requires --store; peers sharing the store drain the grid "
        "together with zero duplicate evaluations)",
    )
    sweep_parser.add_argument(
        "--lease-ttl",
        dest="lease_ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="cooperative lease time-to-live: a crashed worker's claims "
        "expire after this long and are re-claimed by peers (default: 30)",
    )
    sweep_parser.add_argument(
        "--claim-limit",
        dest="claim_limit",
        type=int,
        default=None,
        metavar="N",
        help="claim at most N points per cooperative round (default: all "
        "available; small values load-balance a k-worker fabric)",
    )
    _add_service_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=_command_sweep)

    dashboard_parser = _subparser(
        subparsers, "dashboard",
        help="per-backend accuracy bands over a named grid, gated on a baseline",
    )
    dashboard_parser.add_argument(
        "--grid",
        default="smoke",
        choices=sorted(DASHBOARD_GRIDS),
        help="experiment grid to sweep (paper = union of the evaluation figures)",
    )
    dashboard_parser.add_argument(
        "--backend",
        action="append",
        choices=backend_names(),
        help="backend to include (repeatable; default: all six registered)",
    )
    dashboard_parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="committed accuracy-baseline.json to gate against "
        "(exit 1 when any backend's error band drifts beyond tolerance)",
    )
    dashboard_parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="re-baseline: snapshot this run's bands to PATH instead of gating",
    )
    dashboard_parser.add_argument(
        "--tolerance-mean",
        type=float,
        default=DEFAULT_MEAN_ABS_TOLERANCE,
        help="tolerated mean-|error| drift recorded by --write-baseline "
        "(error units; 0.02 = 2 percentage points)",
    )
    dashboard_parser.add_argument(
        "--tolerance-max",
        type=float,
        default=DEFAULT_MAX_ABS_TOLERANCE,
        help="tolerated max-|error| drift recorded by --write-baseline",
    )
    dashboard_parser.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="also write accuracy-dashboard.{jsonl,md,csv} artifacts to DIR",
    )
    dashboard_parser.add_argument(
        "--no-evaluate",
        action="store_true",
        help="never evaluate: build the dashboard from the cache/store only "
        "(missing backends degrade to 'incomplete')",
    )
    dashboard_parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="simulator repetitions per point (default: 1 for smoke, 3 for paper)",
    )
    dashboard_parser.add_argument("--seed", type=int, default=1234)
    dashboard_parser.add_argument(
        "--max-workers", type=int, default=None, help="thread-pool size for the sweep"
    )
    _add_service_arguments(dashboard_parser)
    dashboard_parser.set_defaults(handler=_command_dashboard)

    plan_parser = _subparser(
        subparsers, "plan",
        help="search for the best cluster under an objective and constraints "
        "(exit 1 when no candidate is feasible)",
    )
    _add_scenario_arguments(plan_parser)
    plan_parser.add_argument(
        "--objective",
        default="min-cost",
        choices=OBJECTIVE_KINDS,
        help="what the planner minimises",
    )
    plan_parser.add_argument(
        "--node-cost",
        dest="node_cost",
        type=float,
        default=1.0,
        metavar="RATE",
        help="price of one node for one hour (any currency; 1.0 = node-hours)",
    )
    plan_parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="feasible plans must predict a response time at or below this",
    )
    plan_parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="COST",
        help="feasible plans must cost at most this (in --node-cost units)",
    )
    plan_parser.add_argument(
        "--memory-ceiling",
        dest="memory_ceiling",
        default=None,
        metavar="SIZE",
        help="prune candidates asking for containers above this size (e.g. 16GB)",
    )
    plan_parser.add_argument(
        "--plan-nodes",
        dest="plan_nodes",
        default=None,
        metavar="A:B[:S]|a,b,c",
        help="cluster-size axis to search (default: the workload's declared knobs)",
    )
    plan_parser.add_argument(
        "--plan-memory",
        dest="plan_memory",
        default=None,
        metavar="SIZES",
        help="container-memory axis to search, comma-separated sizes "
        "(default: the workload's declared knobs)",
    )
    plan_parser.add_argument(
        "--plan-reduces",
        dest="plan_reduces",
        default=None,
        metavar="A:B[:S]|a,b,c",
        help="reduce-count axis to search (default: the workload's declared knobs)",
    )
    plan_parser.add_argument(
        "--plan-backend",
        dest="plan_backend",
        default="mva-forkjoin",
        choices=backend_names(),
        help="backend that evaluates search probes",
    )
    plan_parser.add_argument(
        "--confirm-backend",
        dest="confirm_backend",
        default=None,
        choices=backend_names(),
        help="re-evaluate the reported optimum with this backend "
        "(default: no separate confirmation)",
    )
    plan_parser.add_argument(
        "--surrogate",
        action="store_true",
        help="fit an interpolation surrogate after the coarse pass and let it "
        "nominate candidates (each confirmed by the real backend)",
    )
    plan_parser.add_argument(
        "--max-evaluations",
        dest="max_evaluations",
        type=int,
        default=64,
        metavar="N",
        help="hard ceiling on probe evaluations the search may spend",
    )
    plan_parser.add_argument(
        "--coarse",
        type=int,
        default=3,
        metavar="K",
        help="values per axis in the coarse pass (endpoints always included)",
    )
    plan_parser.add_argument(
        "--json",
        action="store_true",
        help="print the full plan report as a result/metadata/failed envelope",
    )
    _add_service_arguments(plan_parser)
    plan_parser.set_defaults(handler=_command_plan)

    serve_parser = _subparser(
        subparsers, "serve",
        help="run the prediction daemon (HTTP/JSON, admission control, "
        "request coalescing, streaming sweeps)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8571, help="bind port (0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--backend",
        action="append",
        choices=backend_names(),
        help="backend to serve (repeatable; default: all registered)",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        help="requests evaluated concurrently",
    )
    serve_parser.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="requests allowed to wait for a slot before 429s (0 = no queue)",
    )
    serve_parser.add_argument(
        "--max-retries",
        type=int,
        default=5,
        help="ceiling on per-request policy.retries",
    )
    serve_parser.add_argument(
        "--max-timeout",
        type=float,
        default=120.0,
        help="ceiling on per-request policy.timeout seconds",
    )
    _add_service_arguments(serve_parser)
    serve_parser.set_defaults(handler=_command_serve)

    store_parser = _subparser(
        subparsers, "store",
        help="maintain a persistent result store (gc, info)",
    )
    store_subparsers = store_parser.add_subparsers(dest="store_command", required=True)
    store_gc_parser = _subparser(
        store_subparsers, "gc",
        help="expire, evict, and compact store records; reap dead leases",
    )
    store_gc_parser.add_argument("path", help="store directory")
    store_gc_parser.add_argument(
        "--store-format",
        dest="store_format",
        default=None,
        choices=STORE_FORMATS,
        help="expected engine (default: detect from the directory layout)",
    )
    store_gc_parser.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="purge records older than this many seconds",
    )
    store_gc_parser.add_argument(
        "--max-records",
        dest="max_records",
        type=int,
        default=None,
        metavar="N",
        help="after expiry, evict the oldest records until at most N remain",
    )
    store_gc_parser.add_argument(
        "--dry-run",
        dest="dry_run",
        action="store_true",
        help="report what would be purged without deleting anything",
    )
    store_gc_parser.add_argument(
        "--json", action="store_true", help="print the gc stats as JSON"
    )
    store_gc_parser.set_defaults(handler=_command_store_gc)
    store_info_parser = _subparser(
        store_subparsers, "info", help="report a store's engine, record counts, and leases"
    )
    store_info_parser.add_argument("path", help="store directory")
    store_info_parser.add_argument(
        "--store-format",
        dest="store_format",
        default=None,
        choices=STORE_FORMATS,
        help="expected engine (default: detect from the directory layout)",
    )
    store_info_parser.set_defaults(handler=_command_store_info)

    # simulate is one seeded raw run (per-job traces), so --repetitions —
    # which only affects the simulator *backend*'s median-of-N — is omitted.
    simulate_parser = _subparser(subparsers, "simulate", help="run the YARN simulator")
    _add_scenario_arguments(simulate_parser, repetitions=False)
    simulate_parser.set_defaults(handler=_command_simulate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
