"""Iterative/ML-style application profile.

Iterative analytics (k-means, logistic regression, PageRank-style jobs run
one MapReduce round per iteration) look very different from the paper's
WordCount evaluation workload: each map task burns CPU recomputing
distances/gradients over its split but emits only tiny per-partition
aggregates, and the reduce side combines those aggregates into an updated
model that is smaller still.  The profile therefore pairs the heaviest
per-MiB map CPU cost in the registry with the lowest selectivities, plus a
larger fixed startup cost standing in for the per-iteration JVM spin-up and
model broadcast.

One :class:`~repro.api.Scenario` with this profile models a single
iteration; a full run is ``num_iterations`` identical scenarios, which is
exactly the shape the persistent result store de-duplicates.
"""

from __future__ import annotations

from .profiles import ApplicationProfile, register_plan_knobs

# CPU-bound maps with tiny aggregates: capacity planning trades cluster size
# against per-iteration cost, on a sparser grid (iterations amortise probes).
register_plan_knobs("iterative-ml", num_nodes=(2, 4, 8, 12, 16))


def iterative_profile(duration_cv: float = 0.3) -> ApplicationProfile:
    """An iterative/ML-style profile (CPU-bound maps, tiny aggregates out)."""
    return ApplicationProfile(
        name="iterative-ml",
        map_cpu_seconds_per_mib=0.55,
        reduce_cpu_seconds_per_mib=0.30,
        map_output_ratio=0.05,
        reduce_output_ratio=0.02,
        spill_write_factor=1.0,
        merge_write_factor=1.0,
        startup_cpu_seconds=3.0,
        duration_cv=duration_cv,
    )
