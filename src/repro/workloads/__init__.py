"""Workload definitions: application profiles and model-input builders.

This layer connects the three worlds of the reproduction:

* the **simulator** needs a :class:`~repro.config.JobConfig` plus a
  :class:`~repro.hadoop.job.JobResourceProfile` describing per-byte costs;
* the **analytic model** needs a :class:`~repro.core.parameters.ModelInput`
  with per-class service demands;
* the **static baselines** need Herodotou dataflow/cost statistics.

:class:`ApplicationProfile` bundles the per-byte costs of one application
(WordCount, TeraSort, Grep) and knows how to derive all three representations
consistently, so the model is evaluated on exactly the workload the simulator
executes — mirroring how the paper derives model inputs from job profiles of
the application it measures.
"""

from .profiles import ApplicationProfile, model_input_from_profile, model_input_from_trace
from .wordcount import wordcount_profile
from .terasort import terasort_profile
from .grep import grep_profile
from .iterative import iterative_profile
from .generators import WorkloadSpec, generate_concurrent_jobs, paper_cluster, paper_scheduler

__all__ = [
    "ApplicationProfile",
    "model_input_from_profile",
    "model_input_from_trace",
    "wordcount_profile",
    "terasort_profile",
    "grep_profile",
    "iterative_profile",
    "WorkloadSpec",
    "generate_concurrent_jobs",
    "paper_cluster",
    "paper_scheduler",
]
