"""Workload generators and the paper's cluster/scheduler configuration.

:func:`paper_cluster` builds the cluster configuration used by every
evaluation bench: nodes with the paper's hardware (2x Xeon E5-2630L v2,
128 GB RAM, one disk, gigabit Ethernet) and YARN settings that yield 8
concurrent 1-vcore containers per node.  :func:`generate_concurrent_jobs`
produces the "N identical WordCount jobs submitted together" workloads of
Section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ClusterConfig, ContainerSpec, JobConfig, NodeSpec, SchedulerConfig
from ..exceptions import ConfigurationError
from ..units import GiB, MiB
from .profiles import ApplicationProfile
from .wordcount import wordcount_profile

#: Concurrent containers per node used by the evaluation configuration.
PAPER_CONTAINERS_PER_NODE = 8


def paper_cluster(num_nodes: int) -> ClusterConfig:
    """Cluster configuration mirroring the paper's testbed (Section 5.1)."""
    node = NodeSpec(
        cpu_cores=12,
        memory_bytes=128 * GiB,
        disk_count=1,
        disk_bandwidth=150.0 * MiB,
        network_bandwidth=117.0 * MiB,
        cpu_speed_factor=1.0,
    )
    return ClusterConfig(
        num_nodes=num_nodes,
        node=node,
        map_container=ContainerSpec(memory_bytes=1 * GiB, vcores=1),
        reduce_container=ContainerSpec(memory_bytes=1 * GiB, vcores=1),
        yarn_memory_fraction=0.75,
        # 8 single-vcore containers per node: the vcore envelope is the
        # binding constraint, as on memory-rich nodes in practice.
        yarn_vcore_fraction=PAPER_CONTAINERS_PER_NODE / 12,
        num_racks=1,
    )


def paper_scheduler() -> SchedulerConfig:
    """Scheduler configuration assumed by the paper (Capacity, slow start 5 %)."""
    return SchedulerConfig(
        scheduler_name="capacity",
        slowstart_enabled=True,
        slowstart_completed_maps=0.05,
        respect_map_locality=True,
    )


@dataclass(frozen=True)
class WorkloadSpec:
    """A homogeneous multi-job workload specification."""

    profile: ApplicationProfile
    input_size_bytes: int
    block_size_bytes: int = 128 * MiB
    num_reduces: int = 4
    num_jobs: int = 1
    #: Inter-submission gap between consecutive jobs (0 = simultaneous).
    submission_gap_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.num_jobs <= 0:
            raise ConfigurationError("num_jobs must be positive")
        if self.submission_gap_seconds < 0:
            raise ConfigurationError("submission_gap_seconds must be non-negative")

    @classmethod
    def wordcount(
        cls,
        input_size_bytes: int,
        num_jobs: int = 1,
        block_size_bytes: int = 128 * MiB,
        num_reduces: int = 4,
        duration_cv: float = 0.3,
    ) -> "WorkloadSpec":
        """The paper's WordCount workload with ``num_jobs`` concurrent jobs."""
        return cls(
            profile=wordcount_profile(duration_cv=duration_cv),
            input_size_bytes=input_size_bytes,
            block_size_bytes=block_size_bytes,
            num_reduces=num_reduces,
            num_jobs=num_jobs,
        )

    def job_configs(self) -> list[JobConfig]:
        """One :class:`~repro.config.JobConfig` per concurrent job."""
        return generate_concurrent_jobs(
            self.profile,
            input_size_bytes=self.input_size_bytes,
            block_size_bytes=self.block_size_bytes,
            num_reduces=self.num_reduces,
            num_jobs=self.num_jobs,
            submission_gap_seconds=self.submission_gap_seconds,
        )


def generate_concurrent_jobs(
    profile: ApplicationProfile,
    input_size_bytes: int,
    block_size_bytes: int,
    num_reduces: int,
    num_jobs: int,
    submission_gap_seconds: float = 0.0,
) -> list[JobConfig]:
    """Create ``num_jobs`` identical jobs submitted ``submission_gap_seconds`` apart."""
    if num_jobs <= 0:
        raise ConfigurationError("num_jobs must be positive")
    return [
        profile.job_config(
            input_size_bytes=input_size_bytes,
            block_size_bytes=block_size_bytes,
            num_reduces=num_reduces,
            submission_time=index * submission_gap_seconds,
        )
        for index in range(num_jobs)
    ]
