"""Grep application profile.

Grep is map-heavy with a tiny intermediate result: the map function scans
every input byte but emits only matching records, so the shuffle and reduce
are almost free.  Used by examples to contrast against WordCount/TeraSort.
"""

from __future__ import annotations

from .profiles import ApplicationProfile, register_plan_knobs

# Map-heavy with a negligible shuffle: only the number of map slots (i.e.
# nodes) matters, so that is the only knob declared plannable.
register_plan_knobs("grep", num_nodes=tuple(range(2, 17, 2)))


def grep_profile(duration_cv: float = 0.3) -> ApplicationProfile:
    """A Grep-like profile (scan-heavy map, negligible shuffle)."""
    return ApplicationProfile(
        name="grep",
        map_cpu_seconds_per_mib=0.15,
        reduce_cpu_seconds_per_mib=0.02,
        map_output_ratio=0.01,
        reduce_output_ratio=1.0,
        spill_write_factor=1.0,
        merge_write_factor=1.0,
        startup_cpu_seconds=2.0,
        duration_cv=duration_cv,
    )
