"""Application profiles and model-input builders.

An :class:`ApplicationProfile` is the single source of truth for how much
CPU, disk and network work one byte of data costs for a given MapReduce
application.  From it we derive:

* the simulator's :class:`~repro.hadoop.job.JobResourceProfile`;
* the analytic model's :class:`~repro.core.parameters.ModelInput`
  (:func:`model_input_from_profile`);
* Herodotou dataflow/cost statistics
  (via :meth:`ApplicationProfile.herodotou_environment`).

Alternatively, :func:`model_input_from_trace` derives the model input from a
simulated (or recorded) :class:`~repro.hadoop.trace.JobTrace`, which mirrors
the paper's use of job-history profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import ClusterConfig, JobConfig
from ..core.parameters import ModelInput, TaskClass, TaskClassDemands
from ..exceptions import ConfigurationError
from ..hadoop.job import JobResourceProfile
from ..hadoop.tasks import StageKind, TaskType
from ..hadoop.trace import JobTrace
from ..static_models.herodotou import DataflowStatistics, HadoopEnvironment
from ..units import MiB


@dataclass(frozen=True)
class ApplicationProfile:
    """Per-byte resource costs and dataflow selectivities of one application."""

    name: str
    #: CPU core-seconds per MiB of map input.
    map_cpu_seconds_per_mib: float
    #: CPU core-seconds per MiB of reduce input.
    reduce_cpu_seconds_per_mib: float
    #: Map selectivity (map-output bytes per map-input byte).
    map_output_ratio: float
    #: Reduce selectivity (reduce-output bytes per reduce-input byte).
    reduce_output_ratio: float
    #: Local-disk write amplification of the map-side spill/merge.
    spill_write_factor: float = 1.5
    #: Local-disk traffic per reduce-input byte during the final merge.
    merge_write_factor: float = 1.0
    #: Fixed per-task CPU overhead, seconds.
    startup_cpu_seconds: float = 2.0
    #: Task-duration variability (log-normal CV) used by the simulator and as
    #: the default per-class CV of the analytic model.
    duration_cv: float = 0.3

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("profile name must be non-empty")
        for attribute in (
            "map_cpu_seconds_per_mib",
            "reduce_cpu_seconds_per_mib",
            "map_output_ratio",
            "reduce_output_ratio",
            "spill_write_factor",
            "merge_write_factor",
            "startup_cpu_seconds",
            "duration_cv",
        ):
            if getattr(self, attribute) < 0:
                raise ConfigurationError(f"{attribute} must be non-negative")

    # -- derived representations --------------------------------------------------

    def simulator_profile(self) -> JobResourceProfile:
        """The per-byte cost profile consumed by the YARN simulator."""
        return JobResourceProfile(
            map_cpu_seconds_per_mib=self.map_cpu_seconds_per_mib,
            reduce_cpu_seconds_per_mib=self.reduce_cpu_seconds_per_mib,
            spill_write_factor=self.spill_write_factor,
            merge_write_factor=self.merge_write_factor,
            startup_cpu_seconds=self.startup_cpu_seconds,
            duration_cv=self.duration_cv,
        )

    def job_config(
        self,
        input_size_bytes: int,
        block_size_bytes: int,
        num_reduces: int,
        submission_time: float = 0.0,
    ) -> JobConfig:
        """A :class:`~repro.config.JobConfig` for this application."""
        return JobConfig(
            name=self.name,
            input_size_bytes=input_size_bytes,
            block_size_bytes=block_size_bytes,
            num_reduces=num_reduces,
            map_output_ratio=self.map_output_ratio,
            reduce_output_ratio=self.reduce_output_ratio,
            submission_time=submission_time,
        )

    def herodotou_environment(self, cluster: ClusterConfig) -> HadoopEnvironment:
        """Herodotou cost statistics consistent with this profile and cluster."""
        return HadoopEnvironment.from_specs(
            node=cluster.node,
            profile=self.simulator_profile(),
            num_nodes=cluster.num_nodes,
            map_slots_per_node=cluster.maps_per_node(),
            reduce_slots_per_node=cluster.reduces_per_node(),
        )

    def herodotou_dataflow(self, job_config: JobConfig) -> DataflowStatistics:
        """Herodotou dataflow statistics of one job of this application."""
        return DataflowStatistics.from_job_config(job_config)

    def with_variability(self, duration_cv: float) -> "ApplicationProfile":
        """Copy of the profile with a different task-duration CV."""
        return replace(self, duration_cv=duration_cv)


#: Fallback plannable knobs for workloads that do not declare their own:
#: vary the cluster size over the paper's range, keep containers and reduce
#: counts at the scenario's values.
DEFAULT_PLAN_KNOBS: dict[str, tuple[int, ...]] = {
    "num_nodes": tuple(range(2, 17, 2)),
    "container_memory_bytes": (),
    "num_reduces": (),
}

_PLAN_KNOBS: dict[str, dict[str, tuple[int, ...]]] = {}

_PLAN_AXES = frozenset(DEFAULT_PLAN_KNOBS)


def register_plan_knobs(workload: str, **axes: tuple[int, ...]) -> None:
    """Declare the knobs the capacity planner may vary for ``workload``.

    Each keyword is an axis name (``num_nodes``, ``container_memory_bytes``
    or ``num_reduces``) mapped to the candidate values the planner should
    consider by default; omitted axes fall back to
    :data:`DEFAULT_PLAN_KNOBS`.  Like the profile registry, duplicate
    registrations are rejected so modules cannot silently shadow each
    other's declarations.
    """
    if workload in _PLAN_KNOBS:
        raise ConfigurationError(f"plan knobs for {workload!r} already registered")
    unknown = set(axes) - _PLAN_AXES
    if unknown:
        raise ConfigurationError(
            f"unknown plan axes {sorted(unknown)}; known: {sorted(_PLAN_AXES)}"
        )
    merged = dict(DEFAULT_PLAN_KNOBS)
    merged.update({name: tuple(values) for name, values in axes.items()})
    _PLAN_KNOBS[workload] = merged


def plan_knobs(workload: str) -> dict[str, tuple[int, ...]]:
    """The plannable knobs declared for ``workload`` (or the defaults)."""
    return dict(_PLAN_KNOBS.get(workload, DEFAULT_PLAN_KNOBS))


def model_input_from_profile(
    profile: ApplicationProfile,
    cluster: ClusterConfig,
    job_config: JobConfig,
    num_jobs: int = 1,
    slow_start: bool = True,
) -> ModelInput:
    """Build the analytic model input from first principles.

    The per-class service demands are the *uncontended* resource times of one
    task, computed with the same per-byte costs the simulator uses:

    * map — CPU for the map function, disk for reading the (data-local) split
      and writing the spills;
    * shuffle-sort — network for fetching the expected remote share of the
      reduce input, disk for writing the fetched segments;
    * merge — CPU for the final merge + reduce function, disk for the merge
      pass and the output write.
    """
    node = cluster.node
    split_bytes = job_config.split_size_bytes
    map_output = split_bytes * job_config.map_output_ratio
    total_map_output = job_config.input_size_bytes * job_config.map_output_ratio
    reduce_input = total_map_output / job_config.num_reduces
    reduce_output = reduce_input * job_config.reduce_output_ratio
    remote_fraction = (
        (cluster.num_nodes - 1) / cluster.num_nodes if cluster.num_nodes > 1 else 0.0
    )
    disk_bandwidth = node.disk_bandwidth * node.disk_count
    cv = max(profile.duration_cv, 0.05)

    map_demands = TaskClassDemands(
        cpu_seconds=profile.startup_cpu_seconds
        + profile.map_cpu_seconds_per_mib * (split_bytes / MiB) / node.cpu_speed_factor,
        disk_seconds=(split_bytes + map_output * profile.spill_write_factor) / disk_bandwidth,
        network_seconds=0.0,
        coefficient_of_variation=cv,
    )
    shuffle_demands = TaskClassDemands(
        cpu_seconds=0.0,
        disk_seconds=reduce_input / disk_bandwidth,
        network_seconds=reduce_input * remote_fraction / node.network_bandwidth,
        coefficient_of_variation=cv,
    )
    merge_demands = TaskClassDemands(
        cpu_seconds=profile.startup_cpu_seconds
        + profile.reduce_cpu_seconds_per_mib * (reduce_input / MiB) / node.cpu_speed_factor,
        disk_seconds=(reduce_input * profile.merge_write_factor + reduce_output)
        / disk_bandwidth,
        network_seconds=0.0,
        coefficient_of_variation=cv,
    )
    return ModelInput(
        num_nodes=cluster.num_nodes,
        cpu_per_node=cluster.yarn_vcores_per_node,
        disk_per_node=node.disk_count,
        max_maps_per_node=cluster.maps_per_node(),
        max_reduces_per_node=cluster.reduces_per_node(),
        num_jobs=num_jobs,
        num_maps=job_config.num_maps,
        num_reduces=job_config.num_reduces,
        demands={
            TaskClass.MAP: map_demands,
            TaskClass.SHUFFLE_SORT: shuffle_demands,
            TaskClass.MERGE: merge_demands,
        },
        slow_start=slow_start,
    )


def model_input_from_trace(
    trace: JobTrace,
    cluster: ClusterConfig,
    num_jobs: int = 1,
    slow_start: bool = True,
) -> ModelInput:
    """Build the analytic model input from a job-history trace.

    Mirrors the paper's profile-based initialisation: per-class service
    demands are the average busy times per resource observed in the trace and
    the per-class CVs are the observed coefficient of variation of the task
    durations.
    """
    map_traces = trace.map_traces()
    reduce_traces = trace.reduce_traces()
    if not map_traces or not reduce_traces:
        raise ConfigurationError("trace must contain map and reduce tasks")

    def cv_of(durations: list[float]) -> float:
        if len(durations) < 2:
            return 0.1
        mean = sum(durations) / len(durations)
        if mean <= 0:
            return 0.1
        variance = sum((value - mean) ** 2 for value in durations) / (len(durations) - 1)
        return max(0.05, variance**0.5 / mean)

    map_cv = cv_of([task.duration for task in map_traces])
    reduce_cv = cv_of([task.duration for task in reduce_traces])

    # The reduce busy times cover both subtasks; split them proportionally to
    # the observed shuffle-sort / merge wall-clock durations.
    shuffle_share_values = []
    for task in reduce_traces:
        total = task.shuffle_sort_duration + task.merge_duration
        shuffle_share_values.append(task.shuffle_sort_duration / total if total > 0 else 0.5)
    shuffle_share = sum(shuffle_share_values) / len(shuffle_share_values)

    reduce_cpu = trace.average_resource_seconds(TaskType.REDUCE, StageKind.CPU)
    reduce_disk = trace.average_resource_seconds(TaskType.REDUCE, StageKind.DISK)
    reduce_network = trace.average_resource_seconds(TaskType.REDUCE, StageKind.NETWORK)

    demands = {
        TaskClass.MAP: TaskClassDemands(
            cpu_seconds=trace.average_resource_seconds(TaskType.MAP, StageKind.CPU),
            disk_seconds=trace.average_resource_seconds(TaskType.MAP, StageKind.DISK),
            network_seconds=trace.average_resource_seconds(TaskType.MAP, StageKind.NETWORK),
            coefficient_of_variation=map_cv,
        ),
        TaskClass.SHUFFLE_SORT: TaskClassDemands(
            cpu_seconds=0.0,
            disk_seconds=reduce_disk * shuffle_share,
            network_seconds=reduce_network,
            coefficient_of_variation=reduce_cv,
        ),
        TaskClass.MERGE: TaskClassDemands(
            cpu_seconds=reduce_cpu,
            disk_seconds=reduce_disk * (1.0 - shuffle_share),
            network_seconds=0.0,
            coefficient_of_variation=reduce_cv,
        ),
    }
    return ModelInput(
        num_nodes=cluster.num_nodes,
        cpu_per_node=cluster.yarn_vcores_per_node,
        disk_per_node=cluster.node.disk_count,
        max_maps_per_node=cluster.maps_per_node(),
        max_reduces_per_node=cluster.reduces_per_node(),
        num_jobs=num_jobs,
        num_maps=trace.num_maps,
        num_reduces=trace.num_reduces,
        demands=demands,
        initial_response_times={
            TaskClass.MAP: trace.average_map_duration(),
            TaskClass.SHUFFLE_SORT: trace.average_shuffle_sort_duration(),
            TaskClass.MERGE: trace.average_merge_duration(),
        },
        slow_start=slow_start,
    )
