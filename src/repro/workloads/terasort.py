"""TeraSort application profile.

TeraSort is shuffle-heavy: every input byte is moved through the shuffle and
written back out (map and reduce selectivities of 1.0), with relatively cheap
map/reduce functions.  It is not part of the paper's evaluation but provides
a second, I/O-dominated workload for the examples and the extension benches.
"""

from __future__ import annotations

from .profiles import ApplicationProfile, register_plan_knobs

# Shuffle-heavy: reduce parallelism genuinely moves the makespan, so TeraSort
# declares it as a plannable knob alongside the cluster size.
register_plan_knobs(
    "terasort",
    num_nodes=tuple(range(2, 17, 2)),
    num_reduces=(4, 8, 16, 32),
)


def terasort_profile(duration_cv: float = 0.3) -> ApplicationProfile:
    """A TeraSort-like profile (selectivity 1.0, cheap CPU, heavy I/O)."""
    return ApplicationProfile(
        name="terasort",
        map_cpu_seconds_per_mib=0.05,
        reduce_cpu_seconds_per_mib=0.05,
        map_output_ratio=1.0,
        reduce_output_ratio=1.0,
        spill_write_factor=2.0,
        merge_write_factor=1.5,
        startup_cpu_seconds=2.0,
        duration_cv=duration_cv,
    )
