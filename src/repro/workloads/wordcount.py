"""WordCount application profile.

WordCount is the job the paper evaluates (Section 5): it is
"map-and-reduce-input heavy" — it reads large inputs and produces sizeable
intermediate data (roughly 40 % of the input with the default combiner), but
writes a comparatively small final output.  The per-MiB CPU costs were
calibrated so that, on the paper's node specification, a single 128 MiB map
task takes a few tens of seconds — the order of magnitude of WordCount map
tasks reported in the literature.
"""

from __future__ import annotations

from .profiles import ApplicationProfile, register_plan_knobs

# WordCount scales near-linearly with map slots, so cluster size is the one
# knob worth searching; the paper's evaluation range (plus headroom) bounds it.
register_plan_knobs("wordcount", num_nodes=tuple(range(2, 17, 2)))


def wordcount_profile(duration_cv: float = 0.3) -> ApplicationProfile:
    """The WordCount profile used throughout the evaluation benches."""
    return ApplicationProfile(
        name="wordcount",
        map_cpu_seconds_per_mib=0.22,
        reduce_cpu_seconds_per_mib=0.12,
        map_output_ratio=0.40,
        reduce_output_ratio=0.10,
        spill_write_factor=1.5,
        merge_write_factor=1.0,
        startup_cpu_seconds=2.0,
        duration_cv=duration_cv,
    )
