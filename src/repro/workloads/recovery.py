"""Failure-recovery scenario family.

A profile built for studying failure injection: shuffle-heavy enough that
lost map output visibly stalls reducers (making node-failure recovery a
first-order effect), with moderate per-MiB costs so re-executed attempts
dominate the runtime delta rather than drowning in CPU noise.

``duration_cv`` defaults to 0 — deliberately.  The failure model supplies
its own, *seeded and attempt-keyed*, variability (stragglers, failure
points), so zeroing the log-normal stage jitter makes the clean run fully
deterministic and every failure effect strictly additive.  That is what
gives the monotonicity guarantee tested by the failure suite: any non-zero
:class:`~repro.config.FailureSpec` can only add work or delay.
"""

from __future__ import annotations

from .profiles import ApplicationProfile, register_plan_knobs

# Recovery studies sweep modest clusters: beyond ~12 nodes a single node
# failure stops being a first-order effect, so the declared grid stays small.
register_plan_knobs("failure-recovery", num_nodes=(2, 4, 6, 8, 10, 12))


def recovery_profile(duration_cv: float = 0.0) -> ApplicationProfile:
    """The failure-recovery profile (shuffle-heavy, jitter-free by default)."""
    return ApplicationProfile(
        name="failure-recovery",
        map_cpu_seconds_per_mib=0.30,
        reduce_cpu_seconds_per_mib=0.22,
        map_output_ratio=0.6,
        reduce_output_ratio=0.15,
        spill_write_factor=1.3,
        merge_write_factor=1.0,
        startup_cpu_seconds=2.0,
        duration_cv=duration_cv,
    )
