"""Store-aware sweep scheduling: evaluate only the missing grid points.

A parameter sweep is a :class:`~repro.api.scenario.ScenarioSuite` × a set of
backends.  With a persistent :class:`~repro.api.store.ResultStore` attached
to the service, most of a re-run (or a resumed, previously interrupted run)
is already answered on disk; the :class:`SweepScheduler` makes that explicit:

* :meth:`SweepScheduler.plan` partitions the target grid into memory hits,
  store hits, and missing ``(scenario, backend)`` points — without
  evaluating anything (the store is bulk-probed with
  :meth:`~repro.api.store.ResultStore.get_many`, one directory listing per
  shard);
* :meth:`SweepScheduler.run` executes the plan through
  :meth:`~repro.api.service.PredictionService.evaluate_suite` — cached
  points replay from memory/store, missing points fan out per the service's
  execution mode with batch-capable backends dispatched in one
  ``predict_batch`` call — and reports what was actually evaluated.

Interrupting a store-backed sweep and re-running it therefore re-executes
only the remainder: every completed point was persisted when it finished.

:meth:`SweepScheduler.run_cooperative` extends the same resume contract to
*k concurrent workers* draining one grid against one shared store: each
worker claims points through the store's lease namespace
(:mod:`repro.api.store.leases`) before evaluating them, heartbeats its
claims while it works, and re-plans after each drained batch.  A crashed
worker's leases expire and its points are re-claimed by the survivors, so
the grid always completes — with zero duplicate evaluations among live
workers.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field

from ..exceptions import ValidationError
from .resilience import RetryPolicy
from .results import FailedResult, PredictionResult
from .scenario import ScenarioSuite
from .service import PredictionService, ServiceStats, SuiteResult
from .store.leases import LeaseManager

#: One sweep point: (scenario index in the suite, backend name).
SweepPoint = tuple[int, str]


@dataclass(frozen=True)
class SweepPlan:
    """Partition of a sweep grid by where each point's answer will come from."""

    suite: ScenarioSuite
    backends: tuple[str, ...]
    #: Points answered by the service's in-memory cache.
    memory_hits: tuple[SweepPoint, ...]
    #: Points answered by the persistent result store.
    store_hits: tuple[SweepPoint, ...]
    #: Points that must actually be evaluated.
    missing: tuple[SweepPoint, ...]
    #: Missing points currently claimed by a *live peer worker* (populated
    #: only when :meth:`SweepScheduler.plan` is given a lease manager); they
    #: are excluded from :attr:`missing` — a cooperative worker neither
    #: evaluates nor waits on a point a peer is already computing.
    leased: tuple[SweepPoint, ...] = field(default=())

    @property
    def total_points(self) -> int:
        """Number of (scenario, backend) points in the grid."""
        return len(self.suite.scenarios) * len(self.backends)

    @property
    def cached_points(self) -> int:
        """Points that will replay from memory or store."""
        return len(self.memory_hits) + len(self.store_hits)

    def describe(self) -> str:
        """One-line human-readable plan summary.

        Reports where every already-answered point comes from — memory hits
        and store hits separately, not just the missing-point count — so a
        resumed sweep's log shows how much the persistent store saved.
        Points leased to live peer workers are reported when a cooperative
        plan found any.
        """
        leased = f", {len(self.leased)} leased to peers" if self.leased else ""
        return (
            f"sweep {self.suite.name!r}: {self.total_points} points "
            f"({len(self.suite.scenarios)} scenarios x {len(self.backends)} backends), "
            f"{len(self.memory_hits)} memory hits, {len(self.store_hits)} store hits, "
            f"{len(self.missing)} to evaluate{leased}"
        )


@dataclass(frozen=True)
class SweepOutcome:
    """Result of one scheduled sweep run."""

    plan: SweepPlan
    result: SuiteResult
    #: Service counters accumulated by this run (after minus before).
    #: Exact for a service driven by one sweep at a time — the CLI and the
    #: experiment runner; a service shared by *concurrent* sweep runs
    #: interleaves counter updates between the two snapshots, so these
    #: deltas then include the other runs' work (use :attr:`plan` for the
    #: per-run intent in that case).
    stats: ServiceStats

    @property
    def evaluated_points(self) -> int:
        """Backend evaluations this run actually performed."""
        return self.stats.evaluations


@dataclass(frozen=True)
class CooperativeOutcome(SweepOutcome):
    """One worker's share of a cooperatively drained sweep.

    :attr:`SweepOutcome.result` holds the *complete* grid (replayed from the
    shared store after the drain), while the counters below describe what
    this worker itself did — summed across workers, ``evaluated`` equals the
    number of unique missing points when no worker crashed mid-claim.
    """

    worker_id: str = "?"
    #: Plan → claim → evaluate → release cycles this worker ran.
    rounds: int = 0
    #: Leases this worker won (including points that then failed).
    claimed: int = 0
    #: Points this worker successfully evaluated.
    evaluated: int = 0
    #: Rounds spent sleeping because live peers held every remaining point.
    waits: int = 0
    #: Points that failed terminally for this worker (not re-claimed by it).
    failed: int = 0
    #: Leases this worker lost to peer takeover (it stalled past the TTL).
    lost: int = 0

    def describe(self) -> str:
        """One-line summary of this worker's share of the sweep."""
        return (
            f"worker {self.worker_id!r}: {self.evaluated} evaluated of "
            f"{self.claimed} claimed over {self.rounds} round(s), "
            f"{self.waits} wait(s), {self.failed} failed, {self.lost} lease(s) lost"
        )


class SweepScheduler:
    """Plan and run sweeps against a (possibly store-backed) service."""

    def __init__(self, service: PredictionService) -> None:
        self._service = service

    @property
    def service(self) -> PredictionService:
        """The prediction service executing the sweeps."""
        return self._service

    def _resolve_backends(self, backends: Sequence[str] | None) -> tuple[str, ...]:
        return (
            tuple(backends) if backends is not None else tuple(self._service.backends())
        )

    def plan(
        self,
        suite: ScenarioSuite,
        backends: Sequence[str] | None = None,
        leases: LeaseManager | None = None,
    ) -> SweepPlan:
        """Compute which points of ``suite`` × ``backends`` still need work.

        Purely a read: probes the service cache and bulk-probes the store,
        evaluates nothing, and leaves the service's hit counters untouched.
        Duplicate scenarios share one underlying point; every (scenario
        index, backend) pair is still reported so the plan's point counts
        match the grid the caller asked for.

        With ``leases`` (a cooperative worker's manager), missing points
        whose lease is currently held by a *live peer* move to
        :attr:`SweepPlan.leased` — advisory only; the atomic claim still
        happens through :meth:`~repro.api.store.leases.LeaseManager.try_claim`
        at evaluation time.
        """
        names = self._resolve_backends(backends)
        keys = [scenario.cache_key() for scenario in suite.scenarios]
        unique_points = list(
            dict.fromkeys((key, name) for key in keys for name in names)
        )
        sources = self._service.probe_points(unique_points)
        memory: list[SweepPoint] = []
        stored: list[SweepPoint] = []
        missing: list[SweepPoint] = []
        leased: list[SweepPoint] = []
        peer_held: dict[tuple[str, str], bool] = {}
        if leases is not None:
            now = time.time()
            for key, name in unique_points:
                if (key, name) in sources:
                    continue
                info = leases.read(self._service.point_token(key, name))
                peer_held[(key, name)] = (
                    info is not None
                    and not info.expired(now)
                    and info.worker != leases.worker_id
                )
        for index, key in enumerate(keys):
            for name in names:
                point = (index, name)
                source = sources.get((key, name))
                if source == "memory":
                    memory.append(point)
                elif source == "store":
                    stored.append(point)
                elif peer_held.get((key, name)):
                    leased.append(point)
                else:
                    missing.append(point)
        return SweepPlan(
            suite=suite,
            backends=names,
            memory_hits=tuple(memory),
            store_hits=tuple(stored),
            missing=tuple(missing),
            leased=tuple(leased),
        )

    def run(
        self,
        suite: ScenarioSuite,
        backends: Sequence[str] | None = None,
        on_error: str | None = None,
        plan: SweepPlan | None = None,
    ) -> SweepOutcome:
        """Plan, then evaluate — completed points replay, the rest execute.

        Re-running after an interruption (with a store attached) resumes the
        sweep: the plan shrinks to the unfinished remainder and only those
        points are evaluated.  That resume contract also covers *failing*
        runs: every completed point is persisted the moment it finishes, so
        an exception escaping mid-run (``on_error="raise"``, the default)
        loses only the failing points.  ``on_error="skip"`` / ``"record"``
        instead finish the sweep with partial rows (see
        :meth:`~repro.api.service.PredictionService.evaluate_suite`).

        ``plan`` short-circuits the probe: a caller that already computed
        (and, say, printed) the plan passes it in, so what was announced is
        exactly what executes — no second store probe between the two.
        """
        if plan is None:
            plan = self.plan(suite, backends)
        before = self._service.stats()
        result = self._service.evaluate_suite(suite, plan.backends, on_error=on_error)
        after = self._service.stats()
        return SweepOutcome(plan=plan, result=result, stats=after.delta(before))

    def run_cooperative(
        self,
        suite: ScenarioSuite,
        backends: Sequence[str] | None = None,
        *,
        worker_id: str,
        lease_ttl: float | None = None,
        on_error: str | None = None,
        poll_interval: float | None = None,
        claim_limit: int | None = None,
    ) -> "CooperativeOutcome":
        """Drain the grid cooperatively with every peer sharing the store.

        The worker loops *plan → claim → evaluate → release* until nothing
        is left: each round it re-plans against the shared store (points
        peers completed since the last round become store hits), atomically
        claims a batch of unanswered points through the lease namespace,
        evaluates exactly the points it won, and releases each claim only
        after the result is durably in the store.  A background heartbeat
        renews held claims, so one slow evaluation cannot silently expire
        its own lease; when every remaining point is leased to live peers
        the worker sleeps ``poll_interval`` (default ``lease_ttl / 10``) and
        re-plans — a *crashed* peer's claims expire within one TTL and are
        taken over, so the sweep always completes.

        ``claim_limit`` caps how many points one round may claim.  Without
        it the first worker to plan claims every unanswered point (claims
        are cheap file creates, far faster than evaluations), which leaves
        late-starting peers nothing to do; with ``claim_limit=n`` each
        worker takes at most ``n`` points per round and re-plans, so a
        k-worker fabric load-balances at the cost of one extra plan per
        batch.

        Requires a store-backed service (the store carries both the results
        and the claim namespace).  Under ``on_error="skip"``/``"record"``
        a point that fails terminally never reaches the store; such points
        are remembered locally and not re-claimed, so a failing backend
        cannot livelock the loop.  The returned outcome replays the full
        grid (one final :meth:`~PredictionService.evaluate_suite`, all store
        hits) and reports this worker's share of the work.
        """
        if self._service.store is None:
            raise ValidationError(
                "cooperative sweeps require a store-backed service "
                "(the store carries the results and the claim namespace)"
            )
        leases = self._service.store.lease_manager(worker_id, ttl=lease_ttl)
        wait = poll_interval if poll_interval is not None else leases.ttl / 10.0
        if wait <= 0:
            raise ValidationError(f"poll_interval must be positive, got {wait}")
        if claim_limit is not None and claim_limit < 1:
            raise ValidationError(f"claim_limit must be at least 1, got {claim_limit}")
        before = self._service.stats()
        failed_locally: set[SweepPoint] = set()
        claimed = evaluated = released = waits = rounds = 0
        keys = [scenario.cache_key() for scenario in suite.scenarios]
        with leases.heartbeat():
            try:
                while True:
                    rounds += 1
                    plan = self.plan(suite, backends, leases=leases)
                    todo = [p for p in plan.missing if p not in failed_locally]
                    if not todo and not plan.leased:
                        break  # grid complete (or only locally-failed points left)
                    won: list[SweepPoint] = []
                    for index, name in todo:
                        if claim_limit is not None and len(won) >= claim_limit:
                            break
                        token = self._service.point_token(keys[index], name)
                        if not leases.try_claim(token):
                            continue
                        if (keys[index], name) in self._service.probe_points(
                            [(keys[index], name)]
                        ):
                            # A peer answered this point in the plan→claim
                            # window (it claimed, evaluated, persisted, and
                            # released while our plan was in flight).  Peers
                            # persist *before* releasing, so holding the
                            # lease makes this probe definitive: yield the
                            # point back instead of counting it as our work.
                            leases.release(token)
                            continue
                        won.append((index, name))
                    claimed += len(won)
                    if not won:
                        # Everything unanswered is leased to live peers:
                        # wait for them to finish (or their leases to
                        # expire) and re-plan.
                        waits += 1
                        time.sleep(wait)
                        continue
                    for index, name in won:
                        token = self._service.point_token(keys[index], name)
                        try:
                            outcome = self._service.evaluate_point(
                                suite.scenarios[index], name, on_error=on_error
                            )
                        finally:
                            # Success is durably in the store before this
                            # release (evaluate_point persists on completion);
                            # on failure the release lets a peer retry the
                            # point — this worker won't (failed_locally).
                            leases.release(token)
                            released += 1
                        if outcome is None or not outcome.ok:
                            failed_locally.add((index, name))
                        else:
                            evaluated += 1
            finally:
                leases.release_all()
        result = self._service.evaluate_suite(suite, plan.backends, on_error=on_error)
        after = self._service.stats()
        return CooperativeOutcome(
            plan=plan,
            result=result,
            stats=after.delta(before),
            worker_id=worker_id,
            rounds=rounds,
            claimed=claimed,
            evaluated=evaluated,
            waits=waits,
            failed=len(failed_locally),
            lost=len(leases.lost),
        )

    def iter_results(
        self,
        suite: ScenarioSuite,
        backends: Sequence[str] | None = None,
        *,
        on_error: str | None = None,
        plan: SweepPlan | None = None,
        max_workers: int | None = None,
        retry: "RetryPolicy | int | None" = None,
        timeout: float | None = None,
    ) -> Iterator[tuple[int, str, "PredictionResult | FailedResult | None"]]:
        """Stream the sweep: yield each point the moment its answer exists.

        Yields ``(scenario index, backend, result)`` tuples — first every
        already-answered point (memory/store hits replay instantly), then
        the missing points in *completion* order, evaluated concurrently on
        a private thread pool.  This is the serving layer's sweep path: an
        HTTP client sees points arrive incrementally instead of waiting for
        the whole grid.

        Points that fail terminally follow ``on_error`` exactly as
        :meth:`~repro.api.service.PredictionService.evaluate_point` does
        (``"skip"`` yields ``None``, ``"record"`` yields a
        :class:`~repro.api.results.FailedResult`, ``"raise"`` propagates).
        ``retry`` / ``timeout`` are per-call policy overrides.  Closing the
        generator early (a disconnected client) cancels the not-yet-started
        points and waits for in-flight ones — each of those still records to
        cache and store, so an abandoned sweep leaves the store consistent
        and a re-run resumes from what completed.
        """
        if plan is None:
            plan = self.plan(suite, backends)
        for index, name in (*plan.memory_hits, *plan.store_hits):
            yield (
                index,
                name,
                self._service.evaluate(
                    suite.scenarios[index], name, retry=retry, timeout=timeout
                ),
            )
        missing = list(plan.missing)
        if not missing:
            return
        workers = max_workers or min(len(missing), os.cpu_count() or 2)
        executor = ThreadPoolExecutor(max_workers=max(1, workers))
        try:
            futures = {
                executor.submit(
                    self._service.evaluate_point,
                    suite.scenarios[index],
                    name,
                    on_error=on_error,
                    retry=retry,
                    timeout=timeout,
                ): (index, name)
                for index, name in missing
            }
            for future in as_completed(futures):
                index, name = futures[future]
                yield index, name, future.result()
        finally:
            # On normal exhaustion this is a no-op; on early close or a
            # raising point it cancels the queued remainder and waits for
            # in-flight evaluations (which persist their results) to finish.
            executor.shutdown(wait=True, cancel_futures=True)
