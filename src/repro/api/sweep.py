"""Store-aware sweep scheduling: evaluate only the missing grid points.

A parameter sweep is a :class:`~repro.api.scenario.ScenarioSuite` × a set of
backends.  With a persistent :class:`~repro.api.store.ResultStore` attached
to the service, most of a re-run (or a resumed, previously interrupted run)
is already answered on disk; the :class:`SweepScheduler` makes that explicit:

* :meth:`SweepScheduler.plan` partitions the target grid into memory hits,
  store hits, and missing ``(scenario, backend)`` points — without
  evaluating anything (the store is bulk-probed with
  :meth:`~repro.api.store.ResultStore.get_many`, one directory listing per
  shard);
* :meth:`SweepScheduler.run` executes the plan through
  :meth:`~repro.api.service.PredictionService.evaluate_suite` — cached
  points replay from memory/store, missing points fan out per the service's
  execution mode with batch-capable backends dispatched in one
  ``predict_batch`` call — and reports what was actually evaluated.

Interrupting a store-backed sweep and re-running it therefore re-executes
only the remainder: every completed point was persisted when it finished.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass

from .resilience import RetryPolicy
from .results import FailedResult, PredictionResult
from .scenario import ScenarioSuite
from .service import PredictionService, ServiceStats, SuiteResult

#: One sweep point: (scenario index in the suite, backend name).
SweepPoint = tuple[int, str]


@dataclass(frozen=True)
class SweepPlan:
    """Partition of a sweep grid by where each point's answer will come from."""

    suite: ScenarioSuite
    backends: tuple[str, ...]
    #: Points answered by the service's in-memory cache.
    memory_hits: tuple[SweepPoint, ...]
    #: Points answered by the persistent result store.
    store_hits: tuple[SweepPoint, ...]
    #: Points that must actually be evaluated.
    missing: tuple[SweepPoint, ...]

    @property
    def total_points(self) -> int:
        """Number of (scenario, backend) points in the grid."""
        return len(self.suite.scenarios) * len(self.backends)

    @property
    def cached_points(self) -> int:
        """Points that will replay from memory or store."""
        return len(self.memory_hits) + len(self.store_hits)

    def describe(self) -> str:
        """One-line human-readable plan summary.

        Reports where every already-answered point comes from — memory hits
        and store hits separately, not just the missing-point count — so a
        resumed sweep's log shows how much the persistent store saved.
        """
        return (
            f"sweep {self.suite.name!r}: {self.total_points} points "
            f"({len(self.suite.scenarios)} scenarios x {len(self.backends)} backends), "
            f"{len(self.memory_hits)} memory hits, {len(self.store_hits)} store hits, "
            f"{len(self.missing)} to evaluate"
        )


@dataclass(frozen=True)
class SweepOutcome:
    """Result of one scheduled sweep run."""

    plan: SweepPlan
    result: SuiteResult
    #: Service counters accumulated by this run (after minus before).
    #: Exact for a service driven by one sweep at a time — the CLI and the
    #: experiment runner; a service shared by *concurrent* sweep runs
    #: interleaves counter updates between the two snapshots, so these
    #: deltas then include the other runs' work (use :attr:`plan` for the
    #: per-run intent in that case).
    stats: ServiceStats

    @property
    def evaluated_points(self) -> int:
        """Backend evaluations this run actually performed."""
        return self.stats.evaluations


class SweepScheduler:
    """Plan and run sweeps against a (possibly store-backed) service."""

    def __init__(self, service: PredictionService) -> None:
        self._service = service

    @property
    def service(self) -> PredictionService:
        """The prediction service executing the sweeps."""
        return self._service

    def _resolve_backends(self, backends: Sequence[str] | None) -> tuple[str, ...]:
        return (
            tuple(backends) if backends is not None else tuple(self._service.backends())
        )

    def plan(
        self, suite: ScenarioSuite, backends: Sequence[str] | None = None
    ) -> SweepPlan:
        """Compute which points of ``suite`` × ``backends`` still need work.

        Purely a read: probes the service cache and bulk-probes the store,
        evaluates nothing, and leaves the service's hit counters untouched.
        Duplicate scenarios share one underlying point; every (scenario
        index, backend) pair is still reported so the plan's point counts
        match the grid the caller asked for.
        """
        names = self._resolve_backends(backends)
        keys = [scenario.cache_key() for scenario in suite.scenarios]
        unique_points = list(
            dict.fromkeys((key, name) for key in keys for name in names)
        )
        sources = self._service.probe_points(unique_points)
        memory: list[SweepPoint] = []
        stored: list[SweepPoint] = []
        missing: list[SweepPoint] = []
        for index, key in enumerate(keys):
            for name in names:
                point = (index, name)
                source = sources.get((key, name))
                if source == "memory":
                    memory.append(point)
                elif source == "store":
                    stored.append(point)
                else:
                    missing.append(point)
        return SweepPlan(
            suite=suite,
            backends=names,
            memory_hits=tuple(memory),
            store_hits=tuple(stored),
            missing=tuple(missing),
        )

    def run(
        self,
        suite: ScenarioSuite,
        backends: Sequence[str] | None = None,
        on_error: str | None = None,
        plan: SweepPlan | None = None,
    ) -> SweepOutcome:
        """Plan, then evaluate — completed points replay, the rest execute.

        Re-running after an interruption (with a store attached) resumes the
        sweep: the plan shrinks to the unfinished remainder and only those
        points are evaluated.  That resume contract also covers *failing*
        runs: every completed point is persisted the moment it finishes, so
        an exception escaping mid-run (``on_error="raise"``, the default)
        loses only the failing points.  ``on_error="skip"`` / ``"record"``
        instead finish the sweep with partial rows (see
        :meth:`~repro.api.service.PredictionService.evaluate_suite`).

        ``plan`` short-circuits the probe: a caller that already computed
        (and, say, printed) the plan passes it in, so what was announced is
        exactly what executes — no second store probe between the two.
        """
        if plan is None:
            plan = self.plan(suite, backends)
        before = self._service.stats()
        result = self._service.evaluate_suite(suite, plan.backends, on_error=on_error)
        after = self._service.stats()
        return SweepOutcome(plan=plan, result=result, stats=after.delta(before))

    def iter_results(
        self,
        suite: ScenarioSuite,
        backends: Sequence[str] | None = None,
        *,
        on_error: str | None = None,
        plan: SweepPlan | None = None,
        max_workers: int | None = None,
        retry: "RetryPolicy | int | None" = None,
        timeout: float | None = None,
    ) -> Iterator[tuple[int, str, "PredictionResult | FailedResult | None"]]:
        """Stream the sweep: yield each point the moment its answer exists.

        Yields ``(scenario index, backend, result)`` tuples — first every
        already-answered point (memory/store hits replay instantly), then
        the missing points in *completion* order, evaluated concurrently on
        a private thread pool.  This is the serving layer's sweep path: an
        HTTP client sees points arrive incrementally instead of waiting for
        the whole grid.

        Points that fail terminally follow ``on_error`` exactly as
        :meth:`~repro.api.service.PredictionService.evaluate_point` does
        (``"skip"`` yields ``None``, ``"record"`` yields a
        :class:`~repro.api.results.FailedResult`, ``"raise"`` propagates).
        ``retry`` / ``timeout`` are per-call policy overrides.  Closing the
        generator early (a disconnected client) cancels the not-yet-started
        points and waits for in-flight ones — each of those still records to
        cache and store, so an abandoned sweep leaves the store consistent
        and a re-run resumes from what completed.
        """
        if plan is None:
            plan = self.plan(suite, backends)
        for index, name in (*plan.memory_hits, *plan.store_hits):
            yield (
                index,
                name,
                self._service.evaluate(
                    suite.scenarios[index], name, retry=retry, timeout=timeout
                ),
            )
        missing = list(plan.missing)
        if not missing:
            return
        workers = max_workers or min(len(missing), os.cpu_count() or 2)
        executor = ThreadPoolExecutor(max_workers=max(1, workers))
        try:
            futures = {
                executor.submit(
                    self._service.evaluate_point,
                    suite.scenarios[index],
                    name,
                    on_error=on_error,
                    retry=retry,
                    timeout=timeout,
                ): (index, name)
                for index, name in missing
            }
            for future in as_completed(futures):
                index, name = futures[future]
                yield index, name, future.result()
        finally:
            # On normal exhaustion this is a no-op; on early close or a
            # raising point it cancels the queued remainder and waits for
            # in-flight evaluations (which persist their results) to finish.
            executor.shutdown(wait=True, cancel_futures=True)
