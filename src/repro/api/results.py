"""Uniform prediction results returned by every backend.

Each backend — analytic, static, or simulated — answers a scenario with the
same :class:`PredictionResult` shape: the total job response-time estimate in
seconds, a per-phase breakdown (phase name → seconds), and a free-form
metadata dictionary with backend-specific diagnostics (iteration counts,
bounds, per-repetition means, ...).  The shared shape is what makes
side-by-side comparison and caching possible.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, ClassVar

from ..analysis.errors import relative_error
from ..exceptions import ValidationError
from .scenario import Scenario


def _json_normalise(value: Any) -> Any:
    """Deep-convert containers to their JSON shapes (tuples become lists).

    Results travel through JSON twice — the persistent store and the
    process-pool round-trip — so the in-memory representation must already be
    JSON-canonical or a freshly computed result would compare unequal to the
    same result read back from disk.
    """
    if isinstance(value, Mapping):
        return {str(key): _json_normalise(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_normalise(item) for item in value]
    return value


@dataclass(frozen=True)
class PredictionResult:
    """Outcome of evaluating one scenario with one backend."""

    #: Successful results answer ``True``; :class:`FailedResult` answers
    #: ``False``.  Grid consumers use this to keep mixed rows structural.
    ok: ClassVar[bool] = True

    backend: str
    scenario: Scenario
    total_seconds: float
    #: Per-phase breakdown, e.g. ``{"map": 41.2, "shuffle-sort": 12.9, ...}``.
    phases: Mapping[str, float] = field(default_factory=dict)
    #: Backend-specific diagnostics (iterations, bounds, repetition means, ...).
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Results are shared through the service cache: freeze the mappings so
        # a caller's mutation cannot poison later cache hits.
        object.__setattr__(self, "phases", MappingProxyType(dict(self.phases)))
        object.__setattr__(
            self, "metadata", MappingProxyType(_json_normalise(self.metadata))
        )

    def relative_error_to(self, baseline: "PredictionResult") -> float:
        """Signed relative error of this estimate against ``baseline``."""
        return relative_error(self.total_seconds, baseline.total_seconds)

    def to_dict(self) -> dict:
        """JSON-serialisable view (used by the CLI's machine-readable output)."""
        return {
            "backend": self.backend,
            "scenario": self.scenario.to_dict(),
            "total_seconds": self.total_seconds,
            "phases": dict(self.phases),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PredictionResult":
        """Rebuild a result from :meth:`to_dict` output (store / process pool)."""
        if not isinstance(data, Mapping):
            raise ValidationError(
                f"prediction result must be a mapping, got {type(data).__name__}"
            )
        try:
            return cls(
                backend=data["backend"],
                scenario=Scenario.from_dict(data["scenario"]),
                total_seconds=float(data["total_seconds"]),
                phases={
                    str(name): float(seconds)
                    for name, seconds in dict(data.get("phases", {})).items()
                },
                metadata=dict(data.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ValidationError(f"invalid prediction result: {exc}") from exc

    def summary(self) -> str:
        """One-line human-readable summary."""
        phases = ", ".join(
            f"{name}={seconds:.2f}s" for name, seconds in self.phases.items()
        )
        return f"[{self.backend}] total={self.total_seconds:.2f}s ({phases})"


@dataclass(frozen=True)
class FailedResult:
    """Structured record of one (scenario, backend) evaluation that failed.

    Under the suite-evaluation ``on_error="record"`` contract a point that
    exhausts its retries (or hits an open circuit breaker) lands in the
    result grid as one of these instead of aborting the sweep.  It mirrors
    enough of :class:`PredictionResult`'s surface — ``backend``,
    ``scenario``, a ``total_seconds`` of NaN, an empty phase breakdown — for
    grid consumers (series extraction, accuracy reports) to handle mixed
    rows structurally; the ``ok`` flag tells the two apart.  Failed results
    are never persisted to the store: a later run re-attempts the point.
    """

    ok: ClassVar[bool] = False

    backend: str
    scenario: Scenario
    #: Exception class name of the final failure (e.g. ``"TransientError"``).
    error_type: str
    #: Final failure message.
    error: str
    #: Attempts consumed (1 = no retries were possible or configured).
    attempts: int = 1
    #: NaN: a failed point contributes no estimate to a series.
    total_seconds: float = float("nan")
    phases: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", MappingProxyType(dict(self.phases)))

    def to_dict(self) -> dict:
        """JSON-serialisable view (mirrors :meth:`PredictionResult.to_dict`)."""
        return {
            "failed": True,
            "backend": self.backend,
            "scenario": self.scenario.to_dict(),
            "error_type": self.error_type,
            "error": self.error,
            "attempts": self.attempts,
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"[{self.backend}] FAILED after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.error}"
        )


@dataclass(frozen=True)
class BackendComparison:
    """All backends' answers to one scenario, with errors against a baseline."""

    scenario: Scenario
    baseline: str
    results: dict[str, PredictionResult]

    def baseline_result(self) -> PredictionResult:
        """The baseline backend's result."""
        return self.results[self.baseline]

    def relative_errors(self) -> dict[str, float]:
        """Signed relative errors of every non-baseline backend vs. the baseline."""
        reference = self.baseline_result()
        return {
            name: result.relative_error_to(reference)
            for name, result in self.results.items()
            if name != self.baseline
        }
