"""Multi-backend accuracy dashboard with a CI-gated regression baseline.

The dashboard sweeps every registered backend over a named experiment grid
(store-backed and batched, through the
:class:`~repro.api.sweep.SweepScheduler`), computes each backend's error band
against the simulator baseline (:mod:`repro.analysis.accuracy`), and emits

* a versioned ``ACCURACY_DASHBOARD`` JSONL artifact (one self-identifying
  record per backend, plus a report header record);
* a rendered markdown and CSV summary for humans and spreadsheets;
* a pass/fail verdict against a committed *accuracy baseline* — a JSON file
  recording, per backend, the expected ``mean |error|`` / ``max |error|``
  band and the tolerated drift around it.

Drift gating is symmetric: a backend that got markedly *better* fails too,
because the committed band would otherwise silently loosen — re-baseline
(``repro dashboard --write-baseline``) to ratchet the band instead.  A
backend missing from the sweep (e.g. probing a store that never ran it)
degrades its row to ``incomplete`` rather than crashing, and an incomplete
row always violates the gate.

This module imports :mod:`repro.experiments.figures` for the paper grids, so
it intentionally stays out of ``repro.api.__init__`` (the experiments layer
imports that package); import it as ``repro.api.dashboard``.
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from types import MappingProxyType

from ..analysis.accuracy import (
    ACCURACY_FORMAT_VERSION,
    STATUS_INCOMPLETE,
    AccuracyReport,
    BackendAccuracy,
    compute_accuracy,
)
from ..config import FailureSpec
from ..exceptions import ValidationError
from ..experiments.figures import FIGURE_DEFINITIONS, figure_suite
from ..experiments.runner import run_suite_grid
from .scenario import Scenario, ScenarioSuite
from .service import DEFAULT_BASELINE, PredictionService, SuiteResult
from .store import ResultStore
from .sweep import SweepOutcome, SweepScheduler

#: Prefix of the dashboard's machine-readable stdout lines (mirrors the
#: ``BENCH_SCALING`` idiom: ``ACCURACY_DASHBOARD {json}``).
ARTIFACT_PREFIX = "ACCURACY_DASHBOARD"

#: The six backends every dashboard run covers.
DASHBOARD_BACKENDS = (
    "simulator",
    "mva-forkjoin",
    "mva-tripathi",
    "aria",
    "herodotou",
    "vianna",
)

#: Default tolerated drift of ``mean |error|`` around the committed band,
#: in error units (0.02 = two percentage points of relative error).
DEFAULT_MEAN_ABS_TOLERANCE = 0.02
#: Default tolerated drift of ``max |error|`` around the committed band.
DEFAULT_MAX_ABS_TOLERANCE = 0.05


def smoke_grid(repetitions: int = 1, base_seed: int = 1234) -> ScenarioSuite:
    """A small, seconds-fast grid exercising two workloads (CI smoke gate)."""
    base = Scenario(
        workload="wordcount",
        input_size_bytes=256 * 1024 * 1024,
        num_nodes=2,
        num_reduces=2,
        repetitions=repetitions,
        seed=base_seed,
    )
    scenarios = (
        base,
        base.with_updates(num_nodes=3),
        base.with_updates(workload="grep"),
    )
    return ScenarioSuite(
        name="smoke",
        scenarios=scenarios,
        description="CI smoke grid: wordcount 256MiB on 2/3 nodes + grep 256MiB",
    )


def paper_grid(repetitions: int = 3, base_seed: int = 1234) -> ScenarioSuite:
    """The union of the paper's six evaluation-figure grids, deduplicated."""
    scenarios: list[Scenario] = []
    seen: set[str] = set()
    for figure_id in sorted(FIGURE_DEFINITIONS):
        suite = figure_suite(figure_id, repetitions=repetitions, base_seed=base_seed)
        for scenario in suite.scenarios:
            key = scenario.cache_key()
            if key not in seen:
                seen.add(key)
                scenarios.append(scenario)
    return ScenarioSuite(
        name="paper",
        scenarios=tuple(scenarios),
        description="Union of the paper's evaluation figures (Figures 10-15)",
    )


def failure_grid(repetitions: int = 1, base_seed: int = 1234) -> ScenarioSuite:
    """A failure-injection grid spanning every degradation tier.

    Built on the ``failure-recovery`` workload with ``duration_cv=0`` (the
    clean run is deterministic, failures strictly additive).  The clean point
    plus task-failure and straggler specs are answered by every backend (the
    analytic ones through expected-value inflation); the speculative and
    node-failure points only the simulator can model — backends without the
    capability decline them, so run this grid with ``on_error="record"``.
    """
    base = Scenario(
        workload="failure-recovery",
        input_size_bytes=256 * 1024 * 1024,
        num_nodes=3,
        num_reduces=2,
        duration_cv=0.0,
        repetitions=repetitions,
        seed=base_seed,
    )
    scenarios = (
        base,
        base.with_updates(failures=FailureSpec(task_failure_rate=0.1)),
        base.with_updates(
            failures=FailureSpec(straggler_fraction=0.2, straggler_slowdown=2.5)
        ),
        base.with_updates(
            failures=FailureSpec(
                straggler_fraction=0.3, straggler_slowdown=3.0, speculative=True
            )
        ),
        base.with_updates(failures=FailureSpec(node_failure_times=(30.0,))),
    )
    return ScenarioSuite(
        name="failure",
        scenarios=scenarios,
        description=(
            "Failure-injection grid: clean, task failures, stragglers, "
            "speculation, node loss (failure-recovery workload, cv=0)"
        ),
    )


#: Named dashboard grids: ``name -> builder(repetitions, base_seed)``.  Each
#: builder's own ``repetitions`` default is the grid's default (smoke stays
#: single-repetition fast, paper keeps the figure runner's median-of-3).
DASHBOARD_GRIDS = {
    "smoke": smoke_grid,
    "paper": paper_grid,
    "failure": failure_grid,
}


def dashboard_grid(
    grid: str, repetitions: int | None = None, base_seed: int = 1234
) -> ScenarioSuite:
    """Build a named dashboard grid (``smoke``, ``paper``, or ``failure``)."""
    try:
        builder = DASHBOARD_GRIDS[grid]
    except KeyError as exc:
        raise ValidationError(
            f"unknown dashboard grid {grid!r}; known: {sorted(DASHBOARD_GRIDS)}"
        ) from exc
    if repetitions is None:
        return builder(base_seed=base_seed)
    return builder(repetitions=repetitions, base_seed=base_seed)


@dataclass(frozen=True)
class DashboardRun:
    """One dashboard execution: the evaluated grid plus its accuracy report."""

    suite: ScenarioSuite
    backends: tuple[str, ...]
    report: AccuracyReport
    #: The scheduled sweep behind the report; ``None`` for store-only runs.
    outcome: SweepOutcome | None = None


def _report_from_rows(
    suite: ScenarioSuite,
    backends: Sequence[str],
    rows: Sequence[Mapping[str, object]],
    baseline: str,
) -> AccuracyReport:
    return compute_accuracy(
        grid=suite.name,
        rows=rows,
        backends=backends,
        scenario_labels=[scenario.describe() for scenario in suite.scenarios],
        baseline=baseline,
    )


def accuracy_from_suite_result(
    result: SuiteResult, baseline: str = DEFAULT_BASELINE
) -> AccuracyReport:
    """Accuracy report of an already-evaluated suite result."""
    return _report_from_rows(result.suite, result.backends, result.rows, baseline)


def run_dashboard(
    grid: str | ScenarioSuite = "smoke",
    *,
    backends: Sequence[str] = DASHBOARD_BACKENDS,
    baseline: str = DEFAULT_BASELINE,
    service: PredictionService | None = None,
    store: ResultStore | str | os.PathLike | None = None,
    execution: str | None = None,
    batch: bool = True,
    repetitions: int | None = None,
    base_seed: int = 1234,
    evaluate: bool = True,
    on_error: str | None = None,
) -> DashboardRun:
    """Sweep a dashboard grid across ``backends`` and compute the error bands.

    The sweep is scheduled store-aware (:class:`SweepScheduler`): with a
    persistent store attached, completed points replay from disk and only the
    missing remainder is evaluated, with batch-capable backends dispatched in
    one ``predict_batch`` call each.

    With ``evaluate=False`` nothing is computed at all: the dashboard is
    assembled purely from what the cache/store already answers, and backends
    (or points) the store has never seen degrade their rows to
    ``status="incomplete"`` instead of crashing — useful for inspecting a
    store written by someone else without paying for the missing points.

    ``on_error`` is the partial-results contract of the underlying sweep
    (see :meth:`~repro.api.service.PredictionService.evaluate_suite`): with
    ``"skip"`` or ``"record"``, points that fail terminally degrade the
    affected backend's row to ``status="incomplete"`` instead of killing
    the dashboard — a permanently failing backend reports as incomplete
    while every healthy backend still gets its error band.
    """
    suite = (
        grid
        if isinstance(grid, ScenarioSuite)
        else dashboard_grid(grid, repetitions=repetitions, base_seed=base_seed)
    )
    names = tuple(backends)
    if baseline not in names:
        names = (baseline, *names)
    if service is None:
        service = PredictionService(
            backends=list(names),
            store=store,
            execution=execution or "thread",
            batch=batch,
        )
    if evaluate:
        outcome = run_suite_grid(suite, names, service=service, on_error=on_error)
        # Failed cells (on_error="record") carry no estimate; dropping them
        # here turns them into missing points, which compute_accuracy
        # degrades to status="incomplete" per backend.
        rows = [
            {name: result for name, result in row.items() if result.ok}
            for row in outcome.result.rows
        ]
        report = _report_from_rows(suite, names, rows, baseline)
        return DashboardRun(
            suite=suite, backends=names, report=report, outcome=outcome
        )
    # Store-only mode: replay the answered points, leave the rest missing.
    plan = SweepScheduler(service).plan(suite, names)
    answered = {*plan.memory_hits, *plan.store_hits}
    rows: list[dict[str, object]] = []
    for index, scenario in enumerate(suite.scenarios):
        row: dict[str, object] = {}
        for name in names:
            if (index, name) in answered:
                row[name] = service.evaluate(scenario, name)
        rows.append(row)
    report = _report_from_rows(suite, names, rows, baseline)
    return DashboardRun(suite=suite, backends=names, report=report, outcome=None)


# -- artifact rendering --------------------------------------------------------


def render_jsonl(report: AccuracyReport) -> str:
    """The versioned JSONL artifact: a header record, then one per backend."""
    header = {
        "record": "report",
        "format": report.format_version,
        "grid": report.grid,
        "baseline": report.baseline,
        "num_scenarios": report.num_scenarios,
        "backends": report.backend_names(),
        "complete": report.complete,
    }
    lines = [json.dumps(header, sort_keys=True)]
    for entry in report.backends:
        record = {
            "record": "backend",
            "format": report.format_version,
            "grid": report.grid,
            **entry.to_dict(),
        }
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + "\n"


def parse_jsonl(text: str) -> AccuracyReport:
    """Rebuild a report from :func:`render_jsonl` output (artifact diffing)."""
    header: Mapping | None = None
    entries: list[BackendAccuracy] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith(ARTIFACT_PREFIX):
            line = line[len(ARTIFACT_PREFIX) :].strip()
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid dashboard JSONL line: {exc}") from exc
        kind = record.get("record")
        if kind == "report":
            header = record
        elif kind == "backend":
            entries.append(BackendAccuracy.from_dict(record))
        else:
            raise ValidationError(f"unknown dashboard record kind {kind!r}")
    if header is None:
        raise ValidationError("dashboard JSONL has no report header record")
    return AccuracyReport(
        grid=header["grid"],
        baseline=header["baseline"],
        num_scenarios=int(header["num_scenarios"]),
        backends=tuple(entries),
        format_version=int(header.get("format", ACCURACY_FORMAT_VERSION)),
    )


def _format_error(value: float | None) -> str:
    return "—" if value is None else f"{100 * value:.1f}%"


def _format_signed(value: float | None) -> str:
    return "—" if value is None else f"{100 * value:+.1f}%"


def render_markdown(report: AccuracyReport) -> str:
    """Human-readable markdown summary of the error bands."""
    lines = [
        f"# Accuracy dashboard — grid `{report.grid}`",
        "",
        f"{report.num_scenarios} scenarios, errors vs `{report.baseline}` "
        f"(format v{report.format_version}).",
        "",
        "| backend | status | points | mean \\|err\\| | p50 | p90 | p95 | max | mean signed |",
        "|---|---|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for entry in report.backends:
        bands = entry.percentiles
        lines.append(
            f"| {entry.backend} | {entry.status} | {entry.count} "
            f"| {_format_error(entry.mean_abs)} "
            f"| {_format_error(bands.get('p50'))} "
            f"| {_format_error(bands.get('p90'))} "
            f"| {_format_error(bands.get('p95'))} "
            f"| {_format_error(entry.max_abs)} "
            f"| {_format_signed(entry.mean_signed)} |"
        )
    worst_lines = [
        f"- `{entry.backend}`: {_format_signed(entry.worst.error)} on "
        f"{entry.worst.scenario} "
        f"({entry.worst.estimate_seconds:.1f}s vs {entry.worst.baseline_seconds:.1f}s)"
        for entry in report.backends
        if entry.worst is not None and entry.backend != report.baseline
    ]
    if worst_lines:
        lines += ["", "## Worst-case scenarios", "", *worst_lines]
    phase_names = sorted(
        {phase.phase for entry in report.backends for phase in entry.phases}
    )
    if phase_names:
        lines += [
            "",
            "## Per-phase mean |error|",
            "",
            "| backend | " + " | ".join(phase_names) + " |",
            "|---|" + "---:|" * len(phase_names),
        ]
        for entry in report.backends:
            if entry.backend == report.baseline or not entry.phases:
                continue
            by_name = {phase.phase: phase for phase in entry.phases}
            cells = [
                _format_error(by_name[name].mean_abs) if name in by_name else "—"
                for name in phase_names
            ]
            lines.append(f"| {entry.backend} | " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def render_csv(report: AccuracyReport) -> str:
    """Spreadsheet-friendly per-backend band summary."""
    band_labels = ["p50", "p90", "p95", "p100"]
    header = [
        "grid",
        "backend",
        "status",
        "count",
        "missing_points",
        "skipped_points",
        "mean_abs",
        "max_abs",
        "mean_signed",
        *band_labels,
        "worst_scenario",
        "worst_error",
    ]

    def cell(value: object) -> str:
        if value is None:
            return ""
        text = str(value)
        if any(symbol in text for symbol in (",", '"', "\n")):
            text = '"' + text.replace('"', '""') + '"'
        return text

    rows = [",".join(header)]
    for entry in report.backends:
        rows.append(
            ",".join(
                cell(value)
                for value in (
                    report.grid,
                    entry.backend,
                    entry.status,
                    entry.count,
                    entry.missing_points,
                    entry.skipped_points,
                    entry.mean_abs,
                    entry.max_abs,
                    entry.mean_signed,
                    *(entry.percentiles.get(label) for label in band_labels),
                    entry.worst.scenario if entry.worst else None,
                    entry.worst.error if entry.worst else None,
                )
            )
        )
    return "\n".join(rows) + "\n"


def write_artifacts(report: AccuracyReport, directory: str | os.PathLike) -> dict[str, Path]:
    """Write the JSONL / markdown / CSV artifacts; returns the written paths."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    paths = {
        "jsonl": target / "accuracy-dashboard.jsonl",
        "markdown": target / "accuracy-dashboard.md",
        "csv": target / "accuracy-dashboard.csv",
    }
    paths["jsonl"].write_text(render_jsonl(report))
    paths["markdown"].write_text(render_markdown(report))
    paths["csv"].write_text(render_csv(report))
    return paths


# -- baseline gating -----------------------------------------------------------


@dataclass(frozen=True)
class BaselineBand:
    """One backend's committed error band plus its tolerated drift."""

    mean_abs: float
    max_abs: float
    tolerance_mean_abs: float = DEFAULT_MEAN_ABS_TOLERANCE
    tolerance_max_abs: float = DEFAULT_MAX_ABS_TOLERANCE

    def to_dict(self) -> dict:
        return {
            "mean_abs": self.mean_abs,
            "max_abs": self.max_abs,
            "tolerance_mean_abs": self.tolerance_mean_abs,
            "tolerance_max_abs": self.tolerance_max_abs,
        }


@dataclass(frozen=True)
class DriftViolation:
    """One way a fresh report fell outside the committed baseline."""

    backend: str
    kind: str
    message: str

    def describe(self) -> str:
        return f"[{self.kind}] {self.backend}: {self.message}"


@dataclass(frozen=True)
class AccuracyBaseline:
    """The committed per-backend error bands one grid is gated against."""

    grid: str
    baseline: str
    bands: Mapping[str, BaselineBand] = field(default_factory=dict)
    format_version: int = ACCURACY_FORMAT_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "bands", MappingProxyType(dict(self.bands)))

    def to_dict(self) -> dict:
        return {
            "format": self.format_version,
            "grid": self.grid,
            "baseline": self.baseline,
            "backends": {
                name: band.to_dict() for name, band in sorted(self.bands.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AccuracyBaseline":
        if not isinstance(data, Mapping):
            raise ValidationError(
                f"accuracy baseline must be a mapping, got {type(data).__name__}"
            )
        try:
            return cls(
                grid=data["grid"],
                baseline=data["baseline"],
                bands={
                    str(name): BaselineBand(**dict(band))
                    for name, band in dict(data.get("backends", {})).items()
                },
                format_version=int(data.get("format", ACCURACY_FORMAT_VERSION)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"invalid accuracy baseline: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "AccuracyBaseline":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid accuracy baseline JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "AccuracyBaseline":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ValidationError(f"cannot read accuracy baseline {path!s}: {exc}") from exc
        return cls.from_json(text)

    def write(self, path: str | os.PathLike) -> None:
        Path(path).write_text(self.to_json())


def baseline_from_report(
    report: AccuracyReport,
    tolerance_mean_abs: float = DEFAULT_MEAN_ABS_TOLERANCE,
    tolerance_max_abs: float = DEFAULT_MAX_ABS_TOLERANCE,
) -> AccuracyBaseline:
    """Snapshot a report's bands into a committable baseline (re-baselining).

    Only comparable backends are recorded; an incomplete run cannot become
    the bar every later run is measured against.
    """
    bands = {
        entry.backend: BaselineBand(
            mean_abs=entry.mean_abs,
            max_abs=entry.max_abs,
            tolerance_mean_abs=tolerance_mean_abs,
            tolerance_max_abs=tolerance_max_abs,
        )
        for entry in report.backends
        if entry.comparable
    }
    if not bands:
        raise ValidationError("report has no comparable backends to baseline")
    return AccuracyBaseline(grid=report.grid, baseline=report.baseline, bands=bands)


def compare_to_baseline(
    report: AccuracyReport, baseline: AccuracyBaseline
) -> list[DriftViolation]:
    """Every way ``report`` drifted outside ``baseline``; empty means pass.

    The gate is symmetric: landing *below* the committed band by more than
    the tolerance fails too, so improvements force an explicit re-baseline
    instead of silently loosening the band for future regressions.
    """
    violations: list[DriftViolation] = []
    if report.grid != baseline.grid:
        violations.append(
            DriftViolation(
                backend="*",
                kind="grid-mismatch",
                message=f"report grid {report.grid!r} vs baseline grid {baseline.grid!r}",
            )
        )
        return violations
    if report.baseline != baseline.baseline:
        violations.append(
            DriftViolation(
                backend="*",
                kind="baseline-mismatch",
                message=(
                    f"errors measured against {report.baseline!r} but the baseline "
                    f"was recorded against {baseline.baseline!r}"
                ),
            )
        )
        return violations
    fresh = {entry.backend: entry for entry in report.backends}
    for name, band in sorted(baseline.bands.items()):
        entry = fresh.get(name)
        if entry is None:
            violations.append(
                DriftViolation(
                    backend=name,
                    kind="missing-backend",
                    message="baselined backend is absent from the report",
                )
            )
            continue
        if entry.status == STATUS_INCOMPLETE or not entry.comparable:
            # Any missing point voids the comparison: band statistics over a
            # partial grid are not the statistics the baseline was recorded
            # over, even when they happen to land inside the tolerance.
            violations.append(
                DriftViolation(
                    backend=name,
                    kind="incomplete",
                    message=(
                        f"only {entry.count} comparable points "
                        f"(status {entry.status}, {entry.missing_points} missing, "
                        f"{entry.skipped_points} skipped)"
                    ),
                )
            )
            continue
        mean_drift = entry.mean_abs - band.mean_abs
        if abs(mean_drift) > band.tolerance_mean_abs:
            violations.append(
                DriftViolation(
                    backend=name,
                    kind="mean-abs-drift",
                    message=(
                        f"mean |error| {100 * entry.mean_abs:.2f}% drifted "
                        f"{100 * mean_drift:+.2f}% from the committed "
                        f"{100 * band.mean_abs:.2f}% "
                        f"(tolerance ±{100 * band.tolerance_mean_abs:.2f}%)"
                    ),
                )
            )
        max_drift = entry.max_abs - band.max_abs
        if abs(max_drift) > band.tolerance_max_abs:
            violations.append(
                DriftViolation(
                    backend=name,
                    kind="max-abs-drift",
                    message=(
                        f"max |error| {100 * entry.max_abs:.2f}% drifted "
                        f"{100 * max_drift:+.2f}% from the committed "
                        f"{100 * band.max_abs:.2f}% "
                        f"(tolerance ±{100 * band.tolerance_max_abs:.2f}%)"
                    ),
                )
            )
    for entry in report.backends:
        if entry.backend not in baseline.bands and entry.comparable:
            violations.append(
                DriftViolation(
                    backend=entry.backend,
                    kind="unbaselined-backend",
                    message=(
                        "backend has no committed band; re-baseline to start "
                        "tracking it"
                    ),
                )
            )
    return violations
