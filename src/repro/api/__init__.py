"""Unified prediction-backend API.

This package is the single well-typed interface over the repo's heterogeneous
prediction engines:

* :class:`Scenario` / :class:`ScenarioSuite` — frozen, JSON-round-trippable
  specifications of *what* to predict (cluster + workload + scheduler + seed);
* :class:`PredictionBackend` + :func:`register_backend` — the string-keyed
  registry of *how* to predict (analytic MVA, static ARIA / Herodotou /
  Vianna baselines, the YARN simulator);
* :class:`PredictionResult` — the uniform answer shape (total seconds,
  per-phase breakdown, metadata);
* :class:`PredictionService` — batch evaluation of suites across backends
  with keyed result caching and thread-pool parallelism.

Quick example::

    from repro.api import PredictionService, Scenario

    service = PredictionService()
    scenario = Scenario(workload="wordcount", num_nodes=4, input_size_bytes=10**9)
    result = service.evaluate(scenario, "mva-forkjoin")
    print(result.summary())
"""

from .backends import (
    PredictionBackend,
    backend_names,
    create_backend,
    register_backend,
)
from .results import BackendComparison, PredictionResult
from .scenario import (
    WORKLOAD_PROFILES,
    Scenario,
    ScenarioSuite,
    register_workload_profile,
)
from .service import DEFAULT_BASELINE, PredictionService, SuiteResult

__all__ = [
    "BackendComparison",
    "DEFAULT_BASELINE",
    "PredictionBackend",
    "PredictionResult",
    "PredictionService",
    "Scenario",
    "ScenarioSuite",
    "SuiteResult",
    "WORKLOAD_PROFILES",
    "backend_names",
    "create_backend",
    "register_backend",
    "register_workload_profile",
]
