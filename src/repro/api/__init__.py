"""Unified prediction-backend API.

This package is the single well-typed interface over the repo's heterogeneous
prediction engines:

* :class:`Scenario` / :class:`ScenarioSuite` — frozen, JSON-round-trippable
  specifications of *what* to predict (cluster + workload + scheduler + seed);
* :class:`PredictionBackend` + :func:`register_backend` — the string-keyed
  registry of *how* to predict (analytic MVA, static ARIA / Herodotou /
  Vianna baselines, the YARN simulator);
* :class:`PredictionResult` — the uniform answer shape (total seconds,
  per-phase breakdown, metadata);
* :class:`PredictionService` — batch evaluation of suites across backends
  with keyed result caching, serial / thread-pool / process-pool execution
  modes, and one-call ``predict_batch`` dispatch to batch-capable backends;
* :class:`ResultStore` / :class:`SqliteResultStore` (via :func:`open_store`)
  — persistent, crash-tolerant result stores keyed by
  ``(Scenario.cache_key(), backend)`` — sharded JSON or single-file SQLite
  behind one contract — with TTL/size garbage collection
  (:meth:`BaseResultStore.gc`) and a claim/lease namespace
  (:class:`LeaseManager`) for cooperative multi-worker sweeps;
* :class:`SweepScheduler` — store-aware sweep planning: compute the missing
  points of a target grid, execute only those, resume interrupted sweeps —
  or drain one grid from k processes with zero duplicate evaluations
  (:meth:`SweepScheduler.run_cooperative`);
* :class:`RetryPolicy` / :class:`BreakerPolicy` / :class:`CircuitBreaker` —
  the resilience layer: bounded retries with deterministic backoff,
  per-evaluation deadlines, per-backend circuit breaking, and the
  ``on_error="raise" | "skip" | "record"`` partial-results contract whose
  failures surface as structured :class:`FailedResult` rows;
* :class:`FailureSpec` — deterministic failure injection (stragglers,
  task-attempt failures, node loss, speculative execution) simulated in
  full by the ``simulator`` backend; analytic backends degrade gracefully —
  expected-value inflation where the spec admits it, a structured
  :class:`BackendCapabilityError` where it does not.

Quick example::

    from repro.api import PredictionService, Scenario

    service = PredictionService()
    scenario = Scenario(workload="wordcount", num_nodes=4, input_size_bytes=10**9)
    result = service.evaluate(scenario, "mva-forkjoin")
    print(result.summary())
"""

from ..config import FailureSpec
from ..exceptions import BackendCapabilityError
from .backends import (
    PredictionBackend,
    backend_is_cpu_bound,
    backend_names,
    backend_supports_batch,
    backend_version,
    create_backend,
    register_backend,
)
from .resilience import (
    NO_RETRY,
    ON_ERROR_MODES,
    BreakerPolicy,
    BreakerSnapshot,
    CircuitBreaker,
    RetryPolicy,
)
from .results import BackendComparison, FailedResult, PredictionResult
from .scenario import (
    SCENARIO_SPEC_VERSION,
    WORKLOAD_PROFILES,
    Scenario,
    ScenarioSuite,
    register_workload_profile,
)
from .service import (
    DEFAULT_BASELINE,
    EXECUTION_MODES,
    PredictionService,
    ServiceStats,
    SuiteResult,
)
from .store import (
    QUARANTINE_DIR,
    STORE_FORMAT_VERSION,
    STORE_FORMATS,
    BaseResultStore,
    GcStats,
    LeaseManager,
    ResultStore,
    SqliteResultStore,
    StoreStats,
    open_store,
)
from .sweep import CooperativeOutcome, SweepOutcome, SweepPlan, SweepScheduler

#: Capacity-planner names re-exported lazily (PEP 562): ``repro.plan`` builds
#: on this package, so an eager import here would be circular.  Importing any
#: of these from ``repro.api`` resolves through :func:`__getattr__` below.
_PLANNER_EXPORTS = (
    "CapacityPlanner",
    "Constraint",
    "Objective",
    "PlanPoint",
    "PlanProbe",
    "PlanReport",
    "PlanSpec",
    "SearchSpace",
)


def __getattr__(name: str):
    if name in _PLANNER_EXPORTS:
        from .. import plan

        return getattr(plan, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BackendCapabilityError",
    "BackendComparison",
    "BaseResultStore",
    "BreakerPolicy",
    "BreakerSnapshot",
    "CapacityPlanner",
    "CircuitBreaker",
    "Constraint",
    "CooperativeOutcome",
    "DEFAULT_BASELINE",
    "EXECUTION_MODES",
    "FailedResult",
    "FailureSpec",
    "GcStats",
    "LeaseManager",
    "NO_RETRY",
    "ON_ERROR_MODES",
    "Objective",
    "PlanPoint",
    "PlanProbe",
    "PlanReport",
    "PlanSpec",
    "PredictionBackend",
    "PredictionResult",
    "PredictionService",
    "QUARANTINE_DIR",
    "ResultStore",
    "RetryPolicy",
    "SCENARIO_SPEC_VERSION",
    "STORE_FORMATS",
    "STORE_FORMAT_VERSION",
    "Scenario",
    "ScenarioSuite",
    "SearchSpace",
    "ServiceStats",
    "SqliteResultStore",
    "StoreStats",
    "SuiteResult",
    "SweepOutcome",
    "SweepPlan",
    "SweepScheduler",
    "WORKLOAD_PROFILES",
    "backend_is_cpu_bound",
    "backend_names",
    "backend_supports_batch",
    "backend_version",
    "create_backend",
    "open_store",
    "register_backend",
    "register_workload_profile",
]
