"""Resilience primitives for the prediction service: retries and breakers.

The service's north star is serving sweeps like a long-running daemon, and a
daemon cannot treat every transient hiccup as fatal.  This module holds the
two policy objects the :class:`~repro.api.service.PredictionService` threads
through its evaluation paths:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* seeded jitter.  Determinism matters here more than in a
  typical client library: the reproduction's contract is that a sweep's
  numbers (and, under fault injection, its schedule) are a pure function of
  the scenario and the seed, so the jitter is derived from a hash of
  ``(seed, point key, attempt)`` instead of a global RNG.
* :class:`BreakerPolicy` / :class:`CircuitBreaker` — a per-backend circuit
  breaker over a rolling window of call outcomes.  A backend that fails
  persistently is cut off (``open``), probed again after a cooldown
  (``half-open``), and readmitted on a successful probe (``closed``).
  Rejections raise :class:`~repro.exceptions.CircuitOpenError`, which the
  retry policy classifies as fatal so retries never hammer an open breaker.

Both policies are frozen dataclasses: sharing one across services is safe,
and the breaker keeps all mutable state behind its own lock with an
injectable clock so tests can drive the cooldown without sleeping.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from ..exceptions import (
    CircuitOpenError,
    TransientError,
    ValidationError,
)

#: Accepted values of the suite-evaluation ``on_error`` contract:
#: ``raise`` propagates the first failure (after in-flight points finish and
#: persist), ``skip`` omits failed points from the result rows, ``record``
#: replaces them with structured :class:`~repro.api.results.FailedResult`s.
ON_ERROR_MODES = ("raise", "skip", "record")

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter."""

    #: Total attempts including the first one; ``1`` disables retries.
    max_attempts: int = 3
    #: Backoff before the first retry, in seconds.
    base_delay: float = 0.05
    #: Multiplier applied per further retry (``base * factor ** (n - 1)``).
    backoff_factor: float = 2.0
    #: Upper bound on any single backoff delay, in seconds.
    max_delay: float = 2.0
    #: Fraction of the delay subtracted as jitter (0 = none, 1 = full).
    jitter: float = 0.5
    #: Seed folded into the jitter hash; same seed → same schedule.
    seed: int = 0
    #: Exception types worth retrying.  ``OSError`` covers the connection
    #: and interrupted-call family; :class:`TransientError` covers
    #: deliberate transient classifications (timeouts included, as
    #: ``EvaluationTimeoutError`` subclasses it).
    retryable: tuple[type[BaseException], ...] = (
        TransientError,
        TimeoutError,
        ConnectionError,
        InterruptedError,
    )
    #: Exception types never retried, checked *before* ``retryable`` so a
    #: fatal subclass of a retryable type stays fatal.
    fatal: tuple[type[BaseException], ...] = (CircuitOpenError, ValidationError)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValidationError("retry delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValidationError(f"jitter must be in [0, 1], got {self.jitter}")

    @classmethod
    def resolve(cls, retry: "RetryPolicy | int | None") -> "RetryPolicy":
        """Normalise a service's ``retry`` argument into a policy.

        ``None`` and ``0`` mean "no retries" (single attempt); an integer
        ``n`` means "n retries after the first attempt"; a policy passes
        through unchanged.
        """
        if retry is None:
            return NO_RETRY
        if isinstance(retry, RetryPolicy):
            return retry
        if isinstance(retry, bool) or not isinstance(retry, int):
            raise ValidationError(
                f"retry must be a RetryPolicy, an int, or None, got {retry!r}"
            )
        if retry < 0:
            raise ValidationError(f"retry count must be >= 0, got {retry}")
        if retry == 0:
            return NO_RETRY
        return cls(max_attempts=retry + 1)

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth another attempt under this policy."""
        if isinstance(exc, self.fatal):
            return False
        return isinstance(exc, self.retryable)

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based), in seconds.

        The jitter is a deterministic function of ``(seed, key, attempt)``:
        distinct points desynchronise (no thundering herd on a shared
        resource) while the schedule of any single point is reproducible.
        """
        if attempt < 1:
            raise ValidationError(f"attempt must be >= 1, got {attempt}")
        base = min(self.max_delay, self.base_delay * self.backoff_factor ** (attempt - 1))
        if base <= 0 or self.jitter == 0:
            return base
        digest = hashlib.sha256(f"{self.seed}:{key}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return base * (1.0 - self.jitter * fraction)


#: Single-attempt policy: the service's default (retries are opt-in).
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)


@dataclass(frozen=True)
class BreakerPolicy:
    """Thresholds governing a per-backend :class:`CircuitBreaker`."""

    #: Failure rate over the rolling window at which the breaker trips.
    failure_threshold: float = 0.5
    #: Number of most-recent call outcomes the failure rate is computed over.
    window: int = 10
    #: Minimum outcomes in the window before the rate is trusted at all
    #: (a single failure out of one call is not a 100%-failing backend).
    min_calls: int = 5
    #: Seconds an open breaker waits before readmitting probe calls.
    cooldown_seconds: float = 30.0
    #: Concurrent probe calls admitted while half-open.
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValidationError(
                f"failure_threshold must be in (0, 1], got {self.failure_threshold}"
            )
        if self.window < 1 or self.min_calls < 1 or self.half_open_probes < 1:
            raise ValidationError("window, min_calls and half_open_probes must be >= 1")
        if self.cooldown_seconds < 0:
            raise ValidationError("cooldown_seconds must be non-negative")


@dataclass(frozen=True)
class BreakerSnapshot:
    """One point-in-time view of a breaker (for ``stats()`` and logs)."""

    name: str
    state: str
    trips: int
    #: Outcomes currently in the rolling window.
    window_calls: int
    window_failures: int
    #: Calls rejected while the breaker was open or saturated half-open.
    rejections: int

    def to_dict(self) -> dict:
        """JSON-serialisable view (the ``/stats`` endpoint's breaker rows)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: "dict | None") -> "BreakerSnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ValidationError(
                f"breaker snapshot must be a mapping, got {type(data).__name__}"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValidationError(
                f"unknown breaker-snapshot fields {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        try:
            snapshot = cls(**data)
        except TypeError as exc:
            raise ValidationError(f"invalid breaker snapshot: {exc}") from exc
        if snapshot.state not in (BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN):
            raise ValidationError(f"unknown breaker state {snapshot.state!r}")
        return snapshot


class CircuitBreaker:
    """Closed / open / half-open breaker over a rolling outcome window.

    Thread-safe; time is read through the injectable ``clock`` so tests can
    advance the cooldown synthetically.
    """

    def __init__(
        self,
        policy: BreakerPolicy | None = None,
        name: str = "",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._policy = policy or BreakerPolicy()
        self._name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._window: deque[bool] = deque(maxlen=self._policy.window)
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._trips = 0
        self._rejections = 0

    @property
    def name(self) -> str:
        """The backend this breaker guards."""
        return self._name

    @property
    def state(self) -> str:
        """Current state, cooldown transitions applied."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> None:
        """Admit one call or raise :class:`CircuitOpenError`."""
        with self._lock:
            self._maybe_half_open()
            if self._state == BREAKER_OPEN:
                self._rejections += 1
                remaining = self._policy.cooldown_seconds - (
                    self._clock() - self._opened_at
                )
                raise CircuitOpenError(
                    f"circuit breaker for backend {self._name!r} is open "
                    f"(retry in {max(0.0, remaining):.1f}s)"
                )
            if self._state == BREAKER_HALF_OPEN:
                if self._probes_in_flight >= self._policy.half_open_probes:
                    self._rejections += 1
                    raise CircuitOpenError(
                        f"circuit breaker for backend {self._name!r} is half-open "
                        "and its probe slots are taken"
                    )
                self._probes_in_flight += 1

    def record_success(self) -> None:
        """Note a successful call; a half-open probe success closes the breaker."""
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                self._state = BREAKER_CLOSED
                self._window.clear()
                self._probes_in_flight = 0
            else:
                self._window.append(True)

    def record_failure(self) -> None:
        """Note a failed call; may trip the breaker (back) open."""
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                self._trip()
                return
            if self._state == BREAKER_OPEN:
                return
            self._window.append(False)
            failures = sum(1 for ok in self._window if not ok)
            if (
                len(self._window) >= self._policy.min_calls
                and failures / len(self._window) >= self._policy.failure_threshold
            ):
                self._trip()

    def snapshot(self) -> BreakerSnapshot:
        """Consistent view of state and counters."""
        with self._lock:
            self._maybe_half_open()
            return BreakerSnapshot(
                name=self._name,
                state=self._state,
                trips=self._trips,
                window_calls=len(self._window),
                window_failures=sum(1 for ok in self._window if not ok),
                rejections=self._rejections,
            )

    # -- internals (call with self._lock held) --------------------------------

    def _trip(self) -> None:
        self._state = BREAKER_OPEN
        self._opened_at = self._clock()
        self._trips += 1
        self._probes_in_flight = 0
        self._window.clear()

    def _maybe_half_open(self) -> None:
        if (
            self._state == BREAKER_OPEN
            and self._clock() - self._opened_at >= self._policy.cooldown_seconds
        ):
            self._state = BREAKER_HALF_OPEN
            self._probes_in_flight = 0
