"""Prediction backends: one uniform ``predict(scenario)`` over every engine.

The registry maps short string keys to backend classes:

* ``mva-forkjoin`` / ``mva-tripathi`` — the paper's analytic Hadoop 2.x model
  (:class:`~repro.core.model.Hadoop2PerformanceModel`) with either estimator;
* ``aria`` — ARIA makespan bounds from a job profile derived from the same
  uncontended service demands the analytic model uses;
* ``herodotou`` — the Herodotou phase model on dataflow/cost statistics;
* ``vianna`` — the slot-based Hadoop 1.x baseline model;
* ``simulator`` — the discrete-event YARN simulator (median of the mean job
  response time over ``scenario.repetitions`` seeded runs — the "measured"
  value of the evaluation figures).

Backends are stateless: every :meth:`PredictionBackend.predict` call builds
its engine from the scenario alone, so instances can be shared across threads.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import ClassVar, Protocol, runtime_checkable

from ..core.estimators import EstimatorKind
from ..core.model import Hadoop2PerformanceModel
from ..core.parameters import TaskClass
from ..exceptions import BackendError
from ..hadoop.simulator import ClusterSimulator
from ..static_models.aria import AriaJobProfile, AriaModel
from ..static_models.herodotou import HerodotouJobModel
from ..static_models.vianna import ViannaHadoop1Model
from .results import PredictionResult
from .scenario import Scenario

#: Sigmas of task-duration spread assumed when deriving ARIA's max durations.
_ARIA_SPREAD_SIGMAS = 2.0


@runtime_checkable
class PredictionBackend(Protocol):
    """A named engine that turns a :class:`Scenario` into a :class:`PredictionResult`.

    Backends may additionally declare two class attributes consumed by the
    service and the persistent store:

    * ``version`` (int, default 1) — bump whenever the backend's numerical
      behaviour changes; stored results recorded under an older version are
      treated as stale;
    * ``cpu_bound`` (bool, default False) — marks backends whose ``predict``
      does enough Python-level work that the GIL serialises a thread pool;
      the service's ``execution="process"`` mode ships those to a process
      pool instead.
    """

    name: ClassVar[str]

    def predict(self, scenario: Scenario) -> PredictionResult:
        """Evaluate one scenario."""
        ...


_REGISTRY: dict[str, type] = {}


def register_backend(name: str):
    """Class decorator registering a backend under a string key."""

    def decorator(cls):
        if name in _REGISTRY:
            raise BackendError(f"backend {name!r} is already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def backend_names() -> list[str]:
    """Sorted names of all registered backends."""
    return sorted(_REGISTRY)


def backend_version(name: str) -> int | None:
    """Behaviour version of a registered backend; ``None`` when unregistered.

    The persistent result store records this next to every result and treats
    any mismatch on load as a stale record.
    """
    cls = _REGISTRY.get(name)
    return getattr(cls, "version", 1) if cls is not None else None


def backend_is_cpu_bound(name: str) -> bool:
    """Whether a backend benefits from process-pool (GIL-free) execution."""
    return bool(getattr(_REGISTRY.get(name), "cpu_bound", False))


def create_backend(name: str, **options) -> PredictionBackend:
    """Instantiate a backend by name (``options`` go to its constructor)."""
    try:
        cls = _REGISTRY[name]
    except KeyError as exc:
        raise BackendError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from exc
    return cls(**options)


def _fair_share(total: int, num_jobs: int) -> int:
    """Per-job share of ``total`` slots when ``num_jobs`` run concurrently."""
    return max(1, total // num_jobs)


class _MvaBackend:
    """Shared implementation of the two analytic-model backends."""

    name: ClassVar[str]
    kind: ClassVar[EstimatorKind]

    def predict(self, scenario: Scenario) -> PredictionResult:
        model = Hadoop2PerformanceModel(scenario.model_input())
        prediction = model.predict(self.kind)
        return PredictionResult(
            backend=self.name,
            scenario=scenario,
            total_seconds=prediction.job_response_time,
            phases={
                task_class.value: seconds
                for task_class, seconds in prediction.class_response_times.items()
            },
            metadata={
                "estimator": prediction.estimator.value,
                "iterations": prediction.iterations,
                "converged": prediction.converged,
                "tree_depth": prediction.tree_depth,
                "num_leaves": prediction.num_leaves,
                "timeline_makespan": prediction.timeline_makespan,
            },
        )


@register_backend("mva-forkjoin")
class MvaForkJoinBackend(_MvaBackend):
    """Analytic Hadoop 2.x model with the fork/join estimator."""

    kind = EstimatorKind.FORK_JOIN


@register_backend("mva-tripathi")
class MvaTripathiBackend(_MvaBackend):
    """Analytic Hadoop 2.x model with the Tripathi-based estimator."""

    kind = EstimatorKind.TRIPATHI


@register_backend("aria")
class AriaBackend:
    """ARIA makespan bounds on a profile derived from the scenario's demands.

    Stage averages are the uncontended per-task service demands the analytic
    model uses; maxima assume a ``_ARIA_SPREAD_SIGMAS``-sigma spread at the
    scenario's task-duration CV.  Concurrent jobs get a fair share of the
    cluster's container slots.
    """

    name: ClassVar[str]

    def predict(self, scenario: Scenario) -> PredictionResult:
        model_input = scenario.model_input()
        spread = 1.0 + _ARIA_SPREAD_SIGMAS * scenario.duration_cv

        def demand_seconds(task_class: TaskClass) -> float:
            demands = model_input.demands[task_class]
            return demands.cpu_seconds + demands.disk_seconds + demands.network_seconds

        avg_map = demand_seconds(TaskClass.MAP)
        avg_shuffle = demand_seconds(TaskClass.SHUFFLE_SORT)
        avg_reduce = demand_seconds(TaskClass.MERGE)
        profile = AriaJobProfile(
            num_maps=model_input.num_maps,
            num_reduces=model_input.num_reduces,
            avg_map_seconds=avg_map,
            max_map_seconds=avg_map * spread,
            avg_shuffle_seconds=avg_shuffle,
            max_shuffle_seconds=avg_shuffle * spread,
            avg_reduce_seconds=avg_reduce,
            max_reduce_seconds=avg_reduce * spread,
        )
        cluster = scenario.cluster_config()
        map_slots = _fair_share(cluster.total_map_capacity(), scenario.num_jobs)
        reduce_slots = _fair_share(cluster.total_reduce_capacity(), scenario.num_jobs)
        model = AriaModel(profile)
        bounds = model.job_bounds(map_slots, reduce_slots)
        return PredictionResult(
            backend=self.name,
            scenario=scenario,
            total_seconds=bounds.average_seconds,
            phases={
                "map": model.map_stage_bounds(map_slots).average_seconds,
                "shuffle-sort": model.shuffle_stage_bounds(reduce_slots).average_seconds,
                "merge": model.reduce_stage_bounds(reduce_slots).average_seconds,
            },
            metadata={
                "lower_seconds": bounds.lower_seconds,
                "upper_seconds": bounds.upper_seconds,
                "map_slots": map_slots,
                "reduce_slots": reduce_slots,
            },
        )


@register_backend("herodotou")
class HerodotouBackend:
    """Herodotou static phase model (waves over fair-share slots)."""

    name: ClassVar[str]

    def predict(self, scenario: Scenario) -> PredictionResult:
        profile = scenario.profile()
        cluster = scenario.cluster_config()
        environment = profile.herodotou_environment(cluster)
        if scenario.num_jobs > 1:
            environment = dataclasses.replace(
                environment,
                map_slots_per_node=_fair_share(
                    environment.map_slots_per_node, scenario.num_jobs
                ),
                reduce_slots_per_node=_fair_share(
                    environment.reduce_slots_per_node, scenario.num_jobs
                ),
            )
        dataflow = profile.herodotou_dataflow(scenario.job_configs()[0])
        estimate = HerodotouJobModel(environment).estimate(dataflow)
        return PredictionResult(
            backend=self.name,
            scenario=scenario,
            total_seconds=estimate.total_seconds,
            phases={
                "map": estimate.map_stage_seconds,
                "shuffle-sort": 0.0,
                "merge": estimate.reduce_stage_seconds,
            },
            metadata={
                "map_waves": estimate.map_waves,
                "reduce_waves": estimate.reduce_waves,
                "map_task_seconds": estimate.map_phases.total,
                "reduce_task_seconds": estimate.reduce_phases.total,
            },
        )


@register_backend("vianna")
class ViannaBackend:
    """Vianna et al.'s slot-based Hadoop 1.x baseline model."""

    name: ClassVar[str]

    def __init__(self, map_slots_per_node: int = 2, reduce_slots_per_node: int = 2) -> None:
        self.map_slots_per_node = map_slots_per_node
        self.reduce_slots_per_node = reduce_slots_per_node

    def predict(self, scenario: Scenario) -> PredictionResult:
        model = ViannaHadoop1Model(
            scenario.model_input(),
            map_slots_per_node=self.map_slots_per_node,
            reduce_slots_per_node=self.reduce_slots_per_node,
        )
        prediction = model.predict()
        return PredictionResult(
            backend=self.name,
            scenario=scenario,
            total_seconds=prediction.job_response_time,
            phases={
                task_class.value: seconds
                for task_class, seconds in prediction.class_response_times.items()
            },
            metadata={
                "iterations": prediction.iterations,
                "converged": prediction.converged,
                "map_slots_per_node": self.map_slots_per_node,
                "reduce_slots_per_node": self.reduce_slots_per_node,
            },
        )


@register_backend("simulator")
class SimulatorBackend:
    """Discrete-event YARN simulator — the evaluation's "measured" series.

    Runs ``scenario.repetitions`` simulations with seeds ``seed + i`` and
    reports the median of the per-run mean job response times, exactly as the
    experiment runner has always derived the measurement.
    """

    name: ClassVar[str]
    #: The discrete-event loop is pure Python: fan it out over processes.
    cpu_bound: ClassVar[bool] = True

    def predict(self, scenario: Scenario) -> PredictionResult:
        workload = scenario.workload_spec()
        cluster = scenario.cluster_config()
        scheduler = scenario.scheduler_config()
        simulator_profile = workload.profile.simulator_profile()
        means: list[float] = []
        first_result = None
        for repetition in range(scenario.repetitions):
            simulator = ClusterSimulator(
                cluster, scheduler, seed=scenario.seed + repetition
            )
            for job_config in workload.job_configs():
                simulator.submit_job(job_config, simulator_profile)
            result = simulator.run()
            if first_result is None:
                first_result = result
            means.append(result.mean_response_time)
        traces = first_result.job_traces
        return PredictionResult(
            backend=self.name,
            scenario=scenario,
            total_seconds=statistics.median(means),
            phases={
                "map": _mean(trace.average_map_duration() for trace in traces),
                "shuffle-sort": _mean(
                    trace.average_shuffle_sort_duration() for trace in traces
                ),
                "merge": _mean(trace.average_merge_duration() for trace in traces),
            },
            metadata={
                "repetitions": scenario.repetitions,
                "repetition_means": tuple(means),
                "makespan": first_result.makespan,
                "data_local_fraction": first_result.metrics.data_local_fraction,
            },
        )


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
