"""Prediction backends: one uniform ``predict(scenario)`` over every engine.

The registry maps short string keys to backend classes:

* ``mva-forkjoin`` / ``mva-tripathi`` — the paper's analytic Hadoop 2.x model
  (:class:`~repro.core.model.Hadoop2PerformanceModel`) with either estimator;
* ``aria`` — ARIA makespan bounds from a job profile derived from the same
  uncontended service demands the analytic model uses;
* ``herodotou`` — the Herodotou phase model on dataflow/cost statistics;
* ``vianna`` — the slot-based Hadoop 1.x baseline model;
* ``simulator`` — the discrete-event YARN simulator (median of the mean job
  response time over ``scenario.repetitions`` seeded runs — the "measured"
  value of the evaluation figures).

Backends are stateless: every :meth:`PredictionBackend.predict` call builds
its engine from the scenario alone, so instances can be shared across threads.
"""

from __future__ import annotations

import dataclasses
import statistics
from collections.abc import Sequence
from typing import ClassVar, Protocol, runtime_checkable

import numpy as np

from ..core.estimators import EstimatorKind
from ..core.model import Hadoop2PerformanceModel
from ..core.parameters import TaskClass
from ..exceptions import BackendCapabilityError, BackendError
from ..hadoop.failures import expected_inflation
from ..hadoop.simulator import ClusterSimulator
from ..static_models.aria import AriaJobProfile, AriaModel, batch_stage_bounds
from ..static_models.herodotou import CostStatistics, HerodotouJobModel, batch_estimate
from ..static_models.vianna import ViannaHadoop1Model
from .results import PredictionResult
from .scenario import Scenario

#: Sigmas of task-duration spread assumed when deriving ARIA's max durations.
_ARIA_SPREAD_SIGMAS = 2.0


@runtime_checkable
class PredictionBackend(Protocol):
    """A named engine that turns a :class:`Scenario` into a :class:`PredictionResult`.

    Backends may additionally declare two class attributes consumed by the
    service and the persistent store:

    * ``version`` (int, default 1) — bump whenever the backend's numerical
      behaviour changes; stored results recorded under an older version are
      treated as stale;
    * ``cpu_bound`` (bool, default False) — marks backends whose ``predict``
      does enough Python-level work that the GIL serialises a thread pool;
      the service's ``execution="process"`` mode ships those to a process
      pool instead.

    Backends may also implement an optional batch capability::

        def predict_batch(self, scenarios: Sequence[Scenario]) -> list[PredictionResult]

    evaluating a whole grid in one call (vectorised arithmetic, warm-started
    fixed points, ...).  The service dispatches suite misses to
    ``predict_batch`` when present (see
    :meth:`~repro.api.service.PredictionService.evaluate_suite`); results
    must be returned in input order and agree with per-scenario ``predict``
    up to numerical tolerance (batch paths may reorder float reductions or
    warm-start iterative solves).
    """

    name: ClassVar[str]

    def predict(self, scenario: Scenario) -> PredictionResult:
        """Evaluate one scenario."""
        ...


_REGISTRY: dict[str, type] = {}


def register_backend(name: str):
    """Class decorator registering a backend under a string key."""

    def decorator(cls):
        if name in _REGISTRY:
            raise BackendError(f"backend {name!r} is already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def backend_names() -> list[str]:
    """Sorted names of all registered backends."""
    return sorted(_REGISTRY)


def backend_version(name: str) -> int | None:
    """Behaviour version of a registered backend; ``None`` when unregistered.

    The persistent result store records this next to every result and treats
    any mismatch on load as a stale record.
    """
    cls = _REGISTRY.get(name)
    return getattr(cls, "version", 1) if cls is not None else None


def backend_is_cpu_bound(name: str) -> bool:
    """Whether a backend benefits from process-pool (GIL-free) execution."""
    return bool(getattr(_REGISTRY.get(name), "cpu_bound", False))


def backend_supports_batch(name: str) -> bool:
    """Whether a registered backend implements ``predict_batch``."""
    return callable(getattr(_REGISTRY.get(name), "predict_batch", None))


def _grid_order(scenarios: Sequence[Scenario]) -> list[int]:
    """Indices ordering a grid so consecutive scenarios are near neighbours.

    Warm-started backends seed each fixed point from the previously solved
    scenario of the same family (workload, variability, concurrency); sorting
    the grid axes makes that previous point the nearest already-solved grid
    neighbour along the innermost axis.
    """

    def sort_key(index: int):
        scenario = scenarios[index]
        return (
            scenario.workload,
            scenario.duration_cv,
            scenario.num_jobs,
            scenario.block_size_bytes,
            scenario.num_nodes,
            scenario.num_reduces,
            scenario.input_size_bytes,
            scenario.cache_key(),
        )

    return sorted(range(len(scenarios)), key=sort_key)


def _warm_start_family(scenario: Scenario) -> tuple:
    """Scenarios sharing this key exchange warm-start seeds.

    The seed is only a starting point — any family split is *correct* — but
    seeding across different workloads or concurrency levels would start far
    from the fixed point and waste iterations.
    """
    return (scenario.workload, scenario.duration_cv, scenario.num_jobs)


def _scaled_seed(previous_residences, previous_input, model_input):
    """Rescale a neighbour's converged residences to a new grid point.

    Residence times grow roughly in proportion to the uncontended service
    demands, so scaling each per-class, per-center residence by the demand
    ratio between the two grid points lands the seed much closer to the new
    fixed point than the raw neighbour state (measured: ~6% fewer total
    A2–A6 iterations on a 32-node×size grid versus unscaled seeds).
    """
    seed = {}
    for task_class, centers in previous_residences.items():
        previous_demands = previous_input.demands[task_class]
        new_demands = model_input.demands[task_class]
        seed[task_class] = {}
        for center, residence in centers.items():
            previous_demand = previous_demands.demand(center)
            if previous_demand > 0:
                residence = residence * (new_demands.demand(center) / previous_demand)
            seed[task_class][center] = residence
    return seed


def create_backend(name: str, **options) -> PredictionBackend:
    """Instantiate a backend by name (``options`` go to its constructor)."""
    try:
        cls = _REGISTRY[name]
    except KeyError as exc:
        raise BackendError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from exc
    return cls(**options)


def _fair_share(total: int, num_jobs: int) -> int:
    """Per-job share of ``total`` slots when ``num_jobs`` run concurrently."""
    return max(1, total // num_jobs)


# -- graceful degradation under failure specs ----------------------------------
#
# Only the simulator models failures mechanistically.  The analytic backends
# follow a strict contract: apply an expected-value inflation correction where
# the model supports it (stragglers + task re-execution are mean-field
# effects), and *decline* — a structured BackendCapabilityError, never a
# silently failure-free number — where it doesn't (mid-run node loss and
# speculative races are scheduling-history dependent).


def _failure_inflation_factor(scenario: Scenario, backend_name: str) -> float:
    """Expected-value correction factor for an analytic backend, or raise.

    Returns 1.0 for failure-free scenarios.  Raises
    :class:`~repro.exceptions.BackendCapabilityError` for spec features with
    no closed-form correction (node failures, speculative execution).
    """
    spec = scenario.failures
    if spec is None or spec.is_noop:
        return 1.0
    if spec.node_failure_times:
        raise BackendCapabilityError(
            f"backend {backend_name!r} cannot model mid-run node failures; "
            "use the simulator backend for this failure spec"
        )
    if spec.speculative:
        raise BackendCapabilityError(
            f"backend {backend_name!r} cannot model speculative execution; "
            "use the simulator backend for this failure spec"
        )
    return expected_inflation(spec)


def _decline_failures(scenario: Scenario, backend_name: str) -> None:
    """Refuse any non-noop failure spec (backends without a correction)."""
    spec = scenario.failures
    if spec is not None and not spec.is_noop:
        raise BackendCapabilityError(
            f"backend {backend_name!r} has no failure model or correction; "
            "use the simulator backend for this failure spec"
        )


def _inflate_result(result: PredictionResult, factor: float) -> PredictionResult:
    """Scale a clean prediction by the expected failure inflation (>= 1)."""
    if factor == 1.0:
        return result
    return PredictionResult(
        backend=result.backend,
        scenario=result.scenario,
        total_seconds=result.total_seconds * factor,
        phases={name: seconds * factor for name, seconds in result.phases.items()},
        metadata={**result.metadata, "failure_inflation": factor},
    )


class _MvaBackend:
    """Shared implementation of the two analytic-model backends."""

    name: ClassVar[str]
    kind: ClassVar[EstimatorKind]

    def _result(
        self, scenario: Scenario, prediction, **extra_metadata
    ) -> PredictionResult:
        return PredictionResult(
            backend=self.name,
            scenario=scenario,
            total_seconds=prediction.job_response_time,
            phases={
                task_class.value: seconds
                for task_class, seconds in prediction.class_response_times.items()
            },
            metadata={
                "estimator": prediction.estimator.value,
                "iterations": prediction.iterations,
                "converged": prediction.converged,
                "tree_depth": prediction.tree_depth,
                "num_leaves": prediction.num_leaves,
                "timeline_makespan": prediction.timeline_makespan,
                **extra_metadata,
            },
        )

    def predict(self, scenario: Scenario) -> PredictionResult:
        factor = _failure_inflation_factor(scenario, self.name)
        model = Hadoop2PerformanceModel(scenario.model_input())
        prediction = model.predict(self.kind)
        return _inflate_result(self._result(scenario, prediction), factor)

    def predict_batch(self, scenarios: Sequence[Scenario]) -> list[PredictionResult]:
        """Grid-ordered, warm-started evaluation of a whole sweep.

        Scenarios are visited in grid order and each A1–A6 fixed point is
        seeded with the converged residence times of the previously solved
        scenario of the same family — the nearest already-solved grid
        neighbour.  The fixed point (and hence the prediction) is the same as
        the cold start's up to the solver epsilon; only the iteration count
        shrinks (``metadata["warm_started"]`` records which points were
        seeded).
        """
        factors = [
            _failure_inflation_factor(scenario, self.name) for scenario in scenarios
        ]
        results: list[PredictionResult | None] = [None] * len(scenarios)
        seeds: dict[tuple, tuple] = {}
        for index in _grid_order(scenarios):
            scenario = scenarios[index]
            family = _warm_start_family(scenario)
            model_input = scenario.model_input()
            previous = seeds.get(family)
            seed = (
                _scaled_seed(previous[0], previous[1], model_input)
                if previous is not None
                else None
            )
            model = Hadoop2PerformanceModel(model_input)
            prediction = model.predict(self.kind, initial_residences=seed)
            seeds[family] = (model.trace(self.kind).final_residences, model_input)
            results[index] = _inflate_result(
                self._result(scenario, prediction, warm_started=seed is not None),
                factors[index],
            )
        return results


@register_backend("mva-forkjoin")
class MvaForkJoinBackend(_MvaBackend):
    """Analytic Hadoop 2.x model with the fork/join estimator."""

    kind = EstimatorKind.FORK_JOIN


@register_backend("mva-tripathi")
class MvaTripathiBackend(_MvaBackend):
    """Analytic Hadoop 2.x model with the Tripathi-based estimator."""

    kind = EstimatorKind.TRIPATHI


@register_backend("aria")
class AriaBackend:
    """ARIA makespan bounds on a profile derived from the scenario's demands.

    Stage averages are the uncontended per-task service demands the analytic
    model uses; maxima assume a ``_ARIA_SPREAD_SIGMAS``-sigma spread at the
    scenario's task-duration CV.  Concurrent jobs get a fair share of the
    cluster's container slots.
    """

    name: ClassVar[str]

    def predict(self, scenario: Scenario) -> PredictionResult:
        factor = _failure_inflation_factor(scenario, self.name)
        model_input = scenario.model_input()
        spread = 1.0 + _ARIA_SPREAD_SIGMAS * scenario.duration_cv

        def demand_seconds(task_class: TaskClass) -> float:
            demands = model_input.demands[task_class]
            return demands.cpu_seconds + demands.disk_seconds + demands.network_seconds

        avg_map = demand_seconds(TaskClass.MAP)
        avg_shuffle = demand_seconds(TaskClass.SHUFFLE_SORT)
        avg_reduce = demand_seconds(TaskClass.MERGE)
        profile = AriaJobProfile(
            num_maps=model_input.num_maps,
            num_reduces=model_input.num_reduces,
            avg_map_seconds=avg_map,
            max_map_seconds=avg_map * spread,
            avg_shuffle_seconds=avg_shuffle,
            max_shuffle_seconds=avg_shuffle * spread,
            avg_reduce_seconds=avg_reduce,
            max_reduce_seconds=avg_reduce * spread,
        )
        cluster = scenario.cluster_config()
        map_slots = _fair_share(cluster.total_map_capacity(), scenario.num_jobs)
        reduce_slots = _fair_share(cluster.total_reduce_capacity(), scenario.num_jobs)
        model = AriaModel(profile)
        bounds = model.job_bounds(map_slots, reduce_slots)
        result = PredictionResult(
            backend=self.name,
            scenario=scenario,
            total_seconds=bounds.average_seconds,
            phases={
                "map": model.map_stage_bounds(map_slots).average_seconds,
                "shuffle-sort": model.shuffle_stage_bounds(reduce_slots).average_seconds,
                "merge": model.reduce_stage_bounds(reduce_slots).average_seconds,
            },
            metadata={
                "lower_seconds": bounds.lower_seconds,
                "upper_seconds": bounds.upper_seconds,
                "map_slots": map_slots,
                "reduce_slots": reduce_slots,
            },
        )
        return _inflate_result(result, factor)

    def predict_batch(self, scenarios: Sequence[Scenario]) -> list[PredictionResult]:
        """Vectorised sweep: the whole grid's bounds as stacked arrays.

        Per-scenario primitives (task counts, demand totals, fair-share
        slots) are stacked into NumPy arrays and the makespan-theorem bounds
        evaluate once per stage over the grid
        (:func:`~repro.static_models.aria.batch_stage_bounds`), with the
        scalar path's exact arithmetic.
        """
        factors = [
            _failure_inflation_factor(scenario, self.name) for scenario in scenarios
        ]
        count = len(scenarios)
        num_maps = np.empty(count)
        num_reduces = np.empty(count)
        stage_avgs = {
            TaskClass.MAP: np.empty(count),
            TaskClass.SHUFFLE_SORT: np.empty(count),
            TaskClass.MERGE: np.empty(count),
        }
        spread = np.empty(count)
        map_slots = np.empty(count, dtype=int)
        reduce_slots = np.empty(count, dtype=int)
        for index, scenario in enumerate(scenarios):
            model_input = scenario.model_input()
            cluster = scenario.cluster_config()
            num_maps[index] = model_input.num_maps
            num_reduces[index] = model_input.num_reduces
            for task_class, values in stage_avgs.items():
                demands = model_input.demands[task_class]
                values[index] = (
                    demands.cpu_seconds + demands.disk_seconds + demands.network_seconds
                )
            spread[index] = 1.0 + _ARIA_SPREAD_SIGMAS * scenario.duration_cv
            map_slots[index] = _fair_share(
                cluster.total_map_capacity(), scenario.num_jobs
            )
            reduce_slots[index] = _fair_share(
                cluster.total_reduce_capacity(), scenario.num_jobs
            )
        stage_tasks = {
            TaskClass.MAP: (num_maps, map_slots),
            TaskClass.SHUFFLE_SORT: (num_reduces, reduce_slots),
            TaskClass.MERGE: (num_reduces, reduce_slots),
        }
        averages: dict[TaskClass, np.ndarray] = {}
        lower_total = np.zeros(count)
        upper_total = np.zeros(count)
        for task_class, (tasks, slots) in stage_tasks.items():
            avg = stage_avgs[task_class]
            lower, upper = batch_stage_bounds(tasks, avg, avg * spread, slots)
            averages[task_class] = 0.5 * (lower + upper)
            lower_total = lower_total + lower
            upper_total = upper_total + upper
        total = 0.5 * (lower_total + upper_total)
        return [
            _inflate_result(
                PredictionResult(
                    backend=self.name,
                    scenario=scenario,
                    total_seconds=float(total[index]),
                    phases={
                        task_class.value: float(averages[task_class][index])
                        for task_class in TaskClass.ordered()
                    },
                    metadata={
                        "lower_seconds": float(lower_total[index]),
                        "upper_seconds": float(upper_total[index]),
                        "map_slots": int(map_slots[index]),
                        "reduce_slots": int(reduce_slots[index]),
                    },
                ),
                factors[index],
            )
            for index, scenario in enumerate(scenarios)
        ]


@register_backend("herodotou")
class HerodotouBackend:
    """Herodotou static phase model (waves over fair-share slots)."""

    name: ClassVar[str]

    def predict(self, scenario: Scenario) -> PredictionResult:
        factor = _failure_inflation_factor(scenario, self.name)
        profile = scenario.profile()
        environment = self._environment(scenario)
        dataflow = profile.herodotou_dataflow(scenario.job_configs()[0])
        estimate = HerodotouJobModel(environment).estimate(dataflow)
        result = PredictionResult(
            backend=self.name,
            scenario=scenario,
            total_seconds=estimate.total_seconds,
            phases={
                "map": estimate.map_stage_seconds,
                "shuffle-sort": 0.0,
                "merge": estimate.reduce_stage_seconds,
            },
            metadata={
                "map_waves": estimate.map_waves,
                "reduce_waves": estimate.reduce_waves,
                "map_task_seconds": estimate.map_phases.total,
                "reduce_task_seconds": estimate.reduce_phases.total,
            },
        )
        return _inflate_result(result, factor)

    @staticmethod
    def _environment(scenario: Scenario):
        environment = scenario.profile().herodotou_environment(
            scenario.cluster_config()
        )
        if scenario.num_jobs > 1:
            environment = dataclasses.replace(
                environment,
                map_slots_per_node=_fair_share(
                    environment.map_slots_per_node, scenario.num_jobs
                ),
                reduce_slots_per_node=_fair_share(
                    environment.reduce_slots_per_node, scenario.num_jobs
                ),
            )
        return environment

    def predict_batch(self, scenarios: Sequence[Scenario]) -> list[PredictionResult]:
        """Vectorised sweep: all phase costs evaluated as stacked arrays.

        Dataflow and cost statistics are stacked per grid point and the
        phase-cost formulas run once over the grid
        (:func:`~repro.static_models.herodotou.batch_estimate`), mirroring
        the scalar model's arithmetic.
        """
        factors = [
            _failure_inflation_factor(scenario, self.name) for scenario in scenarios
        ]
        # Per-byte cost statistics, stacked straight off the dataclass so the
        # name list cannot drift from CostStatistics (and batch_estimate's
        # matching keyword raises immediately if it does).
        cost_names = tuple(
            field.name for field in dataclasses.fields(CostStatistics)
        )
        dataflow_names = (
            "split_bytes",
            "map_output_bytes",
            "sort_buffer_bytes",
            "reduce_input_bytes",
            "reduce_output_bytes",
            "num_maps",
            "num_reduces",
            "output_replication",
        )
        environment_names = ("total_map_slots", "total_reduce_slots")
        fields: dict[str, list[float]] = {
            name: []
            for name in (
                *dataflow_names,
                *environment_names,
                "remote_fraction",
                *cost_names,
            )
        }
        for scenario in scenarios:
            environment = self._environment(scenario)
            dataflow = scenario.profile().herodotou_dataflow(
                scenario.job_configs()[0]
            )
            for name in dataflow_names:
                fields[name].append(getattr(dataflow, name))
            for name in environment_names:
                fields[name].append(getattr(environment, name))
            fields["remote_fraction"].append(
                (environment.num_nodes - 1) / environment.num_nodes
                if environment.num_nodes > 1
                else 0.0
            )
            for name in cost_names:
                fields[name].append(getattr(environment.costs, name))
        estimate = batch_estimate(
            **{name: np.asarray(values) for name, values in fields.items()}
        )
        map_stage = estimate.map_stage_seconds
        reduce_stage = estimate.reduce_stage_seconds
        total = estimate.total_seconds
        return [
            _inflate_result(
                PredictionResult(
                    backend=self.name,
                    scenario=scenario,
                    total_seconds=float(total[index]),
                    phases={
                        "map": float(map_stage[index]),
                        "shuffle-sort": 0.0,
                        "merge": float(reduce_stage[index]),
                    },
                    metadata={
                        "map_waves": int(estimate.map_waves[index]),
                        "reduce_waves": int(estimate.reduce_waves[index]),
                        "map_task_seconds": float(estimate.map_task_seconds[index]),
                        "reduce_task_seconds": float(
                            estimate.reduce_task_seconds[index]
                        ),
                    },
                ),
                factors[index],
            )
            for index, scenario in enumerate(scenarios)
        ]


@register_backend("vianna")
class ViannaBackend:
    """Vianna et al.'s slot-based Hadoop 1.x baseline model."""

    name: ClassVar[str]

    def __init__(self, map_slots_per_node: int = 2, reduce_slots_per_node: int = 2) -> None:
        self.map_slots_per_node = map_slots_per_node
        self.reduce_slots_per_node = reduce_slots_per_node

    def _result(
        self, scenario: Scenario, prediction, **extra_metadata
    ) -> PredictionResult:
        return PredictionResult(
            backend=self.name,
            scenario=scenario,
            total_seconds=prediction.job_response_time,
            phases={
                task_class.value: seconds
                for task_class, seconds in prediction.class_response_times.items()
            },
            metadata={
                "iterations": prediction.iterations,
                "converged": prediction.converged,
                "map_slots_per_node": self.map_slots_per_node,
                "reduce_slots_per_node": self.reduce_slots_per_node,
                **extra_metadata,
            },
        )

    def predict(self, scenario: Scenario) -> PredictionResult:
        _decline_failures(scenario, self.name)
        model = ViannaHadoop1Model(
            scenario.model_input(),
            map_slots_per_node=self.map_slots_per_node,
            reduce_slots_per_node=self.reduce_slots_per_node,
        )
        return self._result(scenario, model.predict())

    def predict_batch(self, scenarios: Sequence[Scenario]) -> list[PredictionResult]:
        """Grid-ordered sweep on the array-based solver path, warm-started.

        Each point runs the Hadoop 1.x fixed point with the vectorised
        timeline/overlap machinery of :mod:`repro.core.fast_timeline`
        (identical placement, NumPy overlap sums) and is seeded from the
        previously solved grid neighbour of its family — the two levers that
        make a dense grid orders of magnitude cheaper than per-scenario
        ``predict`` calls.
        """
        for scenario in scenarios:
            _decline_failures(scenario, self.name)
        results: list[PredictionResult | None] = [None] * len(scenarios)
        seeds: dict[tuple, tuple] = {}
        for index in _grid_order(scenarios):
            scenario = scenarios[index]
            family = _warm_start_family(scenario)
            model = ViannaHadoop1Model(
                scenario.model_input(),
                map_slots_per_node=self.map_slots_per_node,
                reduce_slots_per_node=self.reduce_slots_per_node,
                fast_timeline=True,
            )
            previous = seeds.get(family)
            seed = (
                _scaled_seed(previous[0], previous[1], model.model_input)
                if previous is not None
                else None
            )
            prediction = model.predict(initial_residences=seed)
            seeds[family] = (model.trace.final_residences, model.model_input)
            results[index] = self._result(
                scenario, prediction, warm_started=seed is not None
            )
        return results


@register_backend("simulator")
class SimulatorBackend:
    """Discrete-event YARN simulator — the evaluation's "measured" series.

    Runs ``scenario.repetitions`` simulations with seeds ``seed + i`` and
    reports the median of the per-run mean job response times, exactly as the
    experiment runner has always derived the measurement.
    """

    name: ClassVar[str]
    #: The discrete-event loop is pure Python: fan it out over processes.
    cpu_bound: ClassVar[bool] = True

    #: Failure counters surfaced in result metadata (summed over repetitions).
    _FAILURE_COUNTERS = (
        "task_failures",
        "task_reexecutions",
        "node_failures",
        "containers_killed",
        "maps_invalidated",
        "speculative_launched",
        "speculative_wins",
    )

    def predict(self, scenario: Scenario) -> PredictionResult:
        workload = scenario.workload_spec()
        cluster = scenario.cluster_config()
        scheduler = scenario.scheduler_config()
        simulator_profile = workload.profile.simulator_profile()
        failures = scenario.failures
        inject = failures is not None and not failures.is_noop
        means: list[float] = []
        first_result = None
        failure_counts = dict.fromkeys(self._FAILURE_COUNTERS, 0)
        for repetition in range(scenario.repetitions):
            simulator = ClusterSimulator(
                cluster,
                scheduler,
                seed=scenario.seed + repetition,
                failures=failures,
            )
            for job_config in workload.job_configs():
                simulator.submit_job(job_config, simulator_profile)
            result = simulator.run()
            if first_result is None:
                first_result = result
            means.append(result.mean_response_time)
            if inject:
                for counter in self._FAILURE_COUNTERS:
                    failure_counts[counter] += getattr(result.metrics, counter)
        traces = first_result.job_traces
        metadata = {
            "repetitions": scenario.repetitions,
            "repetition_means": tuple(means),
            "makespan": first_result.makespan,
            "data_local_fraction": first_result.metrics.data_local_fraction,
        }
        if inject:
            metadata["failures"] = failure_counts
        return PredictionResult(
            backend=self.name,
            scenario=scenario,
            total_seconds=statistics.median(means),
            phases={
                "map": _mean(trace.average_map_duration() for trace in traces),
                "shuffle-sort": _mean(
                    trace.average_shuffle_sort_duration() for trace in traces
                ),
                "merge": _mean(trace.average_merge_duration() for trace in traces),
            },
            metadata=metadata,
        )


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
