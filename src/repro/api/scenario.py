"""Scenario specifications: the single input type of every prediction backend.

A :class:`Scenario` freezes everything a backend needs to produce a job
response-time estimate — the cluster (explicit :class:`~repro.config.ClusterConfig`
or the paper's testbed scaled to ``num_nodes``), the workload (a registered
application profile plus sizing), the scheduler, and the randomness contract
(``seed`` + ``repetitions`` for stochastic backends).  Scenarios serialise to
plain JSON dictionaries (:meth:`Scenario.to_dict` / :meth:`Scenario.from_dict`)
so suites can be stored in files, shipped over the wire, and used as cache
keys.

A :class:`ScenarioSuite` is an ordered collection of scenarios, either listed
explicitly or expanded from a base scenario plus a sweep grid over
``num_nodes`` / ``num_jobs`` / ``input_size_bytes`` — the three axes of the
paper's evaluation figures.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass

from ..config import (
    ClusterConfig,
    ContainerSpec,
    FailureSpec,
    JobConfig,
    NodeSpec,
    SchedulerConfig,
)
from ..exceptions import ConfigurationError
from ..core.parameters import ModelInput
from ..exceptions import ValidationError
from ..units import GiB, MiB, parse_size
from ..workloads.generators import WorkloadSpec, paper_cluster, paper_scheduler
from ..workloads.grep import grep_profile
from ..workloads.iterative import iterative_profile
from ..workloads.profiles import ApplicationProfile, model_input_from_profile
from ..workloads.recovery import recovery_profile
from ..workloads.terasort import terasort_profile
from ..workloads.wordcount import wordcount_profile

#: Version of the scenario specification semantics.  Bump whenever the
#: meaning of a scenario field (or how backends consume one) changes in a way
#: that invalidates previously computed results; the persistent result store
#: records this version and skips records written under a different one.
SCENARIO_SPEC_VERSION = 1

#: Registered application-profile factories, keyed by workload name.
WORKLOAD_PROFILES: dict[str, Callable[[float], ApplicationProfile]] = {
    "wordcount": wordcount_profile,
    "terasort": terasort_profile,
    "grep": grep_profile,
}

#: Sweep axes accepted by :meth:`ScenarioSuite.from_sweep` and suite JSON.
_SWEEP_AXES = ("num_nodes", "num_jobs", "input_size_bytes")


def register_workload_profile(
    name: str, factory: Callable[[float], ApplicationProfile]
) -> None:
    """Register a new workload profile factory (``factory(duration_cv)``).

    Re-registering an existing name is rejected: scenarios (and the service's
    result cache) identify workloads by name, so swapping the factory under a
    live name would silently invalidate cached predictions.
    """
    if not name:
        raise ValidationError("workload name must be non-empty")
    if name in WORKLOAD_PROFILES:
        raise ValidationError(f"workload {name!r} is already registered")
    WORKLOAD_PROFILES[name] = factory


# The iterative/ML-style and failure-recovery profiles arrive through the
# public registration path, exactly as downstream users register their own.
register_workload_profile("iterative-ml", iterative_profile)
register_workload_profile("failure-recovery", recovery_profile)


# -- nested config (de)serialisation ------------------------------------------


def _node_to_dict(node: NodeSpec) -> dict:
    return dataclasses.asdict(node)


def _cluster_to_dict(cluster: ClusterConfig) -> dict:
    return {
        "num_nodes": cluster.num_nodes,
        "node": _node_to_dict(cluster.node),
        "map_container": dataclasses.asdict(cluster.map_container),
        "reduce_container": dataclasses.asdict(cluster.reduce_container),
        "yarn_memory_fraction": cluster.yarn_memory_fraction,
        "yarn_vcore_fraction": cluster.yarn_vcore_fraction,
        "max_maps_per_node": cluster.max_maps_per_node,
        "max_reduces_per_node": cluster.max_reduces_per_node,
        "num_racks": cluster.num_racks,
    }


def _cluster_from_dict(data: Mapping) -> ClusterConfig:
    payload = dict(data)
    try:
        if "node" in payload:
            payload["node"] = NodeSpec(**payload["node"])
        for key in ("map_container", "reduce_container"):
            if key in payload:
                payload[key] = ContainerSpec(**payload[key])
        return ClusterConfig(**payload)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"invalid cluster specification: {exc}") from exc


def _scheduler_from_dict(data: Mapping) -> SchedulerConfig:
    try:
        return SchedulerConfig(**dict(data))
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"invalid scheduler specification: {exc}") from exc


def _failures_from_dict(data: Mapping) -> FailureSpec:
    try:
        return FailureSpec.from_dict(dict(data))
    except (TypeError, ValueError, ConfigurationError) as exc:
        raise ValidationError(f"invalid failure specification: {exc}") from exc


@dataclass(frozen=True)
class Scenario:
    """One fully specified prediction scenario (cluster + workload + scheduler + seed)."""

    workload: str = "wordcount"
    input_size_bytes: int = 1 * GiB
    block_size_bytes: int = 128 * MiB
    num_nodes: int = 4
    num_jobs: int = 1
    num_reduces: int = 4
    duration_cv: float = 0.3
    submission_gap_seconds: float = 0.0
    #: Base seed of stochastic backends (the simulator uses seed + repetition).
    seed: int = 1234
    #: Number of simulator repetitions the measured value is the median of.
    repetitions: int = 3
    #: Explicit cluster; ``None`` means the paper testbed with ``num_nodes`` nodes.
    cluster: ClusterConfig | None = None
    #: Explicit scheduler; ``None`` means the paper's Capacity configuration.
    scheduler: SchedulerConfig | None = None
    #: Failure injection; ``None`` (or a no-op spec) means failure-free.
    #: Omitted from :meth:`to_dict` when ``None`` so the cache keys of every
    #: pre-existing scenario are preserved.
    failures: FailureSpec | None = None

    def __post_init__(self) -> None:
        if self.workload not in WORKLOAD_PROFILES:
            raise ValidationError(
                f"unknown workload {self.workload!r}; "
                f"registered: {sorted(WORKLOAD_PROFILES)}"
            )
        if self.input_size_bytes <= 0:
            raise ValidationError("input_size_bytes must be positive")
        if self.block_size_bytes <= 0:
            raise ValidationError("block_size_bytes must be positive")
        if self.num_nodes <= 0:
            raise ValidationError("num_nodes must be positive")
        if self.num_jobs <= 0:
            raise ValidationError("num_jobs must be positive")
        if self.num_reduces <= 0:
            raise ValidationError("num_reduces must be positive")
        if self.duration_cv < 0:
            raise ValidationError("duration_cv must be non-negative")
        if self.submission_gap_seconds < 0:
            raise ValidationError("submission_gap_seconds must be non-negative")
        if self.repetitions <= 0:
            raise ValidationError("repetitions must be positive")
        if self.cluster is not None and self.cluster.num_nodes != self.num_nodes:
            raise ValidationError(
                "explicit cluster has "
                f"{self.cluster.num_nodes} nodes but the scenario says {self.num_nodes}"
            )

    # -- resolved views -------------------------------------------------------

    def profile(self) -> ApplicationProfile:
        """The application profile of this scenario's workload."""
        return WORKLOAD_PROFILES[self.workload](self.duration_cv)

    def cluster_config(self) -> ClusterConfig:
        """Explicit cluster, or the paper testbed scaled to ``num_nodes``."""
        if self.cluster is not None:
            return self.cluster
        return paper_cluster(self.num_nodes)

    def scheduler_config(self) -> SchedulerConfig:
        """Explicit scheduler, or the paper's Capacity-scheduler configuration."""
        if self.scheduler is not None:
            return self.scheduler
        return paper_scheduler()

    def workload_spec(self) -> WorkloadSpec:
        """The multi-job workload specification of this scenario."""
        return WorkloadSpec(
            profile=self.profile(),
            input_size_bytes=self.input_size_bytes,
            block_size_bytes=self.block_size_bytes,
            num_reduces=self.num_reduces,
            num_jobs=self.num_jobs,
            submission_gap_seconds=self.submission_gap_seconds,
        )

    def job_configs(self) -> list[JobConfig]:
        """One :class:`~repro.config.JobConfig` per concurrent job."""
        return self.workload_spec().job_configs()

    def model_input(self) -> ModelInput:
        """Analytic-model input built exactly as the experiment runner does."""
        return model_input_from_profile(
            self.profile(),
            self.cluster_config(),
            self.job_configs()[0],
            num_jobs=self.num_jobs,
            slow_start=self.scheduler_config().slowstart_enabled,
        )

    def with_updates(self, **changes) -> "Scenario":
        """Copy of the scenario with ``changes`` applied (convenience for sweeps)."""
        return dataclasses.replace(self, **changes)

    # -- (de)serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable dictionary; inverse of :meth:`from_dict`."""
        data = {
            "workload": self.workload,
            "input_size_bytes": self.input_size_bytes,
            "block_size_bytes": self.block_size_bytes,
            "num_nodes": self.num_nodes,
            "num_jobs": self.num_jobs,
            "num_reduces": self.num_reduces,
            "duration_cv": self.duration_cv,
            "submission_gap_seconds": self.submission_gap_seconds,
            "seed": self.seed,
            "repetitions": self.repetitions,
        }
        if self.cluster is not None:
            data["cluster"] = _cluster_to_dict(self.cluster)
        if self.scheduler is not None:
            data["scheduler"] = dataclasses.asdict(self.scheduler)
        if self.failures is not None:
            data["failures"] = self.failures.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "Scenario":
        """Build a scenario from a dictionary (sizes may be strings like ``"5GB"``)."""
        if not isinstance(data, Mapping):
            raise ValidationError(f"scenario must be a mapping, got {type(data).__name__}")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValidationError(
                f"unknown scenario fields {sorted(unknown)}; known: {sorted(known)}"
            )
        payload = dict(data)
        for key in ("input_size_bytes", "block_size_bytes"):
            if key in payload:
                payload[key] = parse_size(payload[key])
        if payload.get("cluster") is not None:
            payload["cluster"] = _cluster_from_dict(payload["cluster"])
        if payload.get("scheduler") is not None:
            payload["scheduler"] = _scheduler_from_dict(payload["scheduler"])
        if payload.get("failures") is not None and not isinstance(
            payload["failures"], FailureSpec
        ):
            payload["failures"] = _failures_from_dict(payload["failures"])
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ValidationError(f"invalid scenario: {exc}") from exc

    def to_json(self, **dumps_kwargs) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a scenario from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(data)

    def cache_key(self) -> str:
        """Stable key identifying this scenario (used by the prediction cache)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def describe(self) -> str:
        """Short human-readable label for tables and logs."""
        gib = self.input_size_bytes / GiB
        label = (
            f"{self.workload} {gib:g}GiB x{self.num_jobs} "
            f"on {self.num_nodes} nodes (r={self.num_reduces})"
        )
        if self.failures is not None and not self.failures.is_noop:
            parts = []
            if self.failures.task_failure_rate > 0:
                parts.append(f"p={self.failures.task_failure_rate:g}")
            if self.failures.straggler_fraction > 0:
                parts.append(
                    f"strag={self.failures.straggler_fraction:g}"
                    f"x{self.failures.straggler_slowdown:g}"
                )
            if self.failures.node_failure_times:
                parts.append(f"nodes={len(self.failures.node_failure_times)}")
            if self.failures.speculative:
                parts.append("spec")
            label += f" [faults: {', '.join(parts)}]"
        return label


@dataclass(frozen=True)
class ScenarioSuite:
    """An ordered, named collection of scenarios (one sweep or benchmark)."""

    name: str
    scenarios: tuple[Scenario, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("suite name must be non-empty")
        if not self.scenarios:
            raise ValidationError("suite must contain at least one scenario")

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    @classmethod
    def from_sweep(
        cls,
        name: str,
        base: Scenario,
        *,
        num_nodes: Sequence[int] | None = None,
        num_jobs: Sequence[int] | None = None,
        input_size_bytes: Sequence[int | str] | None = None,
        description: str = "",
    ) -> "ScenarioSuite":
        """Cross product of the given axes applied on top of ``base``.

        Axis order is nodes (outer) → jobs → input size (inner), so a sweep
        over one axis preserves the order in which values were given.
        """
        node_values = list(num_nodes) if num_nodes else [base.num_nodes]
        job_values = list(num_jobs) if num_jobs else [base.num_jobs]
        size_values = (
            [parse_size(value) for value in input_size_bytes]
            if input_size_bytes
            else [base.input_size_bytes]
        )
        scenarios = [
            base.with_updates(
                num_nodes=nodes,
                num_jobs=jobs,
                input_size_bytes=size,
                # An explicit cluster scales with the node axis.
                cluster=(
                    base.cluster.with_nodes(nodes) if base.cluster is not None else None
                ),
            )
            for nodes in node_values
            for jobs in job_values
            for size in size_values
        ]
        return cls(name=name, scenarios=tuple(scenarios), description=description)

    def to_dict(self) -> dict:
        """JSON-serialisable dictionary; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "description": self.description,
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSuite":
        """Build a suite from an explicit list or a base + sweep grid.

        Two shapes are accepted::

            {"name": ..., "scenarios": [{...}, {...}]}
            {"name": ..., "base": {...}, "sweep": {"num_nodes": [4, 6, 8]}}
        """
        if not isinstance(data, Mapping):
            raise ValidationError(f"suite must be a mapping, got {type(data).__name__}")
        name = data.get("name")
        if not name:
            raise ValidationError("suite requires a non-empty 'name'")
        description = data.get("description", "")
        if "scenarios" in data:
            scenarios = tuple(Scenario.from_dict(entry) for entry in data["scenarios"])
            return cls(name=name, scenarios=scenarios, description=description)
        if "base" in data:
            sweep = data.get("sweep", {})
            unknown = set(sweep) - set(_SWEEP_AXES)
            if unknown:
                raise ValidationError(
                    f"unknown sweep axes {sorted(unknown)}; known: {list(_SWEEP_AXES)}"
                )
            return cls.from_sweep(
                name,
                Scenario.from_dict(data["base"]),
                num_nodes=sweep.get("num_nodes"),
                num_jobs=sweep.get("num_jobs"),
                input_size_bytes=sweep.get("input_size_bytes"),
                description=description,
            )
        raise ValidationError("suite requires either 'scenarios' or 'base' (+ 'sweep')")

    def to_json(self, **dumps_kwargs) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSuite":
        """Parse a suite from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid suite JSON: {exc}") from exc
        return cls.from_dict(data)
