"""Batch prediction service: suites × backends with caching and parallelism.

:class:`PredictionService` is the one entry point the CLI, the experiment
runner, and library users share.  It

* resolves backend names through the registry and shares the (stateless)
  backend instances across calls;
* memoises every ``(scenario, backend)`` evaluation under the scenario's
  stable :meth:`~repro.api.scenario.Scenario.cache_key`, so sweeps that
  revisit a point (and repeated figure runs) pay for it once;
* optionally persists every evaluation through a
  :class:`~repro.api.store.ResultStore`, so sweeps survive process restarts
  and repeated runs replay completed points from disk;
* fans a :class:`~repro.api.scenario.ScenarioSuite` out over a pluggable
  executor layer — ``execution="serial"`` (no pool, deterministic debugging),
  ``"thread"`` (the default; fine for the NumPy-heavy analytic backends,
  which release the GIL), or ``"process"`` (CPU-bound backends such as the
  pure-Python simulator are shipped to a
  :class:`~concurrent.futures.ProcessPoolExecutor`, sidestepping the GIL).

Results are deterministic in every mode because every backend derives its
seeds from the scenario alone; the execution-mode equivalence tests pin this
down backend by backend.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import threading
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..exceptions import BackendError, StoreError, ValidationError
from .backends import (
    PredictionBackend,
    backend_is_cpu_bound,
    backend_names,
    backend_supports_batch,
    create_backend,
)
from .results import BackendComparison, PredictionResult
from .scenario import Scenario, ScenarioSuite
from .store import ResultStore

logger = logging.getLogger(__name__)

#: Default baseline backend for comparisons (the "measured" series).
DEFAULT_BASELINE = "simulator"

#: Accepted values of the service's ``execution`` parameter.
EXECUTION_MODES = ("serial", "thread", "process")


def _predict_in_subprocess(scenario_data: dict, backend: str, options: dict) -> dict:
    """Worker-side evaluation: plain dicts in, plain dicts out.

    Shipping JSON shapes instead of live objects keeps the contract
    pickle-trivial and start-method-agnostic; the parent rebuilds the
    :class:`PredictionResult` (and records it in cache + store) itself.
    """
    scenario = Scenario.from_dict(scenario_data)
    return create_backend(backend, **options).predict(scenario).to_dict()


@dataclass(frozen=True)
class ServiceStats:
    """Where the service's answers came from (one snapshot)."""

    #: Hits served from the in-memory cache.
    memory_hits: int = 0
    #: Hits served from the persistent result store.
    store_hits: int = 0
    #: Actual backend evaluations (cache and store both missed).
    evaluations: int = 0
    #: ``predict_batch`` dispatches performed by suite evaluation.
    batch_calls: int = 0
    #: Scenarios evaluated through those batch dispatches (each also counts
    #: as one evaluation in :attr:`evaluations`).
    batch_points: int = 0


@dataclass(frozen=True)
class SuiteResult:
    """Results of one suite evaluation: a (scenario × backend) grid."""

    suite: ScenarioSuite
    backends: tuple[str, ...]
    #: One ``{backend: result}`` mapping per scenario, in suite order.
    rows: tuple[dict[str, PredictionResult], ...]

    def series(self, backend: str) -> list[float]:
        """The ``total_seconds`` series of one backend across the suite."""
        if backend not in self.backends:
            raise BackendError(
                f"backend {backend!r} was not evaluated; have: {list(self.backends)}"
            )
        return [row[backend].total_seconds for row in self.rows]

    def to_dict(self) -> dict:
        """JSON-serialisable view of the whole grid."""
        return {
            "suite": self.suite.to_dict(),
            "backends": list(self.backends),
            "results": [
                {name: result.to_dict() for name, result in row.items()}
                for row in self.rows
            ],
        }


class PredictionService:
    """Evaluate scenarios across prediction backends, with caching."""

    def __init__(
        self,
        backends: Sequence[str] | None = None,
        max_workers: int | None = None,
        cache: bool = True,
        backend_options: dict[str, dict] | None = None,
        store: ResultStore | str | os.PathLike | None = None,
        execution: str = "thread",
        batch: bool = True,
    ) -> None:
        if execution not in EXECUTION_MODES:
            raise ValidationError(
                f"unknown execution mode {execution!r}; known: {list(EXECUTION_MODES)}"
            )
        self._backend_options = dict(backend_options or {})
        names = list(backends) if backends is not None else backend_names()
        self._backends: dict[str, PredictionBackend] = {
            name: create_backend(name, **self._backend_options.get(name, {}))
            for name in names
        }
        self._max_workers = max_workers
        self._cache_enabled = cache
        self._cache: dict[tuple[str, str], PredictionResult] = {}
        self._lock = threading.Lock()
        self._execution = execution
        #: Dispatch suite misses to batch-capable backends in one
        #: ``predict_batch`` call.  ``batch=False`` forces the per-scenario
        #: path (the benches use it as the batching baseline).
        self._batch_enabled = batch
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self._store = store
        # All counters below are read and written ONLY under ``self._lock``;
        # thread- and process-mode sweeps bump them from pool threads, so an
        # unlocked increment would drop updates.
        self._memory_hits = 0
        self._store_hits = 0
        self._evaluations = 0
        self._batch_calls = 0
        self._batch_points = 0

    # -- introspection --------------------------------------------------------

    def backends(self) -> list[str]:
        """Names of the backends this service evaluates by default."""
        with self._lock:
            return list(self._backends)

    @property
    def execution(self) -> str:
        """The configured execution mode (``serial`` / ``thread`` / ``process``)."""
        return self._execution

    @property
    def store(self) -> ResultStore | None:
        """The persistent result store, if one is attached."""
        return self._store

    @property
    def batch_enabled(self) -> bool:
        """Whether suite evaluation dispatches to ``predict_batch`` backends."""
        return self._batch_enabled

    def stats(self) -> ServiceStats:
        """Snapshot of cache-hit / store-hit / evaluation / batch counters."""
        with self._lock:
            return ServiceStats(
                memory_hits=self._memory_hits,
                store_hits=self._store_hits,
                evaluations=self._evaluations,
                batch_calls=self._batch_calls,
                batch_points=self._batch_points,
            )

    def cache_size(self) -> int:
        """Number of memoised (scenario, backend) evaluations."""
        with self._lock:
            return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all memoised evaluations (the persistent store is untouched)."""
        with self._lock:
            self._cache.clear()

    # -- evaluation -----------------------------------------------------------

    def _backend(self, name: str) -> PredictionBackend:
        # Constructed under the lock so concurrent suite evaluation with an
        # unconfigured backend cannot build (and race to publish) it twice.
        with self._lock:
            backend = self._backends.get(name)
            if backend is None:
                backend = create_backend(name, **self._backend_options.get(name, {}))
                self._backends[name] = backend
            return backend

    def _lookup(self, key: tuple[str, str]) -> PredictionResult | None:
        """Memory cache, then persistent store; updates the hit counters."""
        if self._cache_enabled:
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._memory_hits += 1
                    return cached
        if self._store is not None:
            stored = self._store.get(
                key[0], key[1], options=self._backend_options.get(key[1], {})
            )
            if stored is not None:
                with self._lock:
                    self._store_hits += 1
                    if self._cache_enabled:
                        self._cache[key] = stored
                return stored
        return None

    def _record_evaluation(self, key: tuple[str, str], result: PredictionResult) -> None:
        """Count one real evaluation and publish it to cache and store."""
        with self._lock:
            self._evaluations += 1
            if self._cache_enabled:
                self._cache[key] = result
        if self._store is not None:
            try:
                self._store.put(
                    key[0],
                    key[1],
                    result,
                    options=self._backend_options.get(key[1], {}),
                )
            except StoreError as exc:
                # An unwritable store degrades to in-memory caching rather
                # than killing a long sweep halfway through.
                logger.warning("could not persist result for %s: %s", key[1], exc)

    def evaluate(self, scenario: Scenario, backend: str) -> PredictionResult:
        """Evaluate one scenario with one backend (cached, store-backed)."""
        key = (scenario.cache_key(), backend)
        cached = self._lookup(key)
        if cached is not None:
            return cached
        result = self._backend(backend).predict(scenario)
        self._record_evaluation(key, result)
        return result

    def _evaluate_via_process(
        self, scenario: Scenario, backend: str, pool: ProcessPoolExecutor
    ) -> PredictionResult:
        """Evaluate one point in the process pool, falling back to in-process."""
        key = (scenario.cache_key(), backend)
        cached = self._lookup(key)
        if cached is not None:
            return cached
        try:
            payload = pool.submit(
                _predict_in_subprocess,
                scenario.to_dict(),
                backend,
                self._backend_options.get(backend, {}),
            ).result()
        except (BrokenProcessPool, OSError, ValidationError, BackendError) as exc:
            # ValidationError/BackendError here almost always mean the worker
            # process lacks a runtime registration the parent has (spawn and
            # forkserver start methods import a fresh registry); re-running
            # in-process either succeeds with the parent's registry or raises
            # the genuine application error.
            logger.warning(
                "process-pool evaluation of %s failed (%s); running in-process",
                backend,
                exc,
            )
            return self.evaluate(scenario, backend)
        result = PredictionResult.from_dict(payload)
        self._record_evaluation(key, result)
        return result

    def evaluate_many(
        self, scenario: Scenario, backends: Sequence[str] | None = None
    ) -> dict[str, PredictionResult]:
        """Evaluate one scenario with several backends (per the execution mode)."""
        names = list(backends) if backends is not None else self.backends()
        key = scenario.cache_key()
        results = self._evaluate_unique({(key, name): scenario for name in names})
        return {name: results[(key, name)] for name in names}

    def evaluate_suite(
        self,
        suite: ScenarioSuite,
        backends: Sequence[str] | None = None,
    ) -> SuiteResult:
        """Evaluate every (scenario, backend) pair of a suite.

        Duplicate sweep points share one evaluation.  The unique points are
        partitioned into memory hits, store hits (bulk-probed through
        :meth:`ResultStore.get_many`), and misses; misses of batch-capable
        backends are grouped per backend and dispatched in one
        ``predict_batch`` call, the rest fan out per the service's
        ``execution`` mode.  The partition is independent of the execution
        mode, so serial/thread/process sweeps stay numerically identical.
        """
        names = tuple(backends) if backends is not None else tuple(self.backends())
        keys = [scenario.cache_key() for scenario in suite.scenarios]
        unique: dict[tuple[str, str], Scenario] = {}
        for index, scenario in enumerate(suite.scenarios):
            for name in names:
                unique.setdefault((keys[index], name), scenario)
        results = self._evaluate_points(unique)
        rows = tuple(
            {name: results[(keys[index], name)] for name in names}
            for index in range(len(suite.scenarios))
        )
        return SuiteResult(suite=suite, backends=names, rows=rows)

    # -- point partitioning ---------------------------------------------------

    def probe_points(
        self, points: Sequence[tuple[str, str]]
    ) -> dict[tuple[str, str], str]:
        """Peek which ``(cache key, backend)`` points are already answered.

        Returns ``point -> "memory" | "store"`` for every answered point
        (one cache pass, one bulk store probe); unanswered points are
        absent.  Unlike :meth:`evaluate`, this never counts hits in
        :meth:`stats` — it exists for planners
        (:class:`~repro.api.sweep.SweepScheduler`) that want to know what a
        sweep would cost before running it.  Store records found here stay
        loaded in the store's index, so the subsequent evaluation pays no
        second disk read for them.
        """
        sources: dict[tuple[str, str], str] = {}
        misses: list[tuple[str, str]] = []
        with self._lock:
            for point in points:
                if self._cache_enabled and point in self._cache:
                    sources[point] = "memory"
                else:
                    misses.append(point)
        if self._store is not None and misses:
            stored = self._store.get_many(
                [
                    (key, backend, self._backend_options.get(backend, {}))
                    for key, backend in misses
                ]
            )
            for point in stored:
                sources[point] = "store"
        return sources

    def _evaluate_points(
        self, unique: dict[tuple[str, str], Scenario]
    ) -> dict[tuple[str, str], PredictionResult]:
        """Partition unique points into hits / batch groups / scalar tasks."""
        results: dict[tuple[str, str], PredictionResult] = {}
        misses: dict[tuple[str, str], Scenario] = {}
        with self._lock:
            for point, scenario in unique.items():
                hit = self._cache.get(point) if self._cache_enabled else None
                if hit is not None:
                    self._memory_hits += 1
                    results[point] = hit
                else:
                    misses[point] = scenario
        if self._store is not None and misses:
            stored = self._store.get_many(
                [
                    (key, backend, self._backend_options.get(backend, {}))
                    for key, backend in misses
                ]
            )
            if stored:
                with self._lock:
                    for point, result in stored.items():
                        self._store_hits += 1
                        if self._cache_enabled:
                            self._cache[point] = result
                        results[point] = result
                for point in stored:
                    misses.pop(point)
        batch_groups: dict[str, list[tuple[tuple[str, str], Scenario]]] = {}
        scalar: dict[tuple[str, str], Scenario] = {}
        for point, scenario in misses.items():
            if self._batch_enabled and backend_supports_batch(point[1]):
                batch_groups.setdefault(point[1], []).append((point, scenario))
            else:
                scalar[point] = scenario
        for backend in sorted(batch_groups):
            group = batch_groups[backend]
            if len(group) < 2:
                # A lone scenario gains nothing from batching; keep it on the
                # per-scenario path (which also honours instance-level
                # ``predict`` monkeypatching in tests).
                scalar.update(group)
                continue
            results.update(self._dispatch_batch(backend, group))
        if scalar:
            results.update(self._evaluate_unique(scalar))
        return results

    def _dispatch_batch(
        self,
        backend: str,
        group: list[tuple[tuple[str, str], Scenario]],
    ) -> dict[tuple[str, str], PredictionResult]:
        """One ``predict_batch`` call for all misses of one backend."""
        scenarios = [scenario for _, scenario in group]
        batch_results = self._backend(backend).predict_batch(scenarios)
        if len(batch_results) != len(group):
            raise BackendError(
                f"backend {backend!r} returned {len(batch_results)} batch results "
                f"for {len(group)} scenarios"
            )
        with self._lock:
            self._batch_calls += 1
            self._batch_points += len(group)
        results = {}
        for (point, _), result in zip(group, batch_results):
            self._record_evaluation(point, result)
            results[point] = result
        return results

    # -- executor layer -------------------------------------------------------

    def _evaluate_unique(
        self, unique: dict[tuple[str, str], Scenario]
    ) -> dict[tuple[str, str], PredictionResult]:
        """Dispatch deduplicated (key, backend) tasks per the execution mode."""
        if self._execution == "serial" or len(unique) <= 1:
            return {
                key: self.evaluate(scenario, key[1])
                for key, scenario in unique.items()
            }
        if self._execution == "process":
            pool = self._make_process_pool()
            if pool is not None:
                try:
                    return self._evaluate_threaded(unique, process_pool=pool)
                finally:
                    pool.shutdown()
        return self._evaluate_threaded(unique)

    def _evaluate_threaded(
        self,
        unique: dict[tuple[str, str], Scenario],
        process_pool: ProcessPoolExecutor | None = None,
    ) -> dict[tuple[str, str], PredictionResult]:
        """Thread-pool fan-out; CPU-bound tasks hop to ``process_pool`` if given."""

        def run(key: tuple[str, str], scenario: Scenario) -> PredictionResult:
            if process_pool is not None and backend_is_cpu_bound(key[1]):
                return self._evaluate_via_process(scenario, key[1], process_pool)
            return self.evaluate(scenario, key[1])

        max_workers = self._max_workers or min(len(unique), (os.cpu_count() or 2))
        with ThreadPoolExecutor(max_workers=max(1, max_workers)) as executor:
            futures = {
                key: executor.submit(run, key, scenario)
                for key, scenario in unique.items()
            }
            return {key: future.result() for key, future in futures.items()}

    def _make_process_pool(self) -> ProcessPoolExecutor | None:
        """A process pool, or ``None`` where subprocesses are unavailable.

        ``REPRO_MP_START_METHOD`` overrides the platform's multiprocessing
        start method (``fork`` / ``spawn`` / ``forkserver``) — CI uses it to
        exercise the stricter spawn path that macOS and Windows default to.
        """
        workers = self._max_workers or os.cpu_count() or 1
        try:
            mp_context = None
            method = os.environ.get("REPRO_MP_START_METHOD")
            if method:
                mp_context = multiprocessing.get_context(method)
            return ProcessPoolExecutor(max_workers=max(1, workers), mp_context=mp_context)
        except (NotImplementedError, ImportError, OSError, ValueError) as exc:
            logger.warning(
                "process pool unavailable (%s); falling back to thread execution", exc
            )
            return None

    def compare(
        self,
        scenario: Scenario,
        backends: Sequence[str] | None = None,
        baseline: str = DEFAULT_BASELINE,
    ) -> BackendComparison:
        """Evaluate several backends side by side against a baseline."""
        names = list(backends) if backends is not None else self.backends()
        if baseline not in names:
            names = [baseline, *names]
        results = self.evaluate_many(scenario, names)
        return BackendComparison(scenario=scenario, baseline=baseline, results=results)
