"""Batch prediction service: suites × backends with caching and parallelism.

:class:`PredictionService` is the one entry point the CLI, the experiment
runner, and library users share.  It

* resolves backend names through the registry and shares the (stateless)
  backend instances across calls;
* memoises every ``(scenario, backend)`` evaluation under the scenario's
  stable :meth:`~repro.api.scenario.Scenario.cache_key`, so sweeps that
  revisit a point (and repeated figure runs) pay for it once;
* optionally persists every evaluation through a
  :class:`~repro.api.store.ResultStore`, so sweeps survive process restarts
  and repeated runs replay completed points from disk;
* fans a :class:`~repro.api.scenario.ScenarioSuite` out over a pluggable
  executor layer — ``execution="serial"`` (no pool, deterministic debugging),
  ``"thread"`` (the default; fine for the NumPy-heavy analytic backends,
  which release the GIL), or ``"process"`` (CPU-bound backends such as the
  pure-Python simulator are shipped to a
  :class:`~concurrent.futures.ProcessPoolExecutor`, sidestepping the GIL).

Results are deterministic in every mode because every backend derives its
seeds from the scenario alone; the execution-mode equivalence tests pin this
down backend by backend.

Failures are expected events, not crashes.  The service threads a
:class:`~repro.api.resilience.RetryPolicy` (bounded retries, deterministic
backoff), optional per-evaluation deadlines, and per-backend
:class:`~repro.api.resilience.CircuitBreaker`\\ s through every evaluation
path, and degrades along a ladder instead of dying: a failed batch dispatch
falls back to the scalar path, a crashed process pool is rebuilt once and
then replaced by threads (observably — counted and warned), and a point that
exhausts its retries becomes a structured
:class:`~repro.api.results.FailedResult` under the suite-level
``on_error="raise" | "skip" | "record"`` contract.
"""

from __future__ import annotations

import contextlib
import logging
import multiprocessing
import os
import sys
import threading
import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, fields

from ..exceptions import (
    BackendCapabilityError,
    BackendError,
    CircuitOpenError,
    EvaluationTimeoutError,
    StoreError,
    ValidationError,
)
from .backends import (
    PredictionBackend,
    backend_is_cpu_bound,
    backend_names,
    backend_supports_batch,
    create_backend,
)
from .resilience import (
    ON_ERROR_MODES,
    BreakerPolicy,
    BreakerSnapshot,
    CircuitBreaker,
    RetryPolicy,
)
from .results import BackendComparison, FailedResult, PredictionResult
from .scenario import Scenario, ScenarioSuite
from .store import BaseResultStore, open_store

logger = logging.getLogger(__name__)

#: Default baseline backend for comparisons (the "measured" series).
DEFAULT_BASELINE = "simulator"

#: Accepted values of the service's ``execution`` parameter.
EXECUTION_MODES = ("serial", "thread", "process")


def _predict_in_subprocess(scenario_data: dict, backend: str, options: dict) -> dict:
    """Worker-side evaluation: plain dicts in, plain dicts out.

    Shipping JSON shapes instead of live objects keeps the contract
    pickle-trivial and start-method-agnostic; the parent rebuilds the
    :class:`PredictionResult` (and records it in cache + store) itself.
    """
    scenario = Scenario.from_dict(scenario_data)
    return create_backend(backend, **options).predict(scenario).to_dict()


class _InflightEvaluation:
    """One in-flight (cache key, backend) evaluation that callers can join.

    The first thread through :meth:`PredictionService._evaluate_resilient`
    for a point owns the evaluation; concurrent callers of the same point
    block on :attr:`event` and share the owner's outcome instead of
    evaluating again.  Joins are counted as ``coalesced`` in
    :meth:`PredictionService.stats` — the serving layer's request-coalescing
    guarantee is exactly this registry, surfaced end-to-end.
    """

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: PredictionResult | None = None
        self.error: BaseException | None = None


class _ProcessPoolState:
    """One sweep's process pool plus its crash-recovery budget.

    Shared by every worker thread of a sweep: when the pool breaks, the
    first thread through :meth:`PredictionService._handle_pool_failure`
    swaps in a replacement (or ``None``, degrading to in-process execution)
    and the rest observe the change through this holder.
    """

    __slots__ = ("lock", "pool", "rebuilds")

    def __init__(self, pool: ProcessPoolExecutor | None) -> None:
        self.lock = threading.Lock()
        self.pool = pool
        self.rebuilds = 0


@dataclass(frozen=True)
class ServiceStats:
    """Where the service's answers came from (one snapshot)."""

    #: Hits served from the in-memory cache.
    memory_hits: int = 0
    #: Hits served from the persistent result store.
    store_hits: int = 0
    #: Actual backend evaluations (cache and store both missed).
    evaluations: int = 0
    #: Requests that joined an identical in-flight evaluation instead of
    #: evaluating again: concurrent ``evaluate`` calls for one point share
    #: the first caller's outcome, and duplicate grid cells of one suite
    #: collapse onto a single evaluation.
    coalesced: int = 0
    #: ``predict_batch`` dispatches performed by suite evaluation.
    batch_calls: int = 0
    #: Scenarios evaluated through those batch dispatches (each also counts
    #: as one evaluation in :attr:`evaluations`).
    batch_points: int = 0
    #: Re-attempts of failed evaluations (one per extra attempt, not per point).
    retries: int = 0
    #: Points whose evaluation failed terminally (retries exhausted or fatal).
    failures: int = 0
    #: Points a backend declined as outside its capability (e.g. an analytic
    #: model asked for a failure spec it cannot correct for).  Declines are
    #: expected graceful degradation, not errors: they never trip breakers
    #: and are counted here instead of :attr:`failures`.
    declined: int = 0
    #: Evaluations that exceeded the configured per-evaluation deadline.
    timeouts: int = 0
    #: Batch dispatches that failed and fell back to the per-scenario path.
    batch_fallbacks: int = 0
    #: Crashed process pools that were rebuilt (at most once per sweep).
    pool_rebuilds: int = 0
    #: Times process execution degraded to threads (pool unavailable or
    #: crashed past its rebuild budget).
    pool_fallbacks: int = 0
    #: Circuit-breaker trips across all backends (closed/half-open → open).
    breaker_trips: int = 0

    def delta(self, since: "ServiceStats") -> "ServiceStats":
        """Counters accumulated between ``since`` and this snapshot."""
        return ServiceStats(
            **{
                spec.name: getattr(self, spec.name) - getattr(since, spec.name)
                for spec in fields(ServiceStats)
            }
        )

    def to_dict(self) -> dict:
        """JSON-serialisable view (one key per counter); inverse of :meth:`from_dict`."""
        return {spec.name: getattr(self, spec.name) for spec in fields(ServiceStats)}

    @classmethod
    def from_dict(cls, data: "dict | None") -> "ServiceStats":
        """Rebuild a snapshot from :meth:`to_dict` output (e.g. a ``/stats`` body)."""
        if not isinstance(data, dict):
            raise ValidationError(
                f"service stats must be a mapping, got {type(data).__name__}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValidationError(
                f"unknown service-stats fields {sorted(unknown)}; known: {sorted(known)}"
            )
        try:
            return cls(**{name: int(value) for name, value in data.items()})
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"invalid service stats: {exc}") from exc


@dataclass(frozen=True)
class SuiteResult:
    """Results of one suite evaluation: a (scenario × backend) grid."""

    suite: ScenarioSuite
    backends: tuple[str, ...]
    #: One ``{backend: result}`` mapping per scenario, in suite order.  Under
    #: ``on_error="record"`` a cell may hold a
    #: :class:`~repro.api.results.FailedResult`; under ``on_error="skip"``
    #: failed cells are simply absent from their row.
    rows: tuple[dict[str, PredictionResult], ...]

    def series(self, backend: str) -> list[float]:
        """The ``total_seconds`` series of one backend across the suite.

        Failed points contribute NaN: a recorded failure carries a NaN
        ``total_seconds`` and a skipped point is absent from its row.
        """
        if backend not in self.backends:
            raise BackendError(
                f"backend {backend!r} was not evaluated; have: {list(self.backends)}"
            )
        return [
            row[backend].total_seconds if backend in row else float("nan")
            for row in self.rows
        ]

    def failures(self) -> list[tuple[int, str, FailedResult]]:
        """All recorded failures as ``(scenario index, backend, failure)``."""
        return [
            (index, name, result)
            for index, row in enumerate(self.rows)
            for name, result in row.items()
            if not result.ok
        ]

    @property
    def complete(self) -> bool:
        """Whether every (scenario, backend) cell holds a successful result."""
        return all(
            name in row and row[name].ok
            for row in self.rows
            for name in self.backends
        )

    def to_dict(self) -> dict:
        """JSON-serialisable view of the whole grid."""
        return {
            "suite": self.suite.to_dict(),
            "backends": list(self.backends),
            "results": [
                {name: result.to_dict() for name, result in row.items()}
                for row in self.rows
            ],
        }


class PredictionService:
    """Evaluate scenarios across prediction backends, with caching."""

    def __init__(
        self,
        backends: Sequence[str] | None = None,
        max_workers: int | None = None,
        cache: bool = True,
        backend_options: dict[str, dict] | None = None,
        store: BaseResultStore | str | os.PathLike | None = None,
        store_format: str | None = None,
        execution: str = "thread",
        batch: bool = True,
        retry: RetryPolicy | int | None = None,
        timeout: float | None = None,
        breaker: BreakerPolicy | None = None,
        on_error: str = "raise",
    ) -> None:
        if execution not in EXECUTION_MODES:
            raise ValidationError(
                f"unknown execution mode {execution!r}; known: {list(EXECUTION_MODES)}"
            )
        if on_error not in ON_ERROR_MODES:
            raise ValidationError(
                f"unknown on_error mode {on_error!r}; known: {list(ON_ERROR_MODES)}"
            )
        if timeout is not None and timeout <= 0:
            raise ValidationError(f"timeout must be positive, got {timeout}")
        self._backend_options = dict(backend_options or {})
        names = list(backends) if backends is not None else backend_names()
        self._backends: dict[str, PredictionBackend] = {
            name: create_backend(name, **self._backend_options.get(name, {}))
            for name in names
        }
        self._max_workers = max_workers
        self._cache_enabled = cache
        self._cache: dict[tuple[str, str], PredictionResult] = {}
        self._lock = threading.Lock()
        self._execution = execution
        #: Dispatch suite misses to batch-capable backends in one
        #: ``predict_batch`` call.  ``batch=False`` forces the per-scenario
        #: path (the benches use it as the batching baseline).
        self._batch_enabled = batch
        if store is not None and not isinstance(store, BaseResultStore):
            # A path opens whichever engine the directory already holds
            # (``store_format`` forces one; see ``open_store``).
            store = open_store(store, format=store_format)
        self._store = store
        self._retry = RetryPolicy.resolve(retry)
        self._timeout = timeout
        self._breaker_policy = breaker
        self._breakers: dict[str, CircuitBreaker] = {}
        self._on_error = on_error
        # All counters below are read and written ONLY under ``self._lock``;
        # thread- and process-mode sweeps bump them from pool threads, so an
        # unlocked increment would drop updates.
        self._memory_hits = 0
        self._store_hits = 0
        self._evaluations = 0
        self._coalesced = 0
        #: In-flight evaluations by (cache key, backend); concurrent callers
        #: of a point already being evaluated join the owner's outcome.
        self._inflight: dict[tuple[str, str], _InflightEvaluation] = {}
        self._batch_calls = 0
        self._batch_points = 0
        self._retries = 0
        self._failures = 0
        self._declined = 0
        self._timeouts = 0
        self._batch_fallbacks = 0
        self._pool_rebuilds = 0
        self._pool_fallbacks = 0
        self._pool_fallback_warned = False

    # -- introspection --------------------------------------------------------

    def backends(self) -> list[str]:
        """Names of the backends this service evaluates by default."""
        with self._lock:
            return list(self._backends)

    @property
    def execution(self) -> str:
        """The configured execution mode (``serial`` / ``thread`` / ``process``)."""
        return self._execution

    @property
    def store(self) -> BaseResultStore | None:
        """The persistent result store, if one is attached."""
        return self._store

    def point_token(self, key: str, backend: str) -> str:
        """The store/lease token of one ``(cache key, backend)`` point.

        Folds in the backend options this service would evaluate the point
        with, so the token matches the record slot the result will land in
        — the cooperative sweep claims exactly what it will write.
        """
        if self._store is None:
            raise ValidationError("point_token requires an attached result store")
        return self._store.point_token(
            key, backend, options=self._backend_options.get(backend, {})
        )

    @property
    def batch_enabled(self) -> bool:
        """Whether suite evaluation dispatches to ``predict_batch`` backends."""
        return self._batch_enabled

    def stats(self) -> ServiceStats:
        """Snapshot of cache / evaluation / batch / resilience counters."""
        # Breaker trips live in the breakers (each behind its own lock);
        # collect the breaker list under the service lock but sum the trips
        # outside it so the two lock families never nest.
        with self._lock:
            breakers = list(self._breakers.values())
        breaker_trips = sum(b.snapshot().trips for b in breakers)
        with self._lock:
            return ServiceStats(
                memory_hits=self._memory_hits,
                store_hits=self._store_hits,
                evaluations=self._evaluations,
                coalesced=self._coalesced,
                batch_calls=self._batch_calls,
                batch_points=self._batch_points,
                retries=self._retries,
                failures=self._failures,
                declined=self._declined,
                timeouts=self._timeouts,
                batch_fallbacks=self._batch_fallbacks,
                pool_rebuilds=self._pool_rebuilds,
                pool_fallbacks=self._pool_fallbacks,
                breaker_trips=breaker_trips,
            )

    def breakers(self) -> dict[str, BreakerSnapshot]:
        """Per-backend circuit-breaker snapshots (empty without a policy)."""
        with self._lock:
            named = dict(self._breakers)
        return {name: breaker.snapshot() for name, breaker in named.items()}

    def cache_size(self) -> int:
        """Number of memoised (scenario, backend) evaluations."""
        with self._lock:
            return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all memoised evaluations (the persistent store is untouched)."""
        with self._lock:
            self._cache.clear()

    # -- evaluation -----------------------------------------------------------

    def _backend(self, name: str) -> PredictionBackend:
        # Constructed under the lock so concurrent suite evaluation with an
        # unconfigured backend cannot build (and race to publish) it twice.
        with self._lock:
            backend = self._backends.get(name)
            if backend is None:
                backend = create_backend(name, **self._backend_options.get(name, {}))
                self._backends[name] = backend
            return backend

    def _lookup(self, key: tuple[str, str]) -> PredictionResult | None:
        """Memory cache, then persistent store; updates the hit counters."""
        if self._cache_enabled:
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._memory_hits += 1
                    return cached
        if self._store is not None:
            stored = self._store.get(
                key[0], key[1], options=self._backend_options.get(key[1], {})
            )
            if stored is not None:
                with self._lock:
                    self._store_hits += 1
                    if self._cache_enabled:
                        self._cache[key] = stored
                return stored
        return None

    def _record_evaluation(self, key: tuple[str, str], result: PredictionResult) -> None:
        """Count one real evaluation and publish it to cache and store."""
        with self._lock:
            self._evaluations += 1
            if self._cache_enabled:
                self._cache[key] = result
        if self._store is not None:
            try:
                self._store.put(
                    key[0],
                    key[1],
                    result,
                    options=self._backend_options.get(key[1], {}),
                )
            except StoreError as exc:
                # An unwritable store degrades to in-memory caching rather
                # than killing a long sweep halfway through.
                logger.warning("could not persist result for %s: %s", key[1], exc)

    def _breaker_for(self, backend: str) -> CircuitBreaker | None:
        if self._breaker_policy is None:
            return None
        with self._lock:
            breaker = self._breakers.get(backend)
            if breaker is None:
                breaker = CircuitBreaker(self._breaker_policy, name=backend)
                self._breakers[backend] = breaker
            return breaker

    def _resolve_retry(self, retry: "RetryPolicy | int | None") -> RetryPolicy:
        """Per-call retry override; ``None`` keeps the service's policy."""
        if retry is None:
            return self._retry
        return RetryPolicy.resolve(retry)

    def _resolve_timeout(self, timeout: float | None) -> float | None:
        """Per-call deadline override; ``None`` keeps the service's deadline."""
        if timeout is None:
            return self._timeout
        if timeout <= 0:
            raise ValidationError(f"timeout must be positive, got {timeout}")
        return timeout

    def evaluate(
        self,
        scenario: Scenario,
        backend: str,
        *,
        retry: "RetryPolicy | int | None" = None,
        timeout: float | None = None,
    ) -> PredictionResult:
        """Evaluate one scenario with one backend (cached, store-backed).

        Runs under the service's retry policy, deadline, and circuit breaker
        (all no-ops unless configured); terminal failures raise.  ``retry``
        and ``timeout`` override the service-level policies for this call
        only — the serving layer maps per-request resilience selections onto
        these knobs.
        """
        return self._evaluate_resilient(
            scenario, backend, None, retry=retry, timeout=timeout
        )

    def evaluate_point(
        self,
        scenario: Scenario,
        backend: str,
        *,
        on_error: str | None = None,
        retry: "RetryPolicy | int | None" = None,
        timeout: float | None = None,
    ) -> PredictionResult | FailedResult | None:
        """One point under the ``on_error`` contract, with per-call policies.

        Like :meth:`evaluate`, but a terminal failure follows the suite
        contract instead of always raising: ``"skip"`` returns ``None`` and
        ``"record"`` returns a structured
        :class:`~repro.api.results.FailedResult`.  This is the unit of work
        the streaming sweep path and the serving layer dispatch.
        """
        mode = self._resolve_on_error(on_error)
        return self._evaluate_guarded(
            scenario, backend, None, mode, retry=retry, timeout=timeout
        )

    def _evaluate_resilient(
        self,
        scenario: Scenario,
        backend: str,
        holder: "_ProcessPoolState | None",
        info: dict | None = None,
        retry: "RetryPolicy | int | None" = None,
        timeout: float | None = None,
    ) -> PredictionResult:
        """Lookup, join an identical in-flight evaluation, or attempt.

        Concurrent calls for one (cache key, backend) point coalesce: the
        first caller evaluates under the retry policy and circuit breaker,
        later callers block until that outcome is published and share it
        (success *and* failure — a joiner re-raises the owner's terminal
        error rather than hammering a failing backend again).  ``info``
        (when given) receives the attempt count, so the caller can attribute
        a terminal failure without re-deriving it.
        """
        key = (scenario.cache_key(), backend)
        cached = self._lookup(key)
        if cached is not None:
            return cached
        owner = False
        with self._lock:
            entry = self._inflight.get(key)
            if entry is None:
                entry = _InflightEvaluation()
                self._inflight[key] = entry
                owner = True
            else:
                self._coalesced += 1
        if not owner:
            entry.event.wait()
            if info is not None:
                info["attempts"] = 0  # the joiner itself attempted nothing
            if entry.error is not None:
                raise entry.error
            return entry.result
        try:
            result = self._run_attempts(scenario, backend, holder, info, retry, timeout)
        except BaseException as exc:
            entry.error = exc
            raise
        else:
            entry.result = result
            return result
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            entry.event.set()

    def _run_attempts(
        self,
        scenario: Scenario,
        backend: str,
        holder: "_ProcessPoolState | None",
        info: dict | None,
        retry: "RetryPolicy | int | None",
        timeout: float | None,
    ) -> PredictionResult:
        """The retry/breaker attempt loop for one owned evaluation."""
        key = (scenario.cache_key(), backend)
        policy = self._resolve_retry(retry)
        deadline = self._resolve_timeout(timeout)
        breaker = self._breaker_for(backend)
        attempt = 0
        while True:
            attempt += 1
            if info is not None:
                info["attempts"] = attempt
            try:
                if breaker is not None:
                    breaker.allow()
                result = self._attempt(scenario, backend, holder, deadline)
            except Exception as exc:
                if isinstance(exc, BackendCapabilityError):
                    # A declined capability is the backend working as
                    # specified, not failing: breaker-neutral, counted apart.
                    with self._lock:
                        self._declined += 1
                    raise
                if breaker is not None and not isinstance(exc, CircuitOpenError):
                    breaker.record_failure()
                if attempt < policy.max_attempts and policy.is_retryable(exc):
                    with self._lock:
                        self._retries += 1
                    delay = policy.delay(attempt, key=key[0])
                    logger.warning(
                        "attempt %d/%d for backend %s failed (%s); retrying in %.3fs",
                        attempt,
                        policy.max_attempts,
                        backend,
                        exc,
                        delay,
                    )
                    if delay > 0:
                        time.sleep(delay)
                    continue
                with self._lock:
                    self._failures += 1
                raise
            if breaker is not None:
                breaker.record_success()
            self._record_evaluation(key, result)
            return result

    def _attempt(
        self,
        scenario: Scenario,
        backend: str,
        holder: "_ProcessPoolState | None",
        deadline: float | None,
    ) -> PredictionResult:
        """One evaluation attempt, routed per the execution resources at hand."""
        if (
            holder is not None
            and holder.pool is not None
            and backend_is_cpu_bound(backend)
        ):
            return self._attempt_in_pool(scenario, backend, holder, deadline)
        return self._attempt_in_process(scenario, backend, deadline)

    def _attempt_in_process(
        self, scenario: Scenario, backend: str, deadline: float | None
    ) -> PredictionResult:
        """In-process attempt with a cooperative (post-hoc) deadline check.

        Threads cannot be preempted, so serial/thread-mode deadlines are
        enforced after the fact: a result that arrives past the deadline is
        discarded and counted as a timeout, keeping the deadline contract
        uniform across execution modes (at the price of the wasted work).
        """
        started = time.monotonic()
        result = self._backend(backend).predict(scenario)
        if deadline is not None:
            elapsed = time.monotonic() - started
            if elapsed > deadline:
                with self._lock:
                    self._timeouts += 1
                raise EvaluationTimeoutError(
                    f"evaluation of backend {backend!r} took {elapsed:.3f}s, "
                    f"over the {deadline}s deadline"
                )
        return result

    def _attempt_in_pool(
        self,
        scenario: Scenario,
        backend: str,
        holder: "_ProcessPoolState",
        deadline: float | None,
    ) -> PredictionResult:
        """One attempt in the process pool, riding the degradation ladder.

        A crashed pool is handed to :meth:`_handle_pool_failure` (rebuild
        once, then degrade to threads) and the attempt is re-routed; each
        loop iteration observes a *different* pool (or ``None``), so the
        loop terminates within the holder's rebuild budget.
        """
        while True:
            pool = holder.pool
            if pool is None:
                return self._attempt_in_process(scenario, backend, deadline)
            try:
                future = pool.submit(
                    _predict_in_subprocess,
                    scenario.to_dict(),
                    backend,
                    self._backend_options.get(backend, {}),
                )
            except Exception as exc:  # a broken/shut-down pool rejects submissions
                self._handle_pool_failure(holder, pool, exc)
                continue
            try:
                if deadline is None:
                    payload = future.result()
                else:
                    payload = future.result(timeout=deadline)
            except TimeoutError as exc:
                if deadline is None:
                    raise  # a worker-raised timeout, not our deadline
                future.cancel()
                with self._lock:
                    self._timeouts += 1
                raise EvaluationTimeoutError(
                    f"evaluation of backend {backend!r} exceeded the "
                    f"{deadline}s deadline"
                ) from exc
            except (BrokenProcessPool, OSError) as exc:
                # A dead worker breaks the whole pool; every in-flight future
                # raises.  The first thread through rebuilds (or retires) the
                # pool, the rest observe the replacement and resubmit.
                self._handle_pool_failure(holder, pool, exc)
                continue
            except (ValidationError, BackendError) as exc:
                # Almost always a worker process lacking a runtime
                # registration the parent has (spawn and forkserver start
                # methods import a fresh registry); re-running in-process
                # either succeeds with the parent's registry or raises the
                # genuine application error.
                logger.warning(
                    "process-pool evaluation of %s failed (%s); running in-process",
                    backend,
                    exc,
                )
                return self._attempt_in_process(scenario, backend, deadline)
            return PredictionResult.from_dict(payload)

    def _handle_pool_failure(
        self, holder: "_ProcessPoolState", pool: ProcessPoolExecutor, exc: BaseException
    ) -> None:
        """Degradation ladder for a crashed pool: rebuild once, then threads."""
        with holder.lock:
            if holder.pool is not pool:
                return  # another thread already handled this crash
            with contextlib.suppress(Exception):
                pool.shutdown(wait=False, cancel_futures=True)
            if holder.rebuilds < 1:
                holder.rebuilds += 1
                with self._lock:
                    self._pool_rebuilds += 1
                logger.warning(
                    "process pool crashed (%s); rebuilding it once", exc
                )
                holder.pool = self._build_process_pool()
                if holder.pool is None:
                    self._note_pool_fallback(
                        f"process pool could not be rebuilt after a crash ({exc})"
                    )
            else:
                holder.pool = None
                self._note_pool_fallback(
                    f"process pool crashed past its rebuild budget ({exc})"
                )

    def _note_pool_fallback(self, reason: str) -> None:
        """Count (and warn once per service, on stderr) a pool→thread fallback."""
        with self._lock:
            self._pool_fallbacks += 1
            already_warned = self._pool_fallback_warned
            self._pool_fallback_warned = True
        logger.warning("%s; degrading to thread execution", reason)
        if not already_warned:
            print(
                f"repro: {reason}; degrading to thread execution",
                file=sys.stderr,
            )

    def _evaluate_guarded(
        self,
        scenario: Scenario,
        backend: str,
        holder: "_ProcessPoolState | None",
        on_error: str,
        retry: "RetryPolicy | int | None" = None,
        timeout: float | None = None,
    ) -> PredictionResult | FailedResult | None:
        """One point under the ``on_error`` contract; ``None`` means skipped."""
        info: dict = {"attempts": 0}
        try:
            return self._evaluate_resilient(
                scenario, backend, holder, info, retry=retry, timeout=timeout
            )
        except Exception as exc:
            if on_error == "raise":
                raise
            logger.warning(
                "point (%s, %s) failed terminally after %d attempt(s): %s",
                scenario.describe(),
                backend,
                info["attempts"],
                exc,
            )
            if on_error == "skip":
                return None
            return FailedResult(
                backend=backend,
                scenario=scenario,
                error_type=type(exc).__name__,
                error=str(exc),
                attempts=max(1, info["attempts"]),
            )

    def evaluate_many(
        self, scenario: Scenario, backends: Sequence[str] | None = None
    ) -> dict[str, PredictionResult]:
        """Evaluate one scenario with several backends (per the execution mode)."""
        names = list(backends) if backends is not None else self.backends()
        key = scenario.cache_key()
        results = self._evaluate_unique({(key, name): scenario for name in names})
        return {name: results[(key, name)] for name in names}

    def _resolve_on_error(self, on_error: str | None) -> str:
        if on_error is None:
            return self._on_error
        if on_error not in ON_ERROR_MODES:
            raise ValidationError(
                f"unknown on_error mode {on_error!r}; known: {list(ON_ERROR_MODES)}"
            )
        return on_error

    def evaluate_suite(
        self,
        suite: ScenarioSuite,
        backends: Sequence[str] | None = None,
        on_error: str | None = None,
    ) -> SuiteResult:
        """Evaluate every (scenario, backend) pair of a suite.

        Duplicate sweep points share one evaluation (each extra cell counts
        as one ``coalesced`` join in :meth:`stats`).  The unique points are
        partitioned into memory hits, store hits (bulk-probed through
        :meth:`ResultStore.get_many`), and misses; misses of batch-capable
        backends are grouped per backend and dispatched in one
        ``predict_batch`` call, the rest fan out per the service's
        ``execution`` mode.  The partition is independent of the execution
        mode, so serial/thread/process sweeps stay numerically identical.

        ``on_error`` (default: the service's configured mode) sets the
        partial-results contract for points that fail terminally after the
        retry/breaker ladder: ``"raise"`` propagates the first failure once
        in-flight points have finished (and persisted), ``"skip"`` omits the
        failed cells from their rows, ``"record"`` fills them with
        structured :class:`~repro.api.results.FailedResult`\\ s.
        """
        mode = self._resolve_on_error(on_error)
        names = tuple(backends) if backends is not None else tuple(self.backends())
        keys = [scenario.cache_key() for scenario in suite.scenarios]
        unique: dict[tuple[str, str], Scenario] = {}
        duplicates = 0
        for index, scenario in enumerate(suite.scenarios):
            for name in names:
                point = (keys[index], name)
                if point in unique:
                    duplicates += 1
                else:
                    unique[point] = scenario
        if duplicates:
            # Duplicate grid cells share one evaluation — the suite-level
            # face of the same coalescing the in-flight registry provides
            # across concurrent calls, and counted under the same counter.
            with self._lock:
                self._coalesced += duplicates
        results = self._evaluate_points(unique, mode)
        rows = tuple(
            {
                name: results[(keys[index], name)]
                for name in names
                if (keys[index], name) in results
            }
            for index in range(len(suite.scenarios))
        )
        return SuiteResult(suite=suite, backends=names, rows=rows)

    # -- point partitioning ---------------------------------------------------

    def probe_points(
        self, points: Sequence[tuple[str, str]]
    ) -> dict[tuple[str, str], str]:
        """Peek which ``(cache key, backend)`` points are already answered.

        Returns ``point -> "memory" | "store"`` for every answered point
        (one cache pass, one bulk store probe); unanswered points are
        absent.  Unlike :meth:`evaluate`, this never counts hits in
        :meth:`stats` — it exists for planners
        (:class:`~repro.api.sweep.SweepScheduler`) that want to know what a
        sweep would cost before running it.  Store records found here stay
        loaded in the store's index, so the subsequent evaluation pays no
        second disk read for them.
        """
        sources: dict[tuple[str, str], str] = {}
        misses: list[tuple[str, str]] = []
        with self._lock:
            for point in points:
                if self._cache_enabled and point in self._cache:
                    sources[point] = "memory"
                else:
                    misses.append(point)
        if self._store is not None and misses:
            stored = self._store.get_many(
                [
                    (key, backend, self._backend_options.get(backend, {}))
                    for key, backend in misses
                ]
            )
            for point in stored:
                sources[point] = "store"
        return sources

    def _evaluate_points(
        self, unique: dict[tuple[str, str], Scenario], on_error: str = "raise"
    ) -> dict[tuple[str, str], PredictionResult]:
        """Partition unique points into hits / batch groups / scalar tasks."""
        results: dict[tuple[str, str], PredictionResult] = {}
        misses: dict[tuple[str, str], Scenario] = {}
        with self._lock:
            for point, scenario in unique.items():
                hit = self._cache.get(point) if self._cache_enabled else None
                if hit is not None:
                    self._memory_hits += 1
                    results[point] = hit
                else:
                    misses[point] = scenario
        if self._store is not None and misses:
            stored = self._store.get_many(
                [
                    (key, backend, self._backend_options.get(backend, {}))
                    for key, backend in misses
                ]
            )
            if stored:
                with self._lock:
                    for point, result in stored.items():
                        self._store_hits += 1
                        if self._cache_enabled:
                            self._cache[point] = result
                        results[point] = result
                for point in stored:
                    misses.pop(point)
        batch_groups: dict[str, list[tuple[tuple[str, str], Scenario]]] = {}
        scalar: dict[tuple[str, str], Scenario] = {}
        for point, scenario in misses.items():
            if self._batch_enabled and backend_supports_batch(point[1]):
                batch_groups.setdefault(point[1], []).append((point, scenario))
            else:
                scalar[point] = scenario
        for backend in sorted(batch_groups):
            group = batch_groups[backend]
            if len(group) < 2:
                # A lone scenario gains nothing from batching; keep it on the
                # per-scenario path (which also honours instance-level
                # ``predict`` monkeypatching in tests).
                scalar.update(group)
                continue
            try:
                batch_results = self._backend(backend).predict_batch(
                    [scenario for _, scenario in group]
                )
            except Exception as exc:  # first rung of the degradation ladder
                # The scalar path retries per point and records each result
                # as it completes, so a batch that crashes mid-flight cannot
                # lose the points that would have succeeded.
                with self._lock:
                    self._batch_fallbacks += 1
                logger.warning(
                    "batch dispatch of %d %s points failed (%s); "
                    "falling back to the per-scenario path",
                    len(group),
                    backend,
                    exc,
                )
                scalar.update(group)
                continue
            # A wrong result count is a malformed backend, not a transient
            # fault: _record_batch raises it through (no scalar fallback,
            # which would only mask the bug).
            results.update(self._record_batch(backend, group, batch_results))
        if scalar:
            results.update(self._evaluate_unique(scalar, on_error))
        return results

    def _record_batch(
        self,
        backend: str,
        group: list[tuple[tuple[str, str], Scenario]],
        batch_results: Sequence[PredictionResult],
    ) -> dict[tuple[str, str], PredictionResult]:
        """Validate and record the results of one ``predict_batch`` dispatch."""
        if len(batch_results) != len(group):
            raise BackendError(
                f"backend {backend!r} returned {len(batch_results)} batch results "
                f"for {len(group)} scenarios"
            )
        with self._lock:
            self._batch_calls += 1
            self._batch_points += len(group)
        results = {}
        for (point, _), result in zip(group, batch_results):
            self._record_evaluation(point, result)
            results[point] = result
        return results

    # -- executor layer -------------------------------------------------------

    def _evaluate_unique(
        self, unique: dict[tuple[str, str], Scenario], on_error: str = "raise"
    ) -> dict[tuple[str, str], PredictionResult]:
        """Dispatch deduplicated (key, backend) tasks per the execution mode."""
        if self._execution == "serial" or len(unique) <= 1:
            results: dict[tuple[str, str], PredictionResult] = {}
            for key, scenario in unique.items():
                outcome = self._evaluate_guarded(scenario, key[1], None, on_error)
                if outcome is not None:
                    results[key] = outcome
            return results
        holder: _ProcessPoolState | None = None
        if self._execution == "process":
            holder = _ProcessPoolState(self._make_process_pool())
            if holder.pool is None:
                holder = None
        try:
            return self._evaluate_threaded(unique, holder, on_error)
        finally:
            if holder is not None and holder.pool is not None:
                holder.pool.shutdown()

    def _evaluate_threaded(
        self,
        unique: dict[tuple[str, str], Scenario],
        holder: "_ProcessPoolState | None" = None,
        on_error: str = "raise",
    ) -> dict[tuple[str, str], PredictionResult]:
        """Thread-pool fan-out; CPU-bound tasks hop to the process pool if given.

        Every future is drained before any failure propagates: each point
        that finished was already recorded (cache + store) the moment it
        completed, so a mid-sweep failure under ``on_error="raise"`` loses
        only the failing point and a store-backed re-run resumes from the
        rest.
        """

        def run(
            key: tuple[str, str], scenario: Scenario
        ) -> PredictionResult | FailedResult | None:
            return self._evaluate_guarded(scenario, key[1], holder, on_error)

        max_workers = self._max_workers or min(len(unique), (os.cpu_count() or 2))
        results: dict[tuple[str, str], PredictionResult] = {}
        first_error: BaseException | None = None
        with ThreadPoolExecutor(max_workers=max(1, max_workers)) as executor:
            futures = {
                key: executor.submit(run, key, scenario)
                for key, scenario in unique.items()
            }
            for key, future in futures.items():
                try:
                    outcome = future.result()
                except BaseException as exc:  # noqa: BLE001 — re-raised below
                    if first_error is None:
                        first_error = exc
                    continue
                if outcome is not None:
                    results[key] = outcome
        if first_error is not None:
            raise first_error
        return results

    def _build_process_pool(self) -> ProcessPoolExecutor | None:
        """A process pool, or ``None`` where subprocesses are unavailable.

        ``REPRO_MP_START_METHOD`` overrides the platform's multiprocessing
        start method (``fork`` / ``spawn`` / ``forkserver``) — CI uses it to
        exercise the stricter spawn path that macOS and Windows default to.
        """
        workers = self._max_workers or os.cpu_count() or 1
        try:
            mp_context = None
            method = os.environ.get("REPRO_MP_START_METHOD")
            if method:
                mp_context = multiprocessing.get_context(method)
            return ProcessPoolExecutor(max_workers=max(1, workers), mp_context=mp_context)
        except (NotImplementedError, ImportError, OSError, ValueError) as exc:
            logger.warning("process pool unavailable (%s)", exc)
            return None

    def _make_process_pool(self) -> ProcessPoolExecutor | None:
        """Build the sweep's process pool, observably degrading on failure."""
        pool = self._build_process_pool()
        if pool is None:
            self._note_pool_fallback("process pool unavailable")
        return pool

    def compare(
        self,
        scenario: Scenario,
        backends: Sequence[str] | None = None,
        baseline: str = DEFAULT_BASELINE,
    ) -> BackendComparison:
        """Evaluate several backends side by side against a baseline."""
        names = list(backends) if backends is not None else self.backends()
        if baseline not in names:
            names = [baseline, *names]
        results = self.evaluate_many(scenario, names)
        return BackendComparison(scenario=scenario, baseline=baseline, results=results)
