"""Batch prediction service: suites × backends with caching and parallelism.

:class:`PredictionService` is the one entry point the CLI, the experiment
runner, and library users share.  It

* resolves backend names through the registry and shares the (stateless)
  backend instances across calls;
* memoises every ``(scenario, backend)`` evaluation under the scenario's
  stable :meth:`~repro.api.scenario.Scenario.cache_key`, so sweeps that
  revisit a point (and repeated figure runs) pay for it once;
* fans a :class:`~repro.api.scenario.ScenarioSuite` out over a
  :class:`concurrent.futures.ThreadPoolExecutor`, one task per
  (sweep point, backend) pair — results are deterministic because every
  backend derives its seeds from the scenario alone.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..exceptions import BackendError
from .backends import PredictionBackend, backend_names, create_backend
from .results import BackendComparison, PredictionResult
from .scenario import Scenario, ScenarioSuite

#: Default baseline backend for comparisons (the "measured" series).
DEFAULT_BASELINE = "simulator"


@dataclass(frozen=True)
class SuiteResult:
    """Results of one suite evaluation: a (scenario × backend) grid."""

    suite: ScenarioSuite
    backends: tuple[str, ...]
    #: One ``{backend: result}`` mapping per scenario, in suite order.
    rows: tuple[dict[str, PredictionResult], ...]

    def series(self, backend: str) -> list[float]:
        """The ``total_seconds`` series of one backend across the suite."""
        if backend not in self.backends:
            raise BackendError(
                f"backend {backend!r} was not evaluated; have: {list(self.backends)}"
            )
        return [row[backend].total_seconds for row in self.rows]

    def to_dict(self) -> dict:
        """JSON-serialisable view of the whole grid."""
        return {
            "suite": self.suite.to_dict(),
            "backends": list(self.backends),
            "results": [
                {name: result.to_dict() for name, result in row.items()}
                for row in self.rows
            ],
        }


class PredictionService:
    """Evaluate scenarios across prediction backends, with caching."""

    def __init__(
        self,
        backends: Sequence[str] | None = None,
        max_workers: int | None = None,
        cache: bool = True,
        backend_options: dict[str, dict] | None = None,
    ) -> None:
        self._backend_options = dict(backend_options or {})
        names = list(backends) if backends is not None else backend_names()
        self._backends: dict[str, PredictionBackend] = {
            name: create_backend(name, **self._backend_options.get(name, {}))
            for name in names
        }
        self._max_workers = max_workers
        self._cache_enabled = cache
        self._cache: dict[tuple[str, str], PredictionResult] = {}
        self._lock = threading.Lock()

    # -- introspection --------------------------------------------------------

    def backends(self) -> list[str]:
        """Names of the backends this service evaluates by default."""
        return list(self._backends)

    def cache_size(self) -> int:
        """Number of memoised (scenario, backend) evaluations."""
        with self._lock:
            return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all memoised evaluations."""
        with self._lock:
            self._cache.clear()

    # -- evaluation -----------------------------------------------------------

    def _backend(self, name: str) -> PredictionBackend:
        try:
            return self._backends[name]
        except KeyError:
            # Allow one-off evaluation with backends outside the configured
            # set, honouring any options supplied for them at construction.
            backend = create_backend(name, **self._backend_options.get(name, {}))
            self._backends[name] = backend
            return backend

    def evaluate(self, scenario: Scenario, backend: str) -> PredictionResult:
        """Evaluate one scenario with one backend (cached)."""
        key = (scenario.cache_key(), backend)
        if self._cache_enabled:
            with self._lock:
                cached = self._cache.get(key)
            if cached is not None:
                return cached
        result = self._backend(backend).predict(scenario)
        if self._cache_enabled:
            with self._lock:
                self._cache[key] = result
        return result

    def evaluate_many(
        self, scenario: Scenario, backends: Sequence[str] | None = None
    ) -> dict[str, PredictionResult]:
        """Evaluate one scenario with several backends."""
        names = list(backends) if backends is not None else self.backends()
        return {name: self.evaluate(scenario, name) for name in names}

    def evaluate_suite(
        self,
        suite: ScenarioSuite,
        backends: Sequence[str] | None = None,
    ) -> SuiteResult:
        """Evaluate every (scenario, backend) pair of a suite in parallel."""
        names = tuple(backends) if backends is not None else tuple(self.backends())
        tasks = [
            (index, name)
            for index in range(len(suite.scenarios))
            for name in names
        ]
        max_workers = self._max_workers or min(len(tasks), (os.cpu_count() or 2))
        rows: list[dict[str, PredictionResult]] = [{} for _ in suite.scenarios]
        with ThreadPoolExecutor(max_workers=max(1, max_workers)) as executor:
            # Duplicate sweep points share one future: the cache only dedupes
            # *completed* evaluations, and all tasks are submitted up front.
            futures = {}
            for index, name in tasks:
                key = (suite.scenarios[index].cache_key(), name)
                if key not in futures:
                    futures[key] = executor.submit(
                        self.evaluate, suite.scenarios[index], name
                    )
            for index, name in tasks:
                rows[index][name] = futures[
                    (suite.scenarios[index].cache_key(), name)
                ].result()
        return SuiteResult(suite=suite, backends=names, rows=tuple(rows))

    def compare(
        self,
        scenario: Scenario,
        backends: Sequence[str] | None = None,
        baseline: str = DEFAULT_BASELINE,
    ) -> BackendComparison:
        """Evaluate several backends side by side against a baseline."""
        names = list(backends) if backends is not None else self.backends()
        if baseline not in names:
            names = [baseline, *names]
        results = self.evaluate_many(scenario, names)
        return BackendComparison(scenario=scenario, baseline=baseline, results=results)
