"""Claim/lease protocol: k workers drain one grid with zero duplicate work.

A cooperative sweep needs exactly one guarantee the result store alone does
not give: *at most one live worker evaluates a given point at a time*.  The
store already makes concurrent writers safe (last atomic rename wins, both
contents identical); leases make them *efficient* by preventing the
duplicate evaluation in the first place — and, unlike a lock, a lease
expires, so a crashed worker's points return to the pool instead of
deadlocking the sweep.

The protocol is plain files, so it works wherever the store works (local
disk, NFS with POSIX rename semantics) with no coordination server:

* **Claim** — ``O_CREAT | O_EXCL`` on ``<leases>/<token>.lease`` is the
  atomic test-and-set: exactly one worker creates the file.  The file body
  records the owner, acquisition time, last renewal, and TTL.
* **Heartbeat** — a live worker renews its claims (atomic
  write-temp-then-``os.replace``) well inside the TTL; the
  :meth:`LeaseManager.heartbeat` context manager runs that on a background
  thread so a single long evaluation cannot silently expire its own lease.
* **Expiry & takeover** — a claim whose ``renewed + ttl`` has passed is
  dead.  Takeover must itself be race-free: the challenger first
  ``os.replace``\\ s the expired claim onto a unique tombstone name —
  exactly one challenger's rename succeeds, the rest see ``ENOENT`` — and
  only the winner re-runs the ``O_EXCL`` claim.
* **Release** — the owner unlinks its claim after the point's result is
  durably in the store, so the "claimed" and "answered" states never gap.

Timestamps are wall-clock (``time.time``) because claim files may be read
by other machines; the TTL should therefore comfortably exceed both the
heartbeat interval and any plausible clock skew.  The default heartbeat
interval is ``ttl / 3``.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

from ...exceptions import ValidationError

#: Default lease time-to-live in seconds.  Long enough that a heartbeat at
#: ttl/3 survives severe scheduler delay; short enough that a crashed
#: worker's points return to the pool quickly.
DEFAULT_LEASE_TTL = 30.0

#: Suffix of claim files under the leases directory.
LEASE_SUFFIX = ".lease"


@dataclass(frozen=True)
class LeaseInfo:
    """One claim file's contents (or best-effort reconstruction thereof)."""

    token: str
    worker: str
    acquired: float
    renewed: float
    ttl: float

    @property
    def expires_at(self) -> float:
        """Wall-clock time after which the claim is dead."""
        return self.renewed + self.ttl

    def expired(self, now: float | None = None) -> bool:
        """Whether the claim's TTL has lapsed."""
        return (time.time() if now is None else now) > self.expires_at


class LeaseManager:
    """Claim, renew, and release point leases for one worker.

    One manager serves one ``worker_id``; the claim *namespace* (the
    directory) is shared by every manager pointed at the same store path.
    Thread-safe: the heartbeat thread and the claiming thread share the
    held-lease ledger under a lock.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        worker_id: str,
        ttl: float = DEFAULT_LEASE_TTL,
    ) -> None:
        if not worker_id:
            raise ValidationError("worker_id must be a non-empty string")
        if any(ch in worker_id for ch in "/\\\0"):
            raise ValidationError(
                f"worker_id {worker_id!r} must not contain path separators"
            )
        if ttl <= 0:
            raise ValidationError(f"lease ttl must be positive, got {ttl}")
        self._path = Path(path)
        self.worker_id = worker_id
        self.ttl = float(ttl)
        self._lock = threading.Lock()
        self._held: set[str] = set()
        #: Leases this worker held but lost to a takeover (it heartbeated
        #: too late); exposed so a sweep can re-check those points.
        self.lost: set[str] = set()

    @property
    def path(self) -> Path:
        """Directory the claim files live in."""
        return self._path

    def held(self) -> list[str]:
        """Tokens this manager currently believes it owns."""
        with self._lock:
            return sorted(self._held)

    def _lease_path(self, token: str) -> Path:
        if not token or any(ch in token for ch in "/\\\0"):
            raise ValidationError(f"invalid lease token {token!r}")
        return self._path / f"{token}{LEASE_SUFFIX}"

    def _payload(self, acquired: float) -> dict:
        now = time.time()
        return {
            "worker": self.worker_id,
            "acquired": acquired,
            "renewed": now,
            "ttl": self.ttl,
        }

    def read(self, token: str) -> LeaseInfo | None:
        """The current claim on ``token``, or ``None`` when unclaimed.

        A claim file that exists but cannot be parsed (a writer between its
        ``O_EXCL`` create and its first byte, or torn bytes after a crash)
        is reported as a *live* claim aged by the file's mtime: treating it
        as free would let two workers claim one point, while treating it as
        held merely delays takeover by at most one TTL.
        """
        path = self._lease_path(token)
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
            return LeaseInfo(
                token=token,
                worker=str(data["worker"]),
                acquired=float(data["acquired"]),
                renewed=float(data["renewed"]),
                ttl=float(data["ttl"]),
            )
        except FileNotFoundError:
            return None
        except (OSError, ValueError, TypeError, KeyError):
            try:
                mtime = os.stat(path).st_mtime
            except OSError:
                return None  # vanished between open and stat: unclaimed
            return LeaseInfo(
                token=token, worker="?", acquired=mtime, renewed=mtime, ttl=self.ttl
            )

    def scan(self) -> list[LeaseInfo]:
        """All current claims in the namespace (any owner)."""
        if not self._path.is_dir():
            return []
        infos = []
        for name in sorted(os.listdir(self._path)):
            if not name.endswith(LEASE_SUFFIX):
                continue
            info = self.read(name[: -len(LEASE_SUFFIX)])
            if info is not None:
                infos.append(info)
        return infos

    def _create(self, path: Path, token: str) -> bool:
        """The atomic test-and-set: ``O_EXCL`` create, then write the body."""
        try:
            self._path.mkdir(parents=True, exist_ok=True)
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False  # unwritable namespace: behave as "not claimed"
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self._payload(acquired=time.time()), handle)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(path)
            return False
        with self._lock:
            self._held.add(token)
            self.lost.discard(token)
        return True

    def try_claim(self, token: str) -> bool:
        """Claim one point; ``True`` iff this worker now owns the lease.

        Handles the full ladder: fresh claim, already-ours, held-by-a-live
        peer (``False``), and takeover of an expired claim (tombstone rename
        so exactly one challenger wins).
        """
        path = self._lease_path(token)
        with self._lock:
            if token in self._held:
                return True
        if self._create(path, token):
            return True
        info = self.read(token)
        if info is None:
            # Released between our create attempt and the read; one retry.
            return self._create(path, token)
        if not info.expired():
            return False
        # Expired: steal it.  os.replace moves the claim onto a name unique
        # to this challenger; exactly one concurrent rename of the same
        # source succeeds, so at most one challenger proceeds to re-claim.
        tombstone = path.with_name(
            f"{path.name}.expired.{self.worker_id}.{os.getpid()}"
        )
        try:
            os.replace(path, tombstone)
        except OSError:
            return False  # another challenger won (or the owner released)
        with contextlib.suppress(OSError):
            os.unlink(tombstone)
        return self._create(path, token)

    def renew(self, token: str) -> bool:
        """Refresh one held lease's TTL; ``False`` when the lease was lost.

        A lease can be lost when this worker stalled past its TTL and a peer
        took the claim over; the loser must treat the point as no longer
        its own (the token lands in :attr:`lost`).
        """
        with self._lock:
            if token not in self._held:
                return False
        path = self._lease_path(token)
        info = self.read(token)
        if info is None or (info.worker not in (self.worker_id, "?")):
            with self._lock:
                self._held.discard(token)
                self.lost.add(token)
            return False
        payload = self._payload(acquired=info.acquired)
        tmp = path.with_name(f"{path.name}.renew.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            return False
        return True

    def renew_all(self) -> int:
        """Refresh every held lease; returns how many renewals succeeded."""
        return sum(1 for token in self.held() if self.renew(token))

    def release(self, token: str) -> None:
        """Drop one held lease (after the point's result is in the store)."""
        with self._lock:
            if token not in self._held:
                return
            self._held.discard(token)
        info = self.read(token)
        if info is not None and info.worker not in (self.worker_id, "?"):
            return  # taken over while we worked; the new owner's claim stands
        with contextlib.suppress(OSError):
            os.unlink(self._lease_path(token))

    def release_all(self) -> None:
        """Drop every held lease."""
        for token in self.held():
            self.release(token)

    def reap(self, token: str) -> None:
        """Remove a claim file regardless of owner (gc of expired leases)."""
        with contextlib.suppress(OSError):
            os.unlink(self._lease_path(token))

    @contextlib.contextmanager
    def heartbeat(self, interval: float | None = None) -> Iterator["LeaseManager"]:
        """Renew held leases on a background thread while the body runs.

        ``interval`` defaults to ``ttl / 3`` so two consecutive missed
        beats still leave slack before expiry.
        """
        period = self.ttl / 3.0 if interval is None else interval
        if period <= 0:
            raise ValidationError(f"heartbeat interval must be positive, got {period}")
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(period):
                self.renew_all()

        thread = threading.Thread(
            target=beat, name=f"lease-heartbeat-{self.worker_id}", daemon=True
        )
        thread.start()
        try:
            yield self
        finally:
            stop.set()
            thread.join(timeout=max(1.0, period * 2))
