"""Common contract shared by every result-store backend.

A result store materialises :class:`~repro.api.results.PredictionResult`
records keyed by ``(Scenario.cache_key(), backend, canonical backend
options)`` so sweeps, figure runs, and benches pay for each evaluation
exactly once across process lifetimes.  Two interchangeable backends
implement the contract:

* :class:`~repro.api.store.json_store.ResultStore` — sharded JSON, one file
  per record (atomic ``os.replace`` puts, human-inspectable);
* :class:`~repro.api.store.sqlite_store.SqliteResultStore` — a single
  WAL-mode SQLite file, O(1) cold-open on stores with millions of records.

Both enforce the same versioning (store format + scenario spec + producing
backend version ⇒ anything else is *stale* and skipped in place), the same
never-fatal corruption handling (skip, count, quarantine into
``<store>/.quarantine/``), and the same maintenance surface
(:meth:`BaseResultStore.gc` — TTL expiry, stale purge, size-capped
eviction, compaction).  :func:`~repro.api.store.open_store` picks the
backend from the on-disk layout (or an explicit format name).

The store directory also hosts the cooperative-sweep lease files
(``<store>/leases/``, see :mod:`repro.api.store.leases`):
:meth:`BaseResultStore.lease_manager` hands out a
:class:`~repro.api.store.leases.LeaseManager` rooted there, so k workers
sharing one store path share one claim namespace too.
"""

from __future__ import annotations

import abc
import hashlib
import json
import os
import threading
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar

from ...exceptions import StoreError

if TYPE_CHECKING:
    from ..results import PredictionResult
    from .leases import LeaseManager

#: Version of the on-disk record envelope; bump on layout changes.
STORE_FORMAT_VERSION = 1

#: Sibling directory corrupt records are moved into (reason-prefixed names).
QUARANTINE_DIR = ".quarantine"

#: Sibling directory cooperative-sweep claim files live in.
LEASES_DIR = "leases"

#: Fields every record envelope must carry to be considered well-formed.
_REQUIRED_FIELDS = (
    "format",
    "spec_version",
    "backend",
    "backend_version",
    "options",
    "key",
    "result",
)


def _current_umask() -> int:
    """The process umask (readable only by setting and restoring it)."""
    mask = os.umask(0)
    os.umask(mask)
    return mask


#: Permissions for record files.  mkstemp creates 0600 files, but shared
#: store directories need ordinary umask-governed permissions so peers can
#: read each other's records.  Captured once at import: the umask read is a
#: process-global set-and-restore and must not race concurrent puts.
_RECORD_MODE = 0o666 & ~_current_umask()


def _canonical_options(options: "dict | None") -> str:
    """Stable string form of a backend's constructor options.

    Options change what a backend computes, so they partition the store:
    they are folded into the record digest and envelope.  ``default=repr``
    keeps this total — unserialisable option values yield a stable-enough
    key instead of an exception on lookup.
    """
    return json.dumps(options or {}, sort_keys=True, default=repr)


def point_token(key: str, backend: str, options_key: str) -> str:
    """Stable digest naming one ``(backend, options, cache key)`` point.

    Both store backends and the lease protocol key off this token: it names
    the JSON record file, the SQLite row, and the claim file of one point,
    so a lease taken against either backend guards exactly one record slot.
    """
    return hashlib.sha256(f"{backend}\n{options_key}\n{key}".encode()).hexdigest()


@dataclass
class StoreStats:
    """Outcome of one disk scan: how many records were usable."""

    loaded: int = 0
    #: Unparseable or structurally invalid record files (skipped, logged).
    corrupt: int = 0
    #: Well-formed records written under a different format/spec/backend version.
    stale: int = 0
    #: Corrupt records successfully moved into the quarantine directory
    #: (at most :attr:`corrupt`; a quarantine move can itself fail).
    quarantined: int = 0


@dataclass
class GcStats:
    """Outcome of one :meth:`BaseResultStore.gc` maintenance pass."""

    #: Records examined by the sweep.
    examined: int = 0
    #: Records purged because they outlived the TTL.
    expired: int = 0
    #: Records purged because they were written under another version.
    stale: int = 0
    #: Oldest records purged to respect ``max_records``.
    evicted: int = 0
    #: Corrupt records quarantined while sweeping.
    corrupt: int = 0
    #: Usable records remaining after the pass.
    remaining: int = 0
    #: Expired or orphaned lease files removed.
    leases_removed: int = 0
    #: Emptied shard directories removed (JSON backend only).
    shards_removed: int = 0
    #: Bytes returned to the filesystem (compaction delta; best-effort).
    reclaimed_bytes: int = 0
    #: Whether this was a report-only pass (nothing was deleted).
    dry_run: bool = False

    @property
    def purged(self) -> int:
        """Total records removed (expired + stale + evicted)."""
        return self.expired + self.stale + self.evicted

    def describe(self) -> str:
        """One-line human-readable summary of the pass."""
        verb = "would purge" if self.dry_run else "purged"
        return (
            f"gc: examined {self.examined} records, {verb} {self.purged} "
            f"({self.expired} expired, {self.stale} stale, {self.evicted} evicted), "
            f"{self.corrupt} quarantined, {self.leases_removed} stale leases, "
            f"{self.shards_removed} empty shards, "
            f"{self.reclaimed_bytes} bytes reclaimed, {self.remaining} remaining"
        )


class BaseResultStore(abc.ABC):
    """Disk-backed ``(cache key, backend, options) -> PredictionResult`` mapping.

    Subclasses provide the storage engine; the in-memory index, the lease
    namespace, and the directory-level checks live here.  All index access
    happens under ``self._lock``; engine-level synchronisation (file renames,
    SQLite transactions) is the subclass's business.
    """

    #: Short name of this engine (``"json"`` / ``"sqlite"``), the value the
    #: CLI's ``--store-format`` selects.
    format_name: ClassVar[str]

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = Path(path)
        if self._path.exists() and not self._path.is_dir():
            raise StoreError(
                f"store path {str(self._path)!r} exists and is not a directory"
            )
        self._lock = threading.Lock()
        # Populated lazily: get() probes exactly the records it needs, so
        # opening a store stays O(1) however many records it has grown to.
        # refresh() performs the full scan when a complete view is wanted.
        self._index: dict[tuple[str, str, str], PredictionResult] = {}
        self.stats = StoreStats()

    @property
    def path(self) -> Path:
        """Root directory of the store."""
        return self._path

    def __len__(self) -> int:
        """Number of *indexed* records (run :meth:`refresh` for the disk total)."""
        with self._lock:
            return len(self._index)

    def keys(self) -> list[tuple[str, str, str]]:
        """All indexed ``(cache key, backend, canonical options)`` triples."""
        with self._lock:
            return list(self._index)

    def point_token(self, key: str, backend: str, options: dict | None = None) -> str:
        """The digest naming this point's record slot and claim file."""
        return point_token(key, backend, _canonical_options(options))

    def lease_manager(self, worker_id: str, ttl: float | None = None) -> "LeaseManager":
        """A claim/lease manager rooted in this store's ``leases/`` directory.

        Every worker sharing this store path shares the claim namespace, so
        a point claimed through one store object (or process, or machine on
        a shared filesystem) is visibly claimed through all of them.
        """
        from .leases import DEFAULT_LEASE_TTL, LeaseManager

        return LeaseManager(
            self._path / LEASES_DIR,
            worker_id,
            ttl=DEFAULT_LEASE_TTL if ttl is None else ttl,
        )

    def _publish_refresh(
        self, index: dict[tuple[str, str, str], "PredictionResult"], stats: StoreStats
    ) -> StoreStats:
        """Install a completed scan, *merging* entries indexed since it began.

        A ``put()`` racing the scan publishes its record to disk and to
        ``self._index`` after the scan already passed that slot; wholesale
        replacement would drop it from memory even though it is durably on
        disk (the lost-index-entry race).  Merging keeps such entries.  The
        flip side — an entry whose record was deleted mid-scan survives in
        memory — is resolved by :meth:`gc`, which drops the entries it
        purges explicitly.
        """
        with self._lock:
            for index_key, result in self._index.items():
                index.setdefault(index_key, result)
            self._index = index
            self.stats = stats
        return stats

    # -- engine contract -------------------------------------------------------

    @abc.abstractmethod
    def get(
        self, key: str, backend: str, options: dict | None = None
    ) -> "PredictionResult | None":
        """The stored result of one point, or ``None``."""

    @abc.abstractmethod
    def get_many(
        self, points: Sequence[tuple[str, str, dict | None]]
    ) -> dict[tuple[str, str], "PredictionResult"]:
        """Bulk lookup of ``(cache key, backend, options)`` points."""

    @abc.abstractmethod
    def put(
        self,
        key: str,
        backend: str,
        result: "PredictionResult",
        options: dict | None = None,
    ) -> None:
        """Persist one result atomically."""

    def put_many(
        self, records: Sequence[tuple[str, str, "PredictionResult", dict | None]]
    ) -> None:
        """Persist many results; engines may batch this into one transaction."""
        for key, backend, result, options in records:
            self.put(key, backend, result, options=options)

    @abc.abstractmethod
    def refresh(self) -> StoreStats:
        """Rescan the engine, merging the result into the in-memory index."""

    @abc.abstractmethod
    def gc(
        self,
        ttl: float | None = None,
        max_records: int | None = None,
        dry_run: bool = False,
    ) -> GcStats:
        """Expire, purge, and compact so the store stops growing without bound.

        * ``ttl`` — purge records older than this many seconds (age is the
          record's last write time);
        * ``max_records`` — after TTL/stale purging, evict the oldest
          records until at most this many remain;
        * stale records (written under another format/spec/backend version)
          are always purged — unlike a read path skip, gc is the explicit
          "this data is dead" operation;
        * corrupt records are quarantined exactly as the read path would;
        * expired lease files are always reaped;
        * ``dry_run`` reports what a real pass would do without deleting.
        """

    # -- shared maintenance helpers -------------------------------------------

    def _gc_leases(self, stats: GcStats, dry_run: bool) -> None:
        """Reap expired claim files under ``leases/`` (shared by all engines)."""
        from .leases import LeaseManager

        leases_dir = self._path / LEASES_DIR
        if not leases_dir.is_dir():
            return
        manager = LeaseManager(leases_dir, worker_id="gc")
        for info in manager.scan():
            if info.expired():
                stats.leases_removed += 1
                if not dry_run:
                    manager.reap(info.token)

    def _drop_indexed(self, index_keys: Sequence[tuple[str, str, str]]) -> None:
        """Forget purged records in memory so gc and the index agree."""
        with self._lock:
            for index_key in index_keys:
                self._index.pop(index_key, None)
