"""Durable result store: two engines, one contract, plus the sweep fabric.

``repro.api.store`` is a package of four layers:

* :mod:`~repro.api.store.base` — the :class:`BaseResultStore` contract every
  engine implements (versioning, corruption/quarantine, gc semantics) and
  shared helpers;
* :mod:`~repro.api.store.json_store` — the default sharded-JSON engine
  (:class:`ResultStore`), one atomic file per record;
* :mod:`~repro.api.store.sqlite_store` — the single-file WAL-mode SQLite
  engine (:class:`SqliteResultStore`) for O(1) cold-open on huge stores;
* :mod:`~repro.api.store.leases` — the claim/lease protocol cooperative
  sweep workers use to drain one grid with zero duplicate evaluations.

:func:`open_store` is the front door: it selects an engine by explicit
format name or by sniffing the on-disk layout, so callers (CLI, service,
daemon) stay engine-agnostic.
"""

from __future__ import annotations

import os
from pathlib import Path

from ...exceptions import ValidationError
from .base import (
    LEASES_DIR,
    QUARANTINE_DIR,
    STORE_FORMAT_VERSION,
    BaseResultStore,
    GcStats,
    StoreStats,
    _canonical_options,
    point_token,
)
from .json_store import ResultStore
from .leases import DEFAULT_LEASE_TTL, LeaseInfo, LeaseManager
from .sqlite_store import DB_FILENAME, SqliteResultStore

#: Engine names ``open_store`` / ``--store-format`` accept.
STORE_FORMATS = ("json", "sqlite")

_ENGINES: dict[str, type[BaseResultStore]] = {
    ResultStore.format_name: ResultStore,
    SqliteResultStore.format_name: SqliteResultStore,
}


def detect_store_format(path: str | os.PathLike) -> str | None:
    """The engine an existing store directory was written with, or ``None``.

    A ``store.sqlite3`` file marks the SQLite engine; a ``records/``
    directory marks sharded JSON.  An empty or absent directory has no
    format yet.
    """
    root = Path(path)
    if (root / DB_FILENAME).is_file():
        return SqliteResultStore.format_name
    if (root / "records").is_dir():
        return ResultStore.format_name
    return None


def open_store(
    path: str | os.PathLike, format: str | None = None
) -> BaseResultStore:
    """Open a result store, selecting the engine for the caller.

    ``format`` may be an explicit engine name (``"json"`` / ``"sqlite"``);
    when omitted the on-disk layout decides, and a brand-new directory gets
    the default JSON engine.  An explicit format that contradicts an
    existing store of the other engine is rejected rather than silently
    shadowing the data.
    """
    detected = detect_store_format(path)
    if format is None:
        chosen = detected or ResultStore.format_name
    else:
        if format not in _ENGINES:
            raise ValidationError(
                f"unknown store format {format!r}; expected one of {STORE_FORMATS}"
            )
        if detected is not None and detected != format:
            raise ValidationError(
                f"store at {str(path)!r} holds {detected!r} records; "
                f"refusing to open it as {format!r}"
            )
        chosen = format
    return _ENGINES[chosen](path)


__all__ = [
    "BaseResultStore",
    "DB_FILENAME",
    "DEFAULT_LEASE_TTL",
    "GcStats",
    "LEASES_DIR",
    "LeaseInfo",
    "LeaseManager",
    "QUARANTINE_DIR",
    "ResultStore",
    "STORE_FORMATS",
    "STORE_FORMAT_VERSION",
    "SqliteResultStore",
    "StoreStats",
    "_canonical_options",
    "detect_store_format",
    "open_store",
    "point_token",
]
