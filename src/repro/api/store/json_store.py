"""Sharded-JSON result store: one atomic file per record.

Layout: each record is one small JSON file under
``<store>/records/<hh>/<digest>.json`` where ``digest`` is the point token
(see :func:`~repro.api.store.base.point_token`) and ``hh`` its first two hex
characters.  One file per record keeps every write atomic (the record is
written to a temporary file in the same directory and ``os.replace``\\ d into
place), which makes concurrent writers on one store path safe: two processes
computing the same point race to rename identical content, and distinct
points never touch the same file.

Records are versioned three ways — the store format itself, the scenario
spec (:data:`~repro.api.scenario.SCENARIO_SPEC_VERSION`), and the producing
backend's ``version`` attribute.  A record written under any other version is
skipped as stale on load.  A truncated or garbled record file is never
fatal: it is counted, logged, and moved aside into ``<store>/.quarantine/``
(reason prefixed to the file name); the next ``put`` of that point writes a
fresh record.  Stale records are *not* quarantined — they are valid data for
a different code version.

Unusable probe outcomes are memoised: a stale or corrupt record would
otherwise be re-opened and re-JSON-decoded on *every* ``get`` of that point.
The memo is keyed by the file's stat signature ``(inode, mtime, size)``, so a
concurrent process overwriting the slot with a valid record (a new inode via
``os.replace``) is still picked up immediately — cross-process visibility
costs one ``stat`` per miss instead of one parse.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import tempfile
import time
from collections.abc import Sequence
from pathlib import Path

from ...exceptions import StoreError
from ..backends import backend_version
from ..results import PredictionResult
from ..scenario import SCENARIO_SPEC_VERSION
from .base import (
    _RECORD_MODE,
    _REQUIRED_FIELDS,
    QUARANTINE_DIR,
    STORE_FORMAT_VERSION,
    BaseResultStore,
    GcStats,
    StoreStats,
    _canonical_options,
)

logger = logging.getLogger(__name__)

#: Entries kept in the unusable-probe memo before the oldest are evicted.
_PROBE_MEMO_MAX = 4096

#: A file's identity for the probe memo: changes whenever the slot is
#: rewritten (os.replace allocates a new inode) or even touched in place.
_StatSignature = tuple[int, int, int]


def _stat_signature(stat: os.stat_result) -> _StatSignature:
    return (stat.st_ino, stat.st_mtime_ns, stat.st_size)


class ResultStore(BaseResultStore):
    """Disk-backed result mapping, sharded JSON engine."""

    format_name = "json"

    def __init__(self, path: str | os.PathLike) -> None:
        super().__init__(path)
        self._records_dir = self._path / "records"
        # Bounded memo of unusable probes: index key -> stat signature the
        # slot was last found stale/corrupt at.  Guarded by ``self._lock``;
        # invalidated per-key by put() and wholesale by refresh().
        self._probe_memo: dict[tuple[str, str, str], _StatSignature] = {}

    # -- lookup ---------------------------------------------------------------

    def get(
        self, key: str, backend: str, options: dict | None = None
    ) -> PredictionResult | None:
        """The stored result of one point, or ``None``.

        ``options`` are the backend's constructor options: a record is only a
        hit for the configuration that produced it.  Misses probe the disk
        before giving up, so records written by a concurrent process on the
        same store path are picked up without an explicit :meth:`refresh`;
        repeated probes of a slot known to be stale or corrupt cost one
        ``stat`` each, not a parse (see the probe memo in the module docs).
        """
        options_key = _canonical_options(options)
        index_key = (key, backend, options_key)
        with self._lock:
            hit = self._index.get(index_key)
        if hit is not None:
            return hit
        path = self._record_path(key, backend, options_key)
        return self._probe(index_key, path)

    def _probe(
        self, index_key: tuple[str, str, str], path: Path
    ) -> PredictionResult | None:
        """One memoised disk probe of a known-unindexed point."""
        try:
            signature = _stat_signature(os.stat(path))
        except OSError:
            return None  # no record file: nothing to parse, nothing to memo
        with self._lock:
            if self._probe_memo.get(index_key) == signature:
                return None  # unchanged since it was last found unusable
        # Probe outcomes go to a throwaway stats object: ``stats`` documents
        # the last full scan, and probes run concurrently from pool threads.
        loaded = self._read_record(path, StoreStats())
        if loaded is not None and loaded[:3] == index_key:
            with self._lock:
                self._index[index_key] = loaded[3]
                self._probe_memo.pop(index_key, None)
            return loaded[3]
        with self._lock:
            self._probe_memo[index_key] = signature
            while len(self._probe_memo) > _PROBE_MEMO_MAX:
                self._probe_memo.pop(next(iter(self._probe_memo)))
        return None

    def get_many(
        self, points: Sequence[tuple[str, str, dict | None]]
    ) -> dict[tuple[str, str], PredictionResult]:
        """Bulk lookup of ``(cache key, backend, options)`` points.

        Returns the stored results keyed by ``(cache key, backend)``; points
        without a usable record are simply absent.  Disk misses are resolved
        with **one directory listing per shard** instead of one file probe
        per record: a sweep planner asking for thousands of mostly-missing
        points costs at most 256 ``listdir`` calls, and only record files
        that actually exist are opened and parsed (stale/corrupt slots via
        the same probe memo as :meth:`get`).
        """
        found: dict[tuple[str, str], PredictionResult] = {}
        shard_probes: dict[Path, list[tuple[tuple[str, str, str], Path]]] = {}
        with self._lock:
            for key, backend, options in points:
                options_key = _canonical_options(options)
                index_key = (key, backend, options_key)
                hit = self._index.get(index_key)
                if hit is not None:
                    found[(key, backend)] = hit
                    continue
                path = self._record_path(key, backend, options_key)
                shard_probes.setdefault(path.parent, []).append((index_key, path))
        for shard_dir, probes in shard_probes.items():
            try:
                present = set(os.listdir(shard_dir))
            except OSError:
                continue
            for index_key, path in probes:
                if path.name not in present:
                    continue
                loaded = self._probe(index_key, path)
                if loaded is not None:
                    found[(index_key[0], index_key[1])] = loaded
        return found

    # -- writes ---------------------------------------------------------------

    def put(
        self,
        key: str,
        backend: str,
        result: PredictionResult,
        options: dict | None = None,
    ) -> None:
        """Persist one result atomically (write-temp-then-rename)."""
        options_key = _canonical_options(options)
        record = {
            "format": STORE_FORMAT_VERSION,
            "spec_version": SCENARIO_SPEC_VERSION,
            "backend": backend,
            "backend_version": backend_version(backend),
            "options": options_key,
            "key": key,
            "result": result.to_dict(),
            "created": time.time(),
        }
        path = self._record_path(key, backend, options_key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{path.stem[:16]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(record, handle, sort_keys=True)
                os.chmod(tmp_name, _RECORD_MODE)
                os.replace(tmp_name, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                raise
        except (OSError, TypeError, ValueError) as exc:
            # TypeError/ValueError cover unserialisable result payloads from
            # custom backends; the store contract is never-fatal either way.
            raise StoreError(f"cannot write store record {str(path)!r}: {exc}") from exc
        with self._lock:
            self._index[(key, backend, options_key)] = result
            self._probe_memo.pop((key, backend, options_key), None)

    # -- maintenance ----------------------------------------------------------

    def refresh(self) -> StoreStats:
        """Rescan the directory; the result is *merged* over the live index.

        Merging (rather than wholesale replacement) closes the race where a
        concurrent ``put`` lands after the scan already passed its shard:
        the record is durably on disk, and its index entry must survive the
        refresh — see :meth:`BaseResultStore._publish_refresh`.
        """
        stats = StoreStats()
        index: dict[tuple[str, str, str], PredictionResult] = {}
        if self._records_dir.is_dir():
            for record_file in sorted(self._records_dir.glob("??/*.json")):
                loaded = self._read_record(record_file, stats)
                if loaded is not None:
                    key, backend, options_key, result = loaded
                    index[(key, backend, options_key)] = result
        with self._lock:
            self._probe_memo.clear()
        return self._publish_refresh(index, stats)

    def gc(
        self,
        ttl: float | None = None,
        max_records: int | None = None,
        dry_run: bool = False,
    ) -> GcStats:
        """TTL expiry, stale purge, size-capped eviction, shard compaction.

        Record age is the file's mtime (every atomic put rewrites it, so
        mtime is the record's last write).  Eviction removes oldest-first.
        Purged records drop out of the in-memory index too; emptied shard
        directories are removed so a shrunken store stays O(occupied shards)
        to scan.
        """
        stats = GcStats(dry_run=dry_run)
        now = time.time()
        survivors: list[tuple[float, Path, tuple[str, str, str] | None]] = []
        purged_keys: list[tuple[str, str, str]] = []

        def purge(path: Path, index_key: tuple[str, str, str] | None) -> None:
            with contextlib.suppress(OSError):
                stats.reclaimed_bytes += path.stat().st_size
            if not dry_run:
                with contextlib.suppress(OSError):
                    os.unlink(path)
                if index_key is not None:
                    purged_keys.append(index_key)

        if self._records_dir.is_dir():
            for record_file in sorted(self._records_dir.glob("??/*.json")):
                stats.examined += 1
                scan = StoreStats()
                loaded = self._read_record(record_file, scan)
                if scan.corrupt:
                    stats.corrupt += 1  # already quarantined by the read path
                    continue
                try:
                    mtime = record_file.stat().st_mtime
                except OSError:
                    continue
                if scan.stale:
                    stats.stale += 1
                    purge(record_file, None)
                    continue
                if loaded is None:
                    continue  # vanished mid-scan
                index_key = loaded[:3]
                if ttl is not None and now - mtime > ttl:
                    stats.expired += 1
                    purge(record_file, index_key)
                    continue
                survivors.append((mtime, record_file, index_key))
        if max_records is not None and len(survivors) > max_records:
            survivors.sort(key=lambda entry: entry[0])
            excess = len(survivors) - max_records
            for mtime, path, index_key in survivors[:excess]:
                stats.evicted += 1
                purge(path, index_key)
            survivors = survivors[excess:]
        stats.remaining = len(survivors)
        self._drop_indexed(purged_keys)
        self._gc_leases(stats, dry_run)
        if not dry_run and self._records_dir.is_dir():
            for shard in sorted(self._records_dir.iterdir()):
                if shard.is_dir():
                    with contextlib.suppress(OSError):
                        shard.rmdir()  # only succeeds when empty
                        stats.shards_removed += 1
        return stats

    # -- internals ------------------------------------------------------------

    def _record_path(self, key: str, backend: str, options_key: str) -> Path:
        from .base import point_token

        digest = point_token(key, backend, options_key)
        return self._records_dir / digest[:2] / f"{digest}.json"

    def _quarantine(self, path: Path, reason: str) -> Path | None:
        """Move a corrupt record into ``.quarantine/`` (never fatal).

        The file keeps its name with the corruption reason prefixed, so the
        quarantine directory reads as a report.  Any OS-level failure (a
        concurrent reader racing the same move, a read-only store) leaves
        the record in place and is swallowed: quarantining is best-effort
        bookkeeping on top of the skip-and-count contract, not part of it.
        """
        target_dir = self._path / QUARANTINE_DIR
        target = target_dir / f"{reason}--{path.name}"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            return None
        return target

    def _read_record(
        self, path: Path, stats: StoreStats
    ) -> tuple[str, str, str, PredictionResult] | None:
        """Parse one record file; corruption and staleness are never fatal."""

        def corrupt(reason: str, detail: str = "") -> None:
            stats.corrupt += 1
            quarantined = self._quarantine(path, reason)
            if quarantined is not None:
                stats.quarantined += 1
            logger.warning(
                "skipping corrupt store record %s (%s%s)%s",
                path,
                reason,
                f": {detail}" if detail else "",
                f"; quarantined to {quarantined}" if quarantined else "",
            )

        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            corrupt("unreadable", str(exc))
            return None
        if not isinstance(record, dict) or any(
            field not in record for field in _REQUIRED_FIELDS
        ):
            corrupt("malformed")
            return None
        if (
            record["format"] != STORE_FORMAT_VERSION
            or record["spec_version"] != SCENARIO_SPEC_VERSION
            or record["backend_version"] != backend_version(record["backend"])
        ):
            # Stale is not corrupt: the record is valid data for another
            # code version and must survive in place (a downgrade, or a
            # peer on an older version, can still use it).
            stats.stale += 1
            logger.info("skipping stale store record %s (version mismatch)", path)
            return None
        try:
            result = PredictionResult.from_dict(record["result"])
        except Exception as exc:  # noqa: BLE001 — any decode failure is corruption
            corrupt("undecodable", str(exc))
            return None
        stats.loaded += 1
        return record["key"], record["backend"], record["options"], result
