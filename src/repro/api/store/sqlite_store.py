"""Single-file SQLite result store: O(1) cold-open on huge stores.

The sharded-JSON engine pays one directory listing per shard on a cold bulk
probe — cheap at thousands of records, painful at millions.  This engine
keeps every record as one row of one WAL-mode SQLite file
(``<store>/store.sqlite3``), so a cold ``get_many`` over an arbitrary grid
is a handful of indexed ``SELECT``\\ s regardless of store size, and
``put_many`` batches a whole sweep's results into one transaction.

The contract is identical to the JSON engine (same envelope fields, same
triple versioning, stale-skipped-in-place, corruption never fatal).  Two
corruption granularities exist here:

* **row-level** — a row whose ``result`` payload fails to decode is counted
  corrupt, a JSON dump of the row is quarantined into
  ``<store>/.quarantine/``, and the row is deleted;
* **file-level** — an unopenable/unreadable database file is itself moved
  into quarantine and a fresh empty database takes its place, mirroring
  how the JSON engine survives a torn record file.

WAL mode plus a busy timeout makes concurrent cross-process writers safe;
within a process a single connection (``check_same_thread=False``) is
shared, with every database operation serialised under the store lock.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import sqlite3
import time
from collections.abc import Sequence
from pathlib import Path

from ...exceptions import StoreError
from ..backends import backend_version
from ..results import PredictionResult
from ..scenario import SCENARIO_SPEC_VERSION
from .base import (
    QUARANTINE_DIR,
    STORE_FORMAT_VERSION,
    BaseResultStore,
    GcStats,
    StoreStats,
    _canonical_options,
    point_token,
)

logger = logging.getLogger(__name__)

#: Name of the database file inside the store directory.
DB_FILENAME = "store.sqlite3"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    token TEXT PRIMARY KEY,
    format INTEGER NOT NULL,
    spec_version INTEGER NOT NULL,
    backend TEXT NOT NULL,
    -- no declared type: BLOB affinity stores the backend's version verbatim
    -- (int, string, or NULL for an unregistered backend)
    backend_version,
    options TEXT NOT NULL,
    key TEXT NOT NULL,
    result TEXT NOT NULL,
    created REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS records_created ON records (created);
"""

_ROW_FIELDS = (
    "token",
    "format",
    "spec_version",
    "backend",
    "backend_version",
    "options",
    "key",
    "result",
    "created",
)

_SELECT = f"SELECT {', '.join(_ROW_FIELDS)} FROM records"


class SqliteResultStore(BaseResultStore):
    """Disk-backed result mapping, single-file SQLite engine."""

    format_name = "sqlite"

    def __init__(self, path: str | os.PathLike) -> None:
        super().__init__(path)
        self._db_path = self._path / DB_FILENAME
        self._conn: sqlite3.Connection | None = None
        # Unusable-probe memo: token -> ``created`` stamp the row was last
        # found stale/corrupt at.  A peer overwriting the row rewrites
        # ``created``, so the memo never hides a fresh record.  Guarded by
        # ``self._lock``; invalidated by put() and cleared by refresh().
        self._stale_rows: dict[str, float] = {}

    # -- connection management -------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        """Open (or recover) the database.  Caller holds ``self._lock``."""
        if self._conn is not None:
            return self._conn
        self._path.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = self._open_db()
        except sqlite3.Error as exc:
            # File-level corruption: quarantine the damaged database and
            # start fresh, mirroring the JSON engine's torn-record handling.
            self._quarantine_db(str(exc))
            try:
                self._conn = self._open_db()
            except sqlite3.Error as fresh_exc:
                raise StoreError(
                    f"cannot open store database {str(self._db_path)!r}: {fresh_exc}"
                ) from fresh_exc
        return self._conn

    def _open_db(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self._db_path, timeout=30.0, check_same_thread=False
        )
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.executescript(_SCHEMA)
            conn.commit()
        except sqlite3.Error:
            conn.close()
            raise
        return conn

    def _quarantine_db(self, detail: str) -> None:
        self._conn = None
        target_dir = self._path / QUARANTINE_DIR
        target = target_dir / f"unreadable-db--{DB_FILENAME}.{os.getpid()}"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(self._db_path, target)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(self._db_path)
            target = None
        for suffix in ("-wal", "-shm"):
            with contextlib.suppress(OSError):
                os.unlink(f"{self._db_path}{suffix}")
        logger.warning(
            "store database %s is unreadable (%s)%s; starting fresh",
            self._db_path,
            detail,
            f"; quarantined to {target}" if target else "",
        )

    def close(self) -> None:
        """Close the database connection (reopened lazily on next use)."""
        with self._lock:
            if self._conn is not None:
                with contextlib.suppress(sqlite3.Error):
                    self._conn.close()
                self._conn = None

    # -- lookup ---------------------------------------------------------------

    def get(
        self, key: str, backend: str, options: dict | None = None
    ) -> PredictionResult | None:
        """The stored result of one point, or ``None``.

        Like the JSON engine, a miss probes the database before giving up,
        so rows committed by a concurrent process are picked up without an
        explicit :meth:`refresh`.
        """
        options_key = _canonical_options(options)
        index_key = (key, backend, options_key)
        token = point_token(key, backend, options_key)
        with self._lock:
            hit = self._index.get(index_key)
            if hit is not None:
                return hit
            row = self._fetch_one(token)
            if row is None:
                return None
            if self._stale_rows.get(token) == row[8]:
                return None  # unchanged since it was last found unusable
            loaded = self._load_row(row, StoreStats())
            if loaded is None or loaded[:3] != index_key:
                self._stale_rows[token] = row[8]
                return None
            self._stale_rows.pop(token, None)
            self._index[index_key] = loaded[3]
            return loaded[3]

    def get_many(
        self, points: Sequence[tuple[str, str, dict | None]]
    ) -> dict[tuple[str, str], PredictionResult]:
        """Bulk lookup; misses are resolved with batched indexed ``SELECT``\\ s."""
        found: dict[tuple[str, str], PredictionResult] = {}
        with self._lock:
            misses: dict[str, tuple[str, str, str]] = {}
            for key, backend, options in points:
                options_key = _canonical_options(options)
                index_key = (key, backend, options_key)
                hit = self._index.get(index_key)
                if hit is not None:
                    found[(key, backend)] = hit
                    continue
                misses[point_token(key, backend, options_key)] = index_key
            if not misses:
                return found
            tokens = list(misses)
            stats = StoreStats()
            for start in range(0, len(tokens), 500):
                chunk = tokens[start : start + 500]
                rows = self._execute(
                    f"{_SELECT} WHERE token IN ({','.join('?' * len(chunk))})",
                    chunk,
                ).fetchall()
                for row in rows:
                    token = row[0]
                    index_key = misses[token]
                    if self._stale_rows.get(token) == row[8]:
                        continue  # unchanged since it was last found unusable
                    loaded = self._load_row(row, stats)
                    if loaded is None or loaded[:3] != index_key:
                        self._stale_rows[token] = row[8]
                        continue
                    self._stale_rows.pop(token, None)
                    self._index[index_key] = loaded[3]
                    found[(index_key[0], index_key[1])] = loaded[3]
        return found

    # -- writes ---------------------------------------------------------------

    def put(
        self,
        key: str,
        backend: str,
        result: PredictionResult,
        options: dict | None = None,
    ) -> None:
        """Persist one result (an upsert in one implicit transaction)."""
        self.put_many([(key, backend, result, options)])

    def put_many(
        self, records: Sequence[tuple[str, str, PredictionResult, dict | None]]
    ) -> None:
        """Persist many results in **one transaction** (the batching win)."""
        if not records:
            return
        rows = []
        indexed = []
        now = time.time()
        for key, backend, result, options in records:
            options_key = _canonical_options(options)
            try:
                payload = json.dumps(result.to_dict(), sort_keys=True)
            except (TypeError, ValueError) as exc:
                raise StoreError(
                    f"cannot serialise store record for key {key!r}: {exc}"
                ) from exc
            rows.append(
                (
                    point_token(key, backend, options_key),
                    STORE_FORMAT_VERSION,
                    SCENARIO_SPEC_VERSION,
                    backend,
                    backend_version(backend),
                    options_key,
                    key,
                    payload,
                    now,
                )
            )
            indexed.append(((key, backend, options_key), result))
        with self._lock:
            conn = self._connect()
            try:
                with conn:  # one transaction for the whole batch
                    conn.executemany(
                        f"INSERT OR REPLACE INTO records ({', '.join(_ROW_FIELDS)}) "
                        f"VALUES ({','.join('?' * len(_ROW_FIELDS))})",
                        rows,
                    )
            except sqlite3.Error as exc:
                raise StoreError(
                    f"cannot write store records to {str(self._db_path)!r}: {exc}"
                ) from exc
            for index_key, result in indexed:
                self._index[index_key] = result
            for row in rows:
                self._stale_rows.pop(row[0], None)

    # -- maintenance ----------------------------------------------------------

    def refresh(self) -> StoreStats:
        """Full table scan, merged over the live index (see the JSON engine)."""
        stats = StoreStats()
        index: dict[tuple[str, str, str], PredictionResult] = {}
        with self._lock:
            self._stale_rows.clear()
            if self._db_path.exists() or self._conn is not None:
                for row in self._execute(f"{_SELECT} ORDER BY token").fetchall():
                    loaded = self._load_row(row, stats)
                    if loaded is not None:
                        key, backend, options_key, result = loaded
                        index[(key, backend, options_key)] = result
        return self._publish_refresh(index, stats)

    def gc(
        self,
        ttl: float | None = None,
        max_records: int | None = None,
        dry_run: bool = False,
    ) -> GcStats:
        """TTL expiry, stale purge, size-capped eviction, then ``VACUUM``.

        Row age is its ``created`` column (rewritten on every put).  After a
        non-dry pass the database is vacuumed so reclaimed pages actually
        shrink the file — the SQLite analogue of removing emptied shards.
        """
        stats = GcStats(dry_run=dry_run)
        now = time.time()
        purged_keys: list[tuple[str, str, str]] = []
        with self._lock:
            if not self._db_path.exists() and self._conn is None:
                self._gc_leases(stats, dry_run)
                return stats
            size_before = 0
            with contextlib.suppress(OSError):
                size_before = self._db_path.stat().st_size
            doomed: list[str] = []
            survivors: list[tuple[float, str]] = []
            for row in self._execute(f"{_SELECT} ORDER BY created").fetchall():
                stats.examined += 1
                scan = StoreStats()
                loaded = self._load_row(row, scan, quarantine_and_delete=not dry_run)
                token, created = row[0], row[8]
                if scan.corrupt:
                    stats.corrupt += 1
                    continue  # quarantined (and deleted) by _load_row
                if scan.stale:
                    stats.stale += 1
                    doomed.append(token)
                    continue
                if loaded is None:
                    continue
                if ttl is not None and now - created > ttl:
                    stats.expired += 1
                    doomed.append(token)
                    purged_keys.append(loaded[:3])
                    continue
                survivors.append((created, token, loaded[:3]))
            if max_records is not None and len(survivors) > max_records:
                excess = len(survivors) - max_records
                for _created, token, index_key in survivors[:excess]:
                    stats.evicted += 1
                    doomed.append(token)
                    purged_keys.append(index_key)
                survivors = survivors[excess:]
            stats.remaining = len(survivors)
            if not dry_run and doomed:
                conn = self._connect()
                with conn:
                    for start in range(0, len(doomed), 500):
                        chunk = doomed[start : start + 500]
                        conn.execute(
                            f"DELETE FROM records WHERE token IN "
                            f"({','.join('?' * len(chunk))})",
                            chunk,
                        )
            if not dry_run:
                conn = self._connect()
                with contextlib.suppress(sqlite3.Error):
                    conn.execute("VACUUM")
                with contextlib.suppress(OSError):
                    stats.reclaimed_bytes = max(
                        0, size_before - self._db_path.stat().st_size
                    )
            elif doomed:
                # Rough dry-run estimate: average row weight times doomed rows.
                if stats.examined:
                    stats.reclaimed_bytes = int(
                        size_before * len(doomed) / stats.examined
                    )
        self._drop_indexed(purged_keys)
        self._gc_leases(stats, dry_run)
        return stats

    # -- internals ------------------------------------------------------------

    def _execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        """Run one statement, recovering once from file-level corruption.

        Caller holds ``self._lock``.
        """
        conn = self._connect()
        try:
            return conn.execute(sql, params)
        except sqlite3.DatabaseError as exc:
            self._quarantine_db(str(exc))
            return self._connect().execute(sql, params)

    def _fetch_one(self, token: str) -> tuple | None:
        return self._execute(f"{_SELECT} WHERE token = ?", (token,)).fetchone()

    def _quarantine_row(self, row: tuple, reason: str) -> Path | None:
        """Preserve a corrupt row as a JSON file under ``.quarantine/``."""
        target_dir = self._path / QUARANTINE_DIR
        target = target_dir / f"{reason}--{row[0]}.json"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            target.write_text(
                json.dumps(dict(zip(_ROW_FIELDS, row)), sort_keys=True, default=repr)
            )
        except OSError:
            return None
        return target

    def _load_row(
        self, row: tuple, stats: StoreStats, quarantine_and_delete: bool = True
    ) -> tuple[str, str, str, PredictionResult] | None:
        """Decode one row; corruption and staleness are never fatal.

        Caller holds ``self._lock``.  A corrupt row is quarantined to a JSON
        file and (when ``quarantine_and_delete``) deleted from the table —
        the row-level analogue of moving a torn record file aside.
        """
        (token, fmt, spec, backend, b_version, options_key, key, payload, _) = row
        if fmt != STORE_FORMAT_VERSION or spec != SCENARIO_SPEC_VERSION or (
            b_version != backend_version(backend)
        ):
            stats.stale += 1
            logger.info("skipping stale store row %s (version mismatch)", token)
            return None
        try:
            result = PredictionResult.from_dict(json.loads(payload))
        except Exception as exc:  # noqa: BLE001 — any decode failure is corruption
            stats.corrupt += 1
            quarantined = self._quarantine_row(row, "undecodable")
            if quarantined is not None:
                stats.quarantined += 1
            if quarantine_and_delete:
                with contextlib.suppress(sqlite3.Error, StoreError):
                    conn = self._connect()
                    with conn:
                        conn.execute("DELETE FROM records WHERE token = ?", (token,))
            logger.warning(
                "skipping corrupt store row %s (undecodable: %s)%s",
                token,
                exc,
                f"; quarantined to {quarantined}" if quarantined else "",
            )
            return None
        stats.loaded += 1
        return key, backend, options_key, result
