"""Persistent result store: prediction results that survive process restarts.

A :class:`ResultStore` materialises :class:`~repro.api.results.PredictionResult`
records on disk keyed by ``(Scenario.cache_key(), backend)``, so sweeps,
figure runs, and benches pay for each (scenario, backend) evaluation exactly
once across process lifetimes — re-running a sweep after a crash (or on a
fresh machine sharing the store directory) replays the completed points from
disk and only computes the missing ones.

Layout: sharded JSON.  Each record is one small JSON file under
``<store>/records/<hh>/<digest>.json`` where ``digest`` is the SHA-256 of the
``(backend, canonical backend options, cache key)`` triple and ``hh`` its
first two hex characters.  Backend constructor options are part of the key
because they change what a backend computes: two services configured
differently never share a record.  One
file per record keeps every write atomic (the record is written to a
temporary file in the same directory and ``os.replace``d into place), which
makes concurrent writers on one store path safe: two processes computing the
same point race to rename identical content, and distinct points never touch
the same file.

Records are versioned three ways — the store format itself, the scenario
spec (:data:`~repro.api.scenario.SCENARIO_SPEC_VERSION`), and the producing
backend's ``version`` attribute.  A record written under any other version is
skipped as stale on load, so bumping a backend's version invalidates exactly
that backend's cached results.  A truncated or garbled record file is never
fatal: it is counted in :attr:`ResultStore.stats`, logged, and moved aside
into the ``<store>/.quarantine/`` directory (reason prefixed to the file
name) so corruption stays inspectable instead of silently vanishing; the
next ``put`` of that point writes a fresh record.  Stale records are *not*
quarantined — they are valid data for a different code version.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import tempfile
import threading
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import StoreError
from .backends import backend_version
from .results import PredictionResult
from .scenario import SCENARIO_SPEC_VERSION

logger = logging.getLogger(__name__)

#: Version of the on-disk record envelope; bump on layout changes.
STORE_FORMAT_VERSION = 1

#: Sibling directory corrupt records are moved into (reason-prefixed names).
QUARANTINE_DIR = ".quarantine"

#: Fields every record envelope must carry to be considered well-formed.
_REQUIRED_FIELDS = (
    "format",
    "spec_version",
    "backend",
    "backend_version",
    "options",
    "key",
    "result",
)


def _current_umask() -> int:
    """The process umask (readable only by setting and restoring it)."""
    mask = os.umask(0)
    os.umask(mask)
    return mask


#: Permissions for record files.  mkstemp creates 0600 files, but shared
#: store directories need ordinary umask-governed permissions so peers can
#: read each other's records.  Captured once at import: the umask read is a
#: process-global set-and-restore and must not race concurrent puts.
_RECORD_MODE = 0o666 & ~_current_umask()


def _canonical_options(options: "dict | None") -> str:
    """Stable string form of a backend's constructor options.

    Options change what a backend computes, so they partition the store:
    they are folded into the record digest and envelope.  ``default=repr``
    keeps this total — unserialisable option values yield a stable-enough
    key instead of an exception on lookup.
    """
    return json.dumps(options or {}, sort_keys=True, default=repr)


@dataclass
class StoreStats:
    """Outcome of one disk scan: how many records were usable."""

    loaded: int = 0
    #: Unparseable or structurally invalid record files (skipped, logged).
    corrupt: int = 0
    #: Well-formed records written under a different format/spec/backend version.
    stale: int = 0
    #: Corrupt records successfully moved into the quarantine directory
    #: (at most :attr:`corrupt`; a quarantine move can itself fail).
    quarantined: int = 0


class ResultStore:
    """Disk-backed ``(cache key, backend) -> PredictionResult`` mapping."""

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = Path(path)
        if self._path.exists() and not self._path.is_dir():
            raise StoreError(
                f"store path {str(self._path)!r} exists and is not a directory"
            )
        self._records_dir = self._path / "records"
        self._lock = threading.Lock()
        # Populated lazily: get() probes exactly the record files it needs,
        # so opening a store stays O(1) however many records it has grown to.
        # refresh() performs the full scan when a complete view is wanted.
        self._index: dict[tuple[str, str, str], PredictionResult] = {}
        self.stats = StoreStats()

    @property
    def path(self) -> Path:
        """Root directory of the store."""
        return self._path

    def __len__(self) -> int:
        """Number of *indexed* records (run :meth:`refresh` for the disk total)."""
        with self._lock:
            return len(self._index)

    def keys(self) -> list[tuple[str, str, str]]:
        """All indexed ``(cache key, backend, canonical options)`` triples."""
        with self._lock:
            return list(self._index)

    # -- lookup ---------------------------------------------------------------

    def get(
        self, key: str, backend: str, options: dict | None = None
    ) -> PredictionResult | None:
        """The stored result of one point, or ``None``.

        ``options`` are the backend's constructor options: a record is only a
        hit for the configuration that produced it.  Misses probe the disk
        before giving up, so records written by a concurrent process on the
        same store path are picked up without an explicit :meth:`refresh`.
        """
        options_key = _canonical_options(options)
        index_key = (key, backend, options_key)
        with self._lock:
            hit = self._index.get(index_key)
        if hit is not None:
            return hit
        # Probe outcomes go to a throwaway stats object: ``stats`` documents
        # the last full scan, and probes run concurrently from pool threads.
        loaded = self._read_record(
            self._record_path(key, backend, options_key), StoreStats()
        )
        if loaded is not None and loaded[:3] == index_key:
            with self._lock:
                self._index[index_key] = loaded[3]
            return loaded[3]
        return None

    def get_many(
        self, points: Sequence[tuple[str, str, dict | None]]
    ) -> dict[tuple[str, str], PredictionResult]:
        """Bulk lookup of ``(cache key, backend, options)`` points.

        Returns the stored results keyed by ``(cache key, backend)``; points
        without a usable record are simply absent.  Disk misses are resolved
        with **one directory listing per shard** instead of one file probe
        per record: a sweep planner asking for thousands of mostly-missing
        points costs at most 256 ``listdir`` calls, and only record files
        that actually exist are opened and parsed.
        """
        found: dict[tuple[str, str], PredictionResult] = {}
        shard_probes: dict[Path, list[tuple[tuple[str, str, str], Path]]] = {}
        with self._lock:
            for key, backend, options in points:
                options_key = _canonical_options(options)
                index_key = (key, backend, options_key)
                hit = self._index.get(index_key)
                if hit is not None:
                    found[(key, backend)] = hit
                    continue
                path = self._record_path(key, backend, options_key)
                shard_probes.setdefault(path.parent, []).append((index_key, path))
        for shard_dir, probes in shard_probes.items():
            try:
                present = set(os.listdir(shard_dir))
            except OSError:
                continue
            for index_key, path in probes:
                if path.name not in present:
                    continue
                loaded = self._read_record(path, StoreStats())
                if loaded is not None and loaded[:3] == index_key:
                    with self._lock:
                        self._index[index_key] = loaded[3]
                    found[(index_key[0], index_key[1])] = loaded[3]
        return found

    # -- writes ---------------------------------------------------------------

    def put(
        self,
        key: str,
        backend: str,
        result: PredictionResult,
        options: dict | None = None,
    ) -> None:
        """Persist one result atomically (write-temp-then-rename)."""
        options_key = _canonical_options(options)
        record = {
            "format": STORE_FORMAT_VERSION,
            "spec_version": SCENARIO_SPEC_VERSION,
            "backend": backend,
            "backend_version": backend_version(backend),
            "options": options_key,
            "key": key,
            "result": result.to_dict(),
        }
        path = self._record_path(key, backend, options_key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{path.stem[:16]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(record, handle, sort_keys=True)
                os.chmod(tmp_name, _RECORD_MODE)
                os.replace(tmp_name, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                raise
        except (OSError, TypeError, ValueError) as exc:
            # TypeError/ValueError cover unserialisable result payloads from
            # custom backends; the store contract is never-fatal either way.
            raise StoreError(f"cannot write store record {str(path)!r}: {exc}") from exc
        with self._lock:
            self._index[(key, backend, options_key)] = result

    # -- maintenance ----------------------------------------------------------

    def refresh(self) -> StoreStats:
        """Rescan the directory, replacing the in-memory index."""
        stats = StoreStats()
        index: dict[tuple[str, str, str], PredictionResult] = {}
        if self._records_dir.is_dir():
            for record_file in sorted(self._records_dir.glob("??/*.json")):
                loaded = self._read_record(record_file, stats)
                if loaded is not None:
                    key, backend, options_key, result = loaded
                    index[(key, backend, options_key)] = result
        with self._lock:
            self._index = index
            self.stats = stats
        return stats

    # -- internals ------------------------------------------------------------

    def _record_path(self, key: str, backend: str, options_key: str) -> Path:
        digest = hashlib.sha256(f"{backend}\n{options_key}\n{key}".encode()).hexdigest()
        return self._records_dir / digest[:2] / f"{digest}.json"

    def _quarantine(self, path: Path, reason: str) -> Path | None:
        """Move a corrupt record into ``.quarantine/`` (never fatal).

        The file keeps its name with the corruption reason prefixed, so the
        quarantine directory reads as a report.  Any OS-level failure (a
        concurrent reader racing the same move, a read-only store) leaves
        the record in place and is swallowed: quarantining is best-effort
        bookkeeping on top of the skip-and-count contract, not part of it.
        """
        target_dir = self._path / QUARANTINE_DIR
        target = target_dir / f"{reason}--{path.name}"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            return None
        return target

    def _read_record(
        self, path: Path, stats: StoreStats
    ) -> tuple[str, str, str, PredictionResult] | None:
        """Parse one record file; corruption and staleness are never fatal."""

        def corrupt(reason: str, detail: str = "") -> None:
            stats.corrupt += 1
            quarantined = self._quarantine(path, reason)
            if quarantined is not None:
                stats.quarantined += 1
            logger.warning(
                "skipping corrupt store record %s (%s%s)%s",
                path,
                reason,
                f": {detail}" if detail else "",
                f"; quarantined to {quarantined}" if quarantined else "",
            )

        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            corrupt("unreadable", str(exc))
            return None
        if not isinstance(record, dict) or any(
            field not in record for field in _REQUIRED_FIELDS
        ):
            corrupt("malformed")
            return None
        if (
            record["format"] != STORE_FORMAT_VERSION
            or record["spec_version"] != SCENARIO_SPEC_VERSION
            or record["backend_version"] != backend_version(record["backend"])
        ):
            # Stale is not corrupt: the record is valid data for another
            # code version and must survive in place (a downgrade, or a
            # peer on an older version, can still use it).
            stats.stale += 1
            logger.info("skipping stale store record %s (version mismatch)", path)
            return None
        try:
            result = PredictionResult.from_dict(record["result"])
        except Exception as exc:  # noqa: BLE001 — any decode failure is corruption
            corrupt("undecodable", str(exc))
            return None
        stats.loaded += 1
        return record["key"], record["backend"], record["options"], result
