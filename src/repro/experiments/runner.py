"""Run one experiment point: simulate the workload and evaluate the model.

An *experiment point* fixes the number of nodes, the input size, the block
size, and the number of concurrent jobs.  For each point we

1. run the YARN simulator ``repetitions`` times with different seeds (the
   paper repeats every experiment 5 times) and take the median of the average
   job response times as the **measured** value;
2. build the analytic model input for the same workload and evaluate the
   **fork/join** and **Tripathi** variants;
3. record the relative errors of both estimates.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..analysis.errors import relative_error
from ..config import ClusterConfig, SchedulerConfig
from ..core.estimators import EstimatorKind
from ..core.model import Hadoop2PerformanceModel
from ..exceptions import ExperimentError
from ..hadoop.simulator import ClusterSimulator
from ..workloads.generators import WorkloadSpec, paper_cluster, paper_scheduler
from ..workloads.profiles import model_input_from_profile

#: Number of simulator repetitions per point (the paper uses 5).
DEFAULT_REPETITIONS = 3
#: Base seed from which the per-repetition seeds are derived.
DEFAULT_BASE_SEED = 1234


@dataclass(frozen=True)
class ExperimentPoint:
    """Result of one experiment point."""

    num_nodes: int
    num_jobs: int
    input_size_bytes: int
    block_size_bytes: int
    measured_seconds: float
    forkjoin_seconds: float
    tripathi_seconds: float

    @property
    def forkjoin_error(self) -> float:
        """Signed relative error of the fork/join estimate."""
        return relative_error(self.forkjoin_seconds, self.measured_seconds)

    @property
    def tripathi_error(self) -> float:
        """Signed relative error of the Tripathi estimate."""
        return relative_error(self.tripathi_seconds, self.measured_seconds)


@dataclass
class ExperimentSeries:
    """A sweep over one x-axis (nodes or jobs) at fixed other parameters."""

    x_label: str
    x_values: list[float] = field(default_factory=list)
    points: list[ExperimentPoint] = field(default_factory=list)

    def series(self) -> dict[str, list[float]]:
        """Figure-style series: measured, fork/join, Tripathi."""
        return {
            "HadoopSetup": [point.measured_seconds for point in self.points],
            "Fork/join": [point.forkjoin_seconds for point in self.points],
            "Tripathi": [point.tripathi_seconds for point in self.points],
        }

    def errors(self, estimator: EstimatorKind) -> list[float]:
        """Signed relative errors of one estimator over the series."""
        if estimator is EstimatorKind.FORK_JOIN:
            return [point.forkjoin_error for point in self.points]
        return [point.tripathi_error for point in self.points]


def simulate_measured_response(
    workload: WorkloadSpec,
    cluster: ClusterConfig,
    scheduler: SchedulerConfig,
    repetitions: int = DEFAULT_REPETITIONS,
    base_seed: int = DEFAULT_BASE_SEED,
) -> float:
    """Median over repetitions of the mean job response time (the "measurement")."""
    if repetitions <= 0:
        raise ExperimentError("repetitions must be positive")
    means = []
    for repetition in range(repetitions):
        simulator = ClusterSimulator(cluster, scheduler, seed=base_seed + repetition)
        for job_config in workload.job_configs():
            simulator.submit_job(job_config, workload.profile.simulator_profile())
        result = simulator.run()
        means.append(result.mean_response_time)
    return statistics.median(means)


def run_experiment_point(
    workload: WorkloadSpec,
    num_nodes: int,
    repetitions: int = DEFAULT_REPETITIONS,
    base_seed: int = DEFAULT_BASE_SEED,
    cluster: ClusterConfig | None = None,
    scheduler: SchedulerConfig | None = None,
) -> ExperimentPoint:
    """Run the simulator and both model variants for one experiment point."""
    cluster = cluster or paper_cluster(num_nodes)
    if cluster.num_nodes != num_nodes:
        cluster = cluster.with_nodes(num_nodes)
    scheduler = scheduler or paper_scheduler()

    measured = simulate_measured_response(
        workload, cluster, scheduler, repetitions=repetitions, base_seed=base_seed
    )

    job_config = workload.job_configs()[0]
    model_input = model_input_from_profile(
        workload.profile,
        cluster,
        job_config,
        num_jobs=workload.num_jobs,
        slow_start=scheduler.slowstart_enabled,
    )
    model = Hadoop2PerformanceModel(model_input)
    predictions = model.predict_all()

    return ExperimentPoint(
        num_nodes=num_nodes,
        num_jobs=workload.num_jobs,
        input_size_bytes=workload.input_size_bytes,
        block_size_bytes=workload.block_size_bytes,
        measured_seconds=measured,
        forkjoin_seconds=predictions[EstimatorKind.FORK_JOIN].job_response_time,
        tripathi_seconds=predictions[EstimatorKind.TRIPATHI].job_response_time,
    )


def run_series(
    workloads: list[WorkloadSpec],
    node_counts: list[int],
    x_label: str,
    x_values: list[float],
    repetitions: int = DEFAULT_REPETITIONS,
    base_seed: int = DEFAULT_BASE_SEED,
) -> ExperimentSeries:
    """Run a sweep; ``workloads`` and ``node_counts`` are aligned with ``x_values``."""
    if not (len(workloads) == len(node_counts) == len(x_values)):
        raise ExperimentError("workloads, node_counts and x_values must align")
    series = ExperimentSeries(x_label=x_label, x_values=list(x_values))
    for workload, num_nodes in zip(workloads, node_counts):
        series.points.append(
            run_experiment_point(
                workload,
                num_nodes,
                repetitions=repetitions,
                base_seed=base_seed,
            )
        )
    return series
