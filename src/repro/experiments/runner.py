"""Run experiment points through the unified prediction-backend API.

An *experiment point* fixes the number of nodes, the input size, the block
size, and the number of concurrent jobs.  Each point is a
:class:`~repro.api.Scenario` evaluated by the shared
:class:`~repro.api.PredictionService` with three backends:

1. ``simulator`` — the YARN simulator run ``repetitions`` times with seeds
   ``base_seed + i`` (the paper repeats every experiment 5 times); the median
   of the per-run mean job response times is the **measured** value;
2. ``mva-forkjoin`` and ``mva-tripathi`` — the analytic model variants built
   from the same workload;

and we record the relative errors of both estimates.  Series evaluation fans
the sweep points out over the service's thread pool, and the keyed result
cache makes repeated figure runs (and overlapping sweeps) free.
"""

from __future__ import annotations

import logging
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..analysis.errors import relative_error
from ..api import (
    WORKLOAD_PROFILES,
    PredictionService,
    ResultStore,
    Scenario,
    ScenarioSuite,
    SweepOutcome,
    SweepScheduler,
)
from ..config import ClusterConfig, SchedulerConfig
from ..core.estimators import EstimatorKind
from ..exceptions import ExperimentError
from ..workloads.generators import WorkloadSpec

logger = logging.getLogger(__name__)

#: Number of simulator repetitions per point (the paper uses 5).
DEFAULT_REPETITIONS = 3
#: Base seed from which the per-repetition seeds are derived.
DEFAULT_BASE_SEED = 1234

#: Backends an experiment point evaluates (measurement + both estimators).
POINT_BACKENDS = ("simulator", "mva-forkjoin", "mva-tripathi")


def _resolve_service(
    service: PredictionService | None,
    store: ResultStore | str | None = None,
    execution: str | None = None,
) -> PredictionService:
    """A caller-provided service, or a fresh one per run.

    Each run defaults to its own service so repeated runs (in particular the
    pytest-benchmark figure rounds) re-measure real work instead of hitting a
    process-global cache; within one run the cache still deduplicates
    overlapping sweep points.  Pass an explicit ``service`` to share the
    cache across calls, or ``store`` / ``execution`` to give the per-run
    service a persistent result store (figure runs survive restarts) and an
    execution mode (``"process"`` uses every core for the simulator points).
    """
    if service is not None:
        return service
    return PredictionService(
        backends=list(POINT_BACKENDS),
        store=store,
        execution=execution or "thread",
    )


@dataclass(frozen=True)
class ExperimentPoint:
    """Result of one experiment point."""

    num_nodes: int
    num_jobs: int
    input_size_bytes: int
    block_size_bytes: int
    measured_seconds: float
    forkjoin_seconds: float
    tripathi_seconds: float

    @property
    def forkjoin_error(self) -> float:
        """Signed relative error of the fork/join estimate."""
        return relative_error(self.forkjoin_seconds, self.measured_seconds)

    @property
    def tripathi_error(self) -> float:
        """Signed relative error of the Tripathi estimate."""
        return relative_error(self.tripathi_seconds, self.measured_seconds)


@dataclass
class ExperimentSeries:
    """A sweep over one x-axis (nodes or jobs) at fixed other parameters."""

    x_label: str
    x_values: list[float] = field(default_factory=list)
    points: list[ExperimentPoint] = field(default_factory=list)

    def series(self) -> dict[str, list[float]]:
        """Figure-style series: measured, fork/join, Tripathi."""
        return {
            "HadoopSetup": [point.measured_seconds for point in self.points],
            "Fork/join": [point.forkjoin_seconds for point in self.points],
            "Tripathi": [point.tripathi_seconds for point in self.points],
        }

    def errors(self, estimator: EstimatorKind) -> list[float]:
        """Signed relative errors of one estimator over the series."""
        if estimator is EstimatorKind.FORK_JOIN:
            return [point.forkjoin_error for point in self.points]
        return [point.tripathi_error for point in self.points]


def scenario_for_workload(
    workload: WorkloadSpec,
    num_nodes: int,
    repetitions: int = DEFAULT_REPETITIONS,
    base_seed: int = DEFAULT_BASE_SEED,
    cluster: ClusterConfig | None = None,
    scheduler: SchedulerConfig | None = None,
) -> Scenario:
    """Translate a legacy :class:`WorkloadSpec` into an API :class:`Scenario`.

    A scenario identifies its workload by registry name + ``duration_cv``, so
    the workload's profile must be reconstructible from the registry; a
    customised profile would otherwise be silently replaced by the canonical
    one, and is rejected instead.
    """
    name = workload.profile.name
    factory = WORKLOAD_PROFILES.get(name)
    if factory is None or factory(workload.profile.duration_cv) != workload.profile:
        raise ExperimentError(
            f"workload profile {name!r} is not reconstructible from the registry; "
            "register it with repro.api.register_workload_profile before running "
            "experiments with it"
        )
    if cluster is not None and cluster.num_nodes != num_nodes:
        cluster = cluster.with_nodes(num_nodes)
    return Scenario(
        workload=workload.profile.name,
        input_size_bytes=workload.input_size_bytes,
        block_size_bytes=workload.block_size_bytes,
        num_nodes=num_nodes,
        num_jobs=workload.num_jobs,
        num_reduces=workload.num_reduces,
        duration_cv=workload.profile.duration_cv,
        submission_gap_seconds=workload.submission_gap_seconds,
        seed=base_seed,
        repetitions=repetitions,
        cluster=cluster,
        scheduler=scheduler,
    )


def _point_from_results(scenario: Scenario, results) -> ExperimentPoint:
    return ExperimentPoint(
        num_nodes=scenario.num_nodes,
        num_jobs=scenario.num_jobs,
        input_size_bytes=scenario.input_size_bytes,
        block_size_bytes=scenario.block_size_bytes,
        measured_seconds=results["simulator"].total_seconds,
        forkjoin_seconds=results["mva-forkjoin"].total_seconds,
        tripathi_seconds=results["mva-tripathi"].total_seconds,
    )


def simulate_measured_response(
    workload: WorkloadSpec,
    cluster: ClusterConfig,
    scheduler: SchedulerConfig,
    repetitions: int = DEFAULT_REPETITIONS,
    base_seed: int = DEFAULT_BASE_SEED,
    service: PredictionService | None = None,
    store: ResultStore | str | None = None,
) -> float:
    """Median over repetitions of the mean job response time (the "measurement")."""
    if repetitions <= 0:
        raise ExperimentError("repetitions must be positive")
    scenario = scenario_for_workload(
        workload,
        cluster.num_nodes,
        repetitions=repetitions,
        base_seed=base_seed,
        cluster=cluster,
        scheduler=scheduler,
    )
    return (
        _resolve_service(service, store=store)
        .evaluate(scenario, "simulator")
        .total_seconds
    )


def run_experiment_point(
    workload: WorkloadSpec,
    num_nodes: int,
    repetitions: int = DEFAULT_REPETITIONS,
    base_seed: int = DEFAULT_BASE_SEED,
    cluster: ClusterConfig | None = None,
    scheduler: SchedulerConfig | None = None,
    service: PredictionService | None = None,
    store: ResultStore | str | None = None,
) -> ExperimentPoint:
    """Run the simulator and both model variants for one experiment point."""
    if repetitions <= 0:
        raise ExperimentError("repetitions must be positive")
    scenario = scenario_for_workload(
        workload,
        num_nodes,
        repetitions=repetitions,
        base_seed=base_seed,
        cluster=cluster,
        scheduler=scheduler,
    )
    results = _resolve_service(service, store=store).evaluate_many(
        scenario, POINT_BACKENDS
    )
    return _point_from_results(scenario, results)


def run_suite_grid(
    suite: ScenarioSuite,
    backends: Sequence[str],
    service: PredictionService | None = None,
    store: ResultStore | str | None = None,
    execution: str | None = None,
    on_error: str | None = None,
) -> SweepOutcome:
    """Schedule one ``suite × backends`` grid through the sweep scheduler.

    This is the single grid-execution path shared by the figure series and
    the accuracy dashboard: with a store-backed service, completed points
    replay from disk and only the missing remainder is evaluated (the plan
    is logged at debug level).  ``on_error`` forwards the sweep's
    partial-results contract (``"raise"`` / ``"skip"`` / ``"record"``;
    ``None`` keeps the service's configured mode).
    """
    if service is None:
        service = PredictionService(
            backends=list(backends), store=store, execution=execution or "thread"
        )
    outcome = SweepScheduler(service).run(suite, backends, on_error=on_error)
    logger.debug("%s", outcome.plan.describe())
    return outcome


def run_suite_series(
    suite: ScenarioSuite,
    x_label: str,
    x_values: list[float],
    service: PredictionService | None = None,
    store: ResultStore | str | None = None,
    execution: str | None = None,
) -> ExperimentSeries:
    """Evaluate a scenario suite (aligned with ``x_values``) into a series."""
    if len(suite.scenarios) != len(x_values):
        raise ExperimentError("suite and x_values must align")
    outcome = run_suite_grid(
        suite,
        POINT_BACKENDS,
        service=_resolve_service(service, store=store, execution=execution),
    )
    series = ExperimentSeries(x_label=x_label, x_values=list(x_values))
    for scenario, row in zip(suite.scenarios, outcome.result.rows):
        series.points.append(_point_from_results(scenario, row))
    return series


def run_series(
    workloads: list[WorkloadSpec],
    node_counts: list[int],
    x_label: str,
    x_values: list[float],
    repetitions: int = DEFAULT_REPETITIONS,
    base_seed: int = DEFAULT_BASE_SEED,
    service: PredictionService | None = None,
    store: ResultStore | str | None = None,
    execution: str | None = None,
) -> ExperimentSeries:
    """Run a sweep; ``workloads`` and ``node_counts`` are aligned with ``x_values``."""
    if not (len(workloads) == len(node_counts) == len(x_values)):
        raise ExperimentError("workloads, node_counts and x_values must align")
    suite = ScenarioSuite(
        name="series",
        scenarios=tuple(
            scenario_for_workload(
                workload, num_nodes, repetitions=repetitions, base_seed=base_seed
            )
            for workload, num_nodes in zip(workloads, node_counts)
        ),
    )
    return run_suite_series(
        suite, x_label, x_values, service=service, store=store, execution=execution
    )
