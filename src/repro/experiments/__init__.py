"""Evaluation harness: the experiments of the paper's Section 5.

:mod:`repro.experiments.runner` runs one experiment point (simulate the
workload, evaluate both model variants, compute errors);
:mod:`repro.experiments.figures` defines the parameter grids of every figure
of the paper and knows how to regenerate the corresponding series.
"""

from .runner import ExperimentPoint, ExperimentSeries, run_experiment_point, run_series
from .figures import (
    FIGURE_DEFINITIONS,
    FigureDefinition,
    figure_definition,
    run_figure,
)

__all__ = [
    "ExperimentPoint",
    "ExperimentSeries",
    "run_experiment_point",
    "run_series",
    "FIGURE_DEFINITIONS",
    "FigureDefinition",
    "figure_definition",
    "run_figure",
]
