"""Evaluation harness: the experiments of the paper's Section 5.

:mod:`repro.experiments.runner` evaluates experiment points through the
unified prediction API (simulate the workload, evaluate both model variants,
compute errors); :mod:`repro.experiments.figures` defines the parameter grids
of every figure of the paper as :class:`~repro.api.ScenarioSuite` objects and
knows how to regenerate the corresponding series.
"""

from .runner import (
    ExperimentPoint,
    ExperimentSeries,
    run_experiment_point,
    run_series,
    run_suite_series,
    scenario_for_workload,
)
from .figures import (
    FIGURE_DEFINITIONS,
    FigureDefinition,
    figure_definition,
    figure_suite,
    run_figure,
)

__all__ = [
    "ExperimentPoint",
    "ExperimentSeries",
    "run_experiment_point",
    "run_series",
    "run_suite_series",
    "scenario_for_workload",
    "FIGURE_DEFINITIONS",
    "FigureDefinition",
    "figure_definition",
    "figure_suite",
    "run_figure",
]
