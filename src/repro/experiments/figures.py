"""Definitions of the paper's evaluation figures (Section 5.2).

Each :class:`FigureDefinition` records the workload grid of one figure:

* Figure 10 — 1 GB input, 1 job, 4/6/8 nodes;
* Figure 11 — 1 GB input, 4 jobs, 4/6/8 nodes;
* Figure 12 — 5 GB input, 1 job, 4/6/8 nodes;
* Figure 13 — 5 GB input, 4 jobs, 4/6/8 nodes;
* Figure 14 — 5 GB input, 4 nodes, 1..4 jobs;
* Figure 15 — 5 GB input, 1 job, 64 MB blocks, 4/6/8 nodes.

``run_figure`` regenerates the three series of a figure (measured /
fork-join / Tripathi) using the experiment runner.  The bench scripts under
``benchmarks/`` print these series and check the qualitative shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import PredictionService, ResultStore, Scenario, ScenarioSuite
from ..exceptions import ExperimentError
from ..units import MiB, gigabytes, megabytes
from .runner import DEFAULT_BASE_SEED, ExperimentSeries, run_suite_series

#: Default number of reduce tasks per WordCount job in the evaluation grid.
DEFAULT_REDUCES = 4


@dataclass(frozen=True)
class FigureDefinition:
    """Parameter grid of one evaluation figure."""

    figure_id: str
    description: str
    input_size_bytes: int
    block_size_bytes: int
    num_jobs_values: tuple[int, ...]
    node_counts: tuple[int, ...]
    x_label: str

    def x_values(self) -> list[float]:
        """The x-axis values (node counts or job counts)."""
        if self.x_label == "number of nodes":
            return [float(value) for value in self.node_counts]
        return [float(value) for value in self.num_jobs_values]

    def grid(self) -> list[tuple[int, int]]:
        """(num_nodes, num_jobs) pairs, aligned with :meth:`x_values`."""
        if self.x_label == "number of nodes":
            jobs = self.num_jobs_values[0]
            return [(nodes, jobs) for nodes in self.node_counts]
        nodes = self.node_counts[0]
        return [(nodes, jobs) for jobs in self.num_jobs_values]


FIGURE_DEFINITIONS: dict[str, FigureDefinition] = {
    "figure10": FigureDefinition(
        figure_id="figure10",
        description="Input: 1GB; #jobs: 1",
        input_size_bytes=gigabytes(1),
        block_size_bytes=megabytes(128),
        num_jobs_values=(1,),
        node_counts=(4, 6, 8),
        x_label="number of nodes",
    ),
    "figure11": FigureDefinition(
        figure_id="figure11",
        description="Input: 1GB; #jobs: 4",
        input_size_bytes=gigabytes(1),
        block_size_bytes=megabytes(128),
        num_jobs_values=(4,),
        node_counts=(4, 6, 8),
        x_label="number of nodes",
    ),
    "figure12": FigureDefinition(
        figure_id="figure12",
        description="Input: 5GB; #jobs: 1",
        input_size_bytes=gigabytes(5),
        block_size_bytes=megabytes(128),
        num_jobs_values=(1,),
        node_counts=(4, 6, 8),
        x_label="number of nodes",
    ),
    "figure13": FigureDefinition(
        figure_id="figure13",
        description="Input: 5GB; #jobs: 4",
        input_size_bytes=gigabytes(5),
        block_size_bytes=megabytes(128),
        num_jobs_values=(4,),
        node_counts=(4, 6, 8),
        x_label="number of nodes",
    ),
    "figure14": FigureDefinition(
        figure_id="figure14",
        description="#Nodes: 4; Input: 5GB",
        input_size_bytes=gigabytes(5),
        block_size_bytes=megabytes(128),
        num_jobs_values=(1, 2, 3, 4),
        node_counts=(4,),
        x_label="number of jobs",
    ),
    "figure15": FigureDefinition(
        figure_id="figure15",
        description="Block: 64MB; Input: 5GB; #jobs: 1",
        input_size_bytes=gigabytes(5),
        block_size_bytes=64 * MiB,
        num_jobs_values=(1,),
        node_counts=(4, 6, 8),
        x_label="number of nodes",
    ),
}


def figure_definition(figure_id: str) -> FigureDefinition:
    """Look up a figure definition by id (e.g. ``"figure12"``)."""
    try:
        return FIGURE_DEFINITIONS[figure_id]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown figure {figure_id!r}; known: {sorted(FIGURE_DEFINITIONS)}"
        ) from exc


def figure_suite(
    figure_id: str,
    repetitions: int = 3,
    base_seed: int = DEFAULT_BASE_SEED,
    duration_cv: float = 0.3,
    num_reduces: int = DEFAULT_REDUCES,
) -> ScenarioSuite:
    """The :class:`~repro.api.ScenarioSuite` behind one evaluation figure."""
    definition = figure_definition(figure_id)
    scenarios = tuple(
        Scenario(
            workload="wordcount",
            input_size_bytes=definition.input_size_bytes,
            block_size_bytes=definition.block_size_bytes,
            num_nodes=num_nodes,
            num_jobs=num_jobs,
            num_reduces=num_reduces,
            duration_cv=duration_cv,
            seed=base_seed,
            repetitions=repetitions,
        )
        for num_nodes, num_jobs in definition.grid()
    )
    return ScenarioSuite(
        name=figure_id, scenarios=scenarios, description=definition.description
    )


def run_figure(
    figure_id: str,
    repetitions: int = 3,
    base_seed: int = DEFAULT_BASE_SEED,
    duration_cv: float = 0.3,
    num_reduces: int = DEFAULT_REDUCES,
    store: ResultStore | str | None = None,
    execution: str | None = None,
    service: PredictionService | None = None,
) -> ExperimentSeries:
    """Regenerate the series of one figure of the paper.

    ``store`` points the underlying service at a persistent result store, so
    an interrupted figure run resumes from the completed points; ``execution``
    picks the fan-out strategy (``"process"`` uses every core for the
    simulator points).  An explicit ``service`` takes precedence over both.
    """
    definition = figure_definition(figure_id)
    suite = figure_suite(
        figure_id,
        repetitions=repetitions,
        base_seed=base_seed,
        duration_cv=duration_cv,
        num_reduces=num_reduces,
    )
    return run_suite_series(
        suite,
        definition.x_label,
        definition.x_values(),
        service=service,
        store=store,
        execution=execution,
    )
