"""Block-size study: the effect of more map tasks on model accuracy.

Section 5.2 of the paper reduces the HDFS block size from 128 MB to 64 MB
(doubling the number of map tasks without changing the input size) and
observes that the estimation error grows with the number of map tasks,
because the precedence tree becomes deeper.  This example reproduces that
study for a 5 GB WordCount on 4 nodes and prints, for both block sizes,

* the measured (simulated) response time,
* both model estimates and their relative errors,
* the depth of the final precedence tree.

Run with::

    python examples/block_size_study.py
"""

from __future__ import annotations

from repro.analysis import format_table, relative_error
from repro.core import EstimatorKind, Hadoop2PerformanceModel
from repro.hadoop import ClusterSimulator
from repro.units import gigabytes, megabytes
from repro.workloads import (
    model_input_from_profile,
    paper_cluster,
    paper_scheduler,
    wordcount_profile,
)


def main() -> None:
    cluster = paper_cluster(num_nodes=4)
    profile = wordcount_profile()
    rows = []
    for block_mb in (128, 64):
        job_config = profile.job_config(
            input_size_bytes=gigabytes(5),
            block_size_bytes=megabytes(block_mb),
            num_reduces=4,
        )
        simulator = ClusterSimulator(cluster, paper_scheduler(), seed=11)
        simulator.submit_job(job_config, profile.simulator_profile())
        measured = simulator.run().mean_response_time

        model_input = model_input_from_profile(profile, cluster, job_config, num_jobs=1)
        model = Hadoop2PerformanceModel(model_input)
        predictions = model.predict_all()
        forkjoin = predictions[EstimatorKind.FORK_JOIN]
        tripathi = predictions[EstimatorKind.TRIPATHI]
        rows.append(
            [
                f"{block_mb} MB",
                job_config.num_maps,
                f"{measured:.1f}",
                f"{forkjoin.job_response_time:.1f}",
                f"{100 * relative_error(forkjoin.job_response_time, measured):+.1f}%",
                f"{tripathi.job_response_time:.1f}",
                f"{100 * relative_error(tripathi.job_response_time, measured):+.1f}%",
                forkjoin.tree_depth,
            ]
        )
    print("5 GB WordCount on 4 nodes, one job (cf. paper Figures 12 and 15):")
    print(
        format_table(
            [
                "block",
                "maps",
                "measured (s)",
                "fork/join (s)",
                "fj error",
                "tripathi (s)",
                "tr error",
                "tree depth",
            ],
            rows,
        )
    )
    print("\nExpected shape: the precedence tree is deeper with 64 MB blocks (more "
          "map tasks), and the Tripathi estimate stays above the fork/join estimate.  "
          "The paper observes the estimation error growing with the number of map "
          "tasks; run `pytest benchmarks/test_bench_figure15.py --benchmark-only -s` "
          "for the full 4/6/8-node comparison.")


if __name__ == "__main__":
    main()
