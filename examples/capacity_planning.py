"""Capacity planning: how many nodes does a workload need?

The paper motivates analytic models with "critical decision making in
workload management and resource capacity planning".  This example uses the
model to answer a planning question without running anything on a cluster:

    "Four analysts each run a 5 GB WordCount concurrently every hour.
     How many nodes keep the average job response time under a target?"

The model is evaluated for 4..12 nodes and the smallest cluster meeting the
target is reported; the chosen size is then cross-checked against the
simulator.

Run with::

    python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.core import EstimatorKind, Hadoop2PerformanceModel
from repro.hadoop import ClusterSimulator
from repro.units import format_seconds, gigabytes, megabytes
from repro.workloads import (
    generate_concurrent_jobs,
    model_input_from_profile,
    paper_cluster,
    paper_scheduler,
    wordcount_profile,
)

#: Average job response time the planner wants to stay under (seconds).
TARGET_SECONDS = 400.0
#: Number of concurrent jobs in the planning scenario.
NUM_JOBS = 4


def main() -> None:
    profile = wordcount_profile()
    job_config = profile.job_config(
        input_size_bytes=gigabytes(5),
        block_size_bytes=megabytes(128),
        num_reduces=4,
    )
    print(f"target: average response time of {NUM_JOBS} concurrent 5 GB WordCount jobs "
          f"below {format_seconds(TARGET_SECONDS)}")

    chosen_nodes = None
    print(f"{'nodes':>5}  {'fork/join estimate':>20}")
    for num_nodes in range(4, 13, 2):
        cluster = paper_cluster(num_nodes)
        model_input = model_input_from_profile(
            profile, cluster, job_config, num_jobs=NUM_JOBS
        )
        prediction = Hadoop2PerformanceModel(model_input).predict(EstimatorKind.FORK_JOIN)
        marker = ""
        if chosen_nodes is None and prediction.job_response_time <= TARGET_SECONDS:
            chosen_nodes = num_nodes
            marker = "  <-- smallest cluster meeting the target"
        print(f"{num_nodes:>5}  {prediction.job_response_time:>18.1f} s{marker}")

    if chosen_nodes is None:
        print("no cluster size up to 12 nodes meets the target")
        return

    # Cross-check the chosen size against the simulator.
    cluster = paper_cluster(chosen_nodes)
    simulator = ClusterSimulator(cluster, paper_scheduler(), seed=7)
    for config in generate_concurrent_jobs(
        profile,
        input_size_bytes=gigabytes(5),
        block_size_bytes=megabytes(128),
        num_reduces=4,
        num_jobs=NUM_JOBS,
    ):
        simulator.submit_job(config, profile.simulator_profile())
    result = simulator.run()
    print(f"simulator check on {chosen_nodes} nodes: mean response "
          f"{result.mean_response_time:.1f} s (target {TARGET_SECONDS:.0f} s)")


if __name__ == "__main__":
    main()
