"""Capacity planning: how many nodes does a workload need?

The paper motivates analytic models with "critical decision making in
workload management and resource capacity planning".  This example asks the
planner the question directly:

    "Four analysts each run a 5 GB WordCount concurrently every hour.
     What is the smallest cluster keeping job response time under a target?"

``CapacityPlanner`` searches the declared node grid with the analytic model
(coarse pass, then bisection refinement around the incumbent), records every
probe in an auditable ``PlanReport``, and the simulator backend cross-checks
the reported optimum via ``confirm_backend``.

Run with::

    python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.api import CapacityPlanner, Constraint, Objective, PlanSpec, Scenario
from repro.units import format_seconds, gigabytes

#: Average job response time the planner wants to stay under (seconds).
TARGET_SECONDS = 400.0
#: Number of concurrent jobs in the planning scenario.
NUM_JOBS = 4


def main() -> None:
    spec = PlanSpec(
        scenario=Scenario(
            workload="wordcount", input_size_bytes=gigabytes(5), num_jobs=NUM_JOBS
        ),
        objective=Objective("min-nodes"),
        constraint=Constraint(deadline_seconds=TARGET_SECONDS),
        confirm_backend="simulator",
    )
    print(
        f"target: average response time of {NUM_JOBS} concurrent 5 GB WordCount "
        f"jobs below {format_seconds(TARGET_SECONDS)}"
    )
    report = CapacityPlanner().plan(spec)
    print(report.render_table())
    best = report.best
    if best is None:
        print("no cluster size in the search space meets the target")
        return
    check = next(probe for probe in report.probes if probe.phase == "confirm")
    print(
        f"simulator check on {best.point.num_nodes} nodes: mean response "
        f"{check.total_seconds:.1f} s (target {TARGET_SECONDS:.0f} s)"
    )


if __name__ == "__main__":
    main()
