"""Quickstart: predict and measure the response time of one WordCount job.

This example walks through the complete workflow of the library:

1. describe the cluster (the paper's 4-node testbed) and the workload
   (WordCount over 1 GB of input, 128 MB blocks, 4 reducers);
2. estimate the average job response time with the analytic model, using
   both the fork/join and the Tripathi estimators;
3. "measure" the same workload on the YARN cluster simulator;
4. compare the estimates against the measurement.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import relative_error
from repro.core import Hadoop2PerformanceModel
from repro.hadoop import ClusterSimulator
from repro.units import gigabytes, megabytes
from repro.workloads import (
    model_input_from_profile,
    paper_cluster,
    paper_scheduler,
    wordcount_profile,
)


def main() -> None:
    # 1. Cluster and workload description.
    cluster = paper_cluster(num_nodes=4)
    scheduler = paper_scheduler()
    profile = wordcount_profile()
    job_config = profile.job_config(
        input_size_bytes=gigabytes(1),
        block_size_bytes=megabytes(128),
        num_reduces=4,
    )
    print(f"workload: {job_config.name}, {job_config.num_maps} maps, "
          f"{job_config.num_reduces} reduces on {cluster.num_nodes} nodes")

    # 2. Analytic model (the paper's contribution).
    model_input = model_input_from_profile(profile, cluster, job_config, num_jobs=1)
    model = Hadoop2PerformanceModel(model_input)
    predictions = model.predict_all()
    for kind, prediction in predictions.items():
        print(f"  model [{kind.value:9s}]: {prediction.job_response_time:7.1f} s "
              f"({prediction.iterations} iterations, tree depth {prediction.tree_depth})")

    # 3. "Measurement" on the YARN cluster simulator.
    simulator = ClusterSimulator(cluster, scheduler, seed=42)
    simulator.submit_job(job_config, profile.simulator_profile())
    result = simulator.run()
    measured = result.mean_response_time
    print(f"  simulator (measured) : {measured:7.1f} s")

    # 4. Relative errors (the paper reports 11-13.5% for fork/join).
    for kind, prediction in predictions.items():
        error = relative_error(prediction.job_response_time, measured)
        print(f"  {kind.value:9s} relative error: {100 * error:+6.1f} %")


if __name__ == "__main__":
    main()
