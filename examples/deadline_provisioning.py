"""Deadline-driven provisioning through the capacity planner.

ARIA (related work, paper Section 2.1) answers "how many resources does
this job need to finish before its deadline?" from makespan bounds over a
job profile.  The planner generalises that question to any registered
backend: here it searches the cluster-size grid with the ARIA baseline as
the probing backend, then the Hadoop 2.x analytic model and the simulator
re-evaluate the chosen allocation — the same profile → bound → cross-check
workflow, in ~20 lines over the planner API.

Run with::

    python examples/deadline_provisioning.py
"""

from __future__ import annotations

from repro.api import (
    CapacityPlanner,
    Constraint,
    Objective,
    PlanSpec,
    PredictionService,
    Scenario,
)
from repro.units import gigabytes

DEADLINE_SECONDS = 600.0


def main() -> None:
    spec = PlanSpec(
        scenario=Scenario(workload="wordcount", input_size_bytes=gigabytes(5)),
        objective=Objective("min-nodes"),
        constraint=Constraint(deadline_seconds=DEADLINE_SECONDS),
        backend="aria",
        confirm_backend="simulator",
    )
    service = PredictionService()
    report = CapacityPlanner(service).plan(spec)
    print(report.render_table())
    best = report.best
    if best is None:
        print(f"no candidate meets the {DEADLINE_SECONDS:.0f}s deadline")
        return
    # Cross-check the winner with the paper's analytic model alongside the
    # simulator confirmation already recorded in the report.
    scenario = best.point.scenario(spec.scenario)
    prediction = service.evaluate(scenario, "mva-forkjoin")
    check = next(probe for probe in report.probes if probe.phase == "confirm")
    print(f"chosen cluster: {best.point.num_nodes} nodes")
    print(f"  ARIA bound:                   {best.total_seconds:.1f}s")
    print(f"  Hadoop 2.x model (fork/join): {prediction.total_seconds:.1f}s")
    print(f"  simulator measurement:        {check.total_seconds:.1f}s")
    met = "met" if check.total_seconds <= DEADLINE_SECONDS else "MISSED"
    print(f"  deadline of {DEADLINE_SECONDS:.0f}s {met}")


if __name__ == "__main__":
    main()
