"""Deadline-driven provisioning with the ARIA baseline vs. the new model.

ARIA (related work, paper Section 2.1) answers "how many slots does this job
need to finish before its deadline?" using makespan bounds over a job
profile.  This example

1. profiles a 5 GB WordCount by simulating it once on a large cluster,
2. uses the ARIA bounds to pick the number of map slots for a 600 s deadline,
3. cross-checks the chosen allocation with the Hadoop 2.x analytic model and
   the simulator.

Run with::

    python examples/deadline_provisioning.py
"""

from __future__ import annotations

from repro.core import EstimatorKind, Hadoop2PerformanceModel
from repro.hadoop import ClusterSimulator
from repro.static_models import AriaJobProfile, AriaModel
from repro.units import gigabytes, megabytes
from repro.workloads import (
    model_input_from_profile,
    paper_cluster,
    paper_scheduler,
    wordcount_profile,
)

DEADLINE_SECONDS = 600.0


def main() -> None:
    profile = wordcount_profile()
    job_config = profile.job_config(
        input_size_bytes=gigabytes(5),
        block_size_bytes=megabytes(128),
        num_reduces=4,
    )

    # 1. Profile the job on a generously sized cluster (no waves, no waiting).
    profiling_cluster = paper_cluster(num_nodes=8)
    simulator = ClusterSimulator(profiling_cluster, paper_scheduler(), seed=3)
    simulator.submit_job(job_config, profile.simulator_profile())
    trace = simulator.run().job_traces[0]
    maps = trace.map_traces()
    reduces = trace.reduce_traces()
    aria_profile = AriaJobProfile(
        num_maps=trace.num_maps,
        num_reduces=trace.num_reduces,
        avg_map_seconds=trace.average_map_duration(),
        max_map_seconds=max(task.duration for task in maps),
        avg_shuffle_seconds=trace.average_shuffle_sort_duration(),
        max_shuffle_seconds=max(task.shuffle_sort_duration for task in reduces),
        avg_reduce_seconds=trace.average_merge_duration(),
        max_reduce_seconds=max(task.merge_duration for task in reduces),
    )
    print(f"job profile: avg map {aria_profile.avg_map_seconds:.1f}s, "
          f"avg shuffle {aria_profile.avg_shuffle_seconds:.1f}s, "
          f"avg reduce {aria_profile.avg_reduce_seconds:.1f}s")

    # 2. ARIA: smallest slot allocation meeting the deadline.
    aria = AriaModel(aria_profile)
    map_slots, reduce_slots = aria.slots_for_deadline(
        DEADLINE_SECONDS, max_slots=64, reduce_slots=job_config.num_reduces
    )
    estimate = aria.estimate_seconds(map_slots, reduce_slots)
    print(f"ARIA: {map_slots} map slots + {reduce_slots} reduce slots "
          f"-> T_avg estimate {estimate:.1f}s (deadline {DEADLINE_SECONDS:.0f}s)")

    # 3. Cross-check: translate the slot count into a cluster size and compare
    #    the Hadoop 2.x model and the simulator on it.
    containers_per_node = paper_cluster(1).maps_per_node()
    num_nodes = max(1, -(-map_slots // containers_per_node))  # ceil division
    cluster = paper_cluster(num_nodes)
    model_input = model_input_from_profile(profile, cluster, job_config, num_jobs=1)
    prediction = Hadoop2PerformanceModel(model_input).predict(EstimatorKind.FORK_JOIN)
    check = ClusterSimulator(cluster, paper_scheduler(), seed=5)
    check.submit_job(job_config, profile.simulator_profile())
    measured = check.run().mean_response_time
    print(f"chosen cluster: {num_nodes} nodes ({containers_per_node} containers/node)")
    print(f"  Hadoop 2.x model (fork/join): {prediction.job_response_time:.1f}s")
    print(f"  simulator measurement:        {measured:.1f}s")
    met = "met" if measured <= DEADLINE_SECONDS else "MISSED"
    print(f"  deadline of {DEADLINE_SECONDS:.0f}s {met}")


if __name__ == "__main__":
    main()
