"""Scheduler comparison: Capacity (FIFO) vs. Fair sharing for concurrent jobs.

The paper assumes the default Capacity scheduler with one root queue (FIFO
across applications).  This example uses the YARN simulator to show what that
assumption means for a multi-job workload: under FIFO the first job finishes
early and the last one late, while Fair sharing equalises response times at
the cost of a higher average.

Run with::

    python examples/scheduler_comparison.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.hadoop import ClusterSimulator
from repro.units import gigabytes, megabytes
from repro.workloads import generate_concurrent_jobs, paper_cluster, paper_scheduler, wordcount_profile

NUM_JOBS = 3


def main() -> None:
    profile = wordcount_profile()
    # Two nodes (16 containers) and three 5 GB jobs: the jobs genuinely compete
    # for containers, so the scheduling policy matters.
    cluster = paper_cluster(num_nodes=2)
    job_configs = generate_concurrent_jobs(
        profile,
        input_size_bytes=gigabytes(5),
        block_size_bytes=megabytes(128),
        num_reduces=4,
        num_jobs=NUM_JOBS,
    )

    for scheduler_name in ("capacity", "fair"):
        scheduler = replace(paper_scheduler(), scheduler_name=scheduler_name)
        simulator = ClusterSimulator(cluster, scheduler, seed=21)
        for config in job_configs:
            simulator.submit_job(config, profile.simulator_profile())
        result = simulator.run()
        per_job = ", ".join(f"{seconds:.0f}s" for seconds in result.response_times)
        print(f"{scheduler_name:9s}: per-job response times [{per_job}] "
              f"mean {result.mean_response_time:.1f}s, makespan {result.makespan:.1f}s")


if __name__ == "__main__":
    main()
