"""Integration tests for the YARN cluster simulator."""

from __future__ import annotations

import pytest

from repro.config import JobConfig, SchedulerConfig
from repro.exceptions import SimulationError
from repro.hadoop import ClusterSimulator
from repro.hadoop.job import JobResourceProfile
from repro.hadoop.trace import JobTrace
from repro.units import gigabytes, megabytes
from repro.workloads import paper_cluster, paper_scheduler, wordcount_profile


def run_single_job(num_nodes=4, input_gb=1, num_reduces=2, seed=7, duration_cv=0.0, **scheduler_kwargs):
    cluster = paper_cluster(num_nodes)
    scheduler = SchedulerConfig(**scheduler_kwargs) if scheduler_kwargs else paper_scheduler()
    profile = wordcount_profile(duration_cv=duration_cv)
    simulator = ClusterSimulator(cluster, scheduler, seed=seed)
    job_config = profile.job_config(
        input_size_bytes=gigabytes(input_gb),
        block_size_bytes=megabytes(128),
        num_reduces=num_reduces,
    )
    simulator.submit_job(job_config, profile.simulator_profile())
    return simulator.run()


class TestSingleJob:
    def test_job_completes_with_all_tasks(self):
        result = run_single_job()
        trace = result.job_traces[0]
        assert trace.num_maps == 8
        assert trace.num_reduces == 2
        assert len(trace.tasks) == 10
        assert trace.response_time > 0
        assert result.metrics.tasks_completed == {"map": 8, "reduce": 2}

    def test_container_grants_match_task_counts(self):
        result = run_single_job()
        assert result.metrics.containers_granted == {"am": 1, "map": 8, "reduce": 2}

    def test_maps_are_mostly_data_local(self):
        result = run_single_job()
        assert result.metrics.data_local_fraction >= 0.75

    def test_deterministic_given_seed(self):
        first = run_single_job(seed=11)
        second = run_single_job(seed=11)
        assert first.response_times == second.response_times

    def test_different_seeds_with_noise_differ(self):
        first = run_single_job(seed=1, duration_cv=0.3)
        second = run_single_job(seed=2, duration_cv=0.3)
        assert first.response_times != second.response_times

    def test_trace_durations_consistent(self):
        trace = run_single_job().job_traces[0]
        for task in trace.tasks:
            assert task.finished_at >= task.started_at >= task.assigned_at >= task.scheduled_at
            assert task.duration == pytest.approx(task.finished_at - task.started_at)
        for reduce_trace in trace.reduce_traces():
            assert reduce_trace.shuffle_sort_duration >= 0
            assert reduce_trace.merge_duration > 0

    def test_shuffle_cannot_end_before_last_map(self):
        trace = run_single_job().job_traces[0]
        last_map_end = max(task.finished_at for task in trace.map_traces())
        for reduce_trace in trace.reduce_traces():
            merge_start = reduce_trace.finished_at - reduce_trace.merge_duration
            assert merge_start >= last_map_end - 1e-6


class TestScaling:
    def test_more_nodes_do_not_slow_down(self):
        small = run_single_job(num_nodes=4, input_gb=5)
        large = run_single_job(num_nodes=8, input_gb=5)
        assert large.mean_response_time <= small.mean_response_time * 1.05

    def test_larger_input_takes_longer(self):
        small = run_single_job(input_gb=1)
        large = run_single_job(input_gb=5)
        assert large.mean_response_time > small.mean_response_time

    def test_concurrent_jobs_increase_response_time(self):
        cluster = paper_cluster(4)
        profile = wordcount_profile(duration_cv=0.0)
        job_config = profile.job_config(gigabytes(1), megabytes(128), 2)

        single = ClusterSimulator(cluster, paper_scheduler(), seed=3)
        single.submit_job(job_config, profile.simulator_profile())
        single_result = single.run()

        multi = ClusterSimulator(cluster, paper_scheduler(), seed=3)
        for _ in range(3):
            multi.submit_job(job_config, profile.simulator_profile())
        multi_result = multi.run()

        assert multi_result.mean_response_time > single_result.mean_response_time
        assert multi_result.makespan > single_result.makespan


class TestSlowStart:
    def test_slowstart_disabled_starts_reduces_after_all_maps(self):
        with_slowstart = run_single_job(seed=5)
        without = run_single_job(
            seed=5,
            scheduler_name="capacity",
            slowstart_enabled=False,
        )
        trace_with = with_slowstart.job_traces[0]
        trace_without = without.job_traces[0]
        last_map_end_without = max(t.finished_at for t in trace_without.map_traces())
        first_reduce_start_without = min(t.started_at for t in trace_without.reduce_traces())
        assert first_reduce_start_without >= last_map_end_without - 1e-6
        # With slow start the first reduce may begin before the last map ends.
        last_map_end_with = max(t.finished_at for t in trace_with.map_traces())
        first_reduce_start_with = min(t.started_at for t in trace_with.reduce_traces())
        assert first_reduce_start_with <= last_map_end_with + 1e-6


class TestTraceSerialisation:
    def test_round_trip(self, tmp_path):
        trace = run_single_job().job_traces[0]
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = JobTrace.load(path)
        assert loaded == trace

    def test_aggregates(self):
        trace = run_single_job().job_traces[0]
        assert trace.average_map_duration() > 0
        assert trace.average_merge_duration() > 0
        assert trace.average_shuffle_sort_duration() >= 0


class TestErrors:
    def test_run_without_jobs_rejected(self):
        simulator = ClusterSimulator(paper_cluster(2), paper_scheduler(), seed=1)
        with pytest.raises(SimulationError):
            simulator.run()

    def test_double_run_rejected(self):
        simulator = ClusterSimulator(paper_cluster(2), paper_scheduler(), seed=1)
        simulator.submit_job(JobConfig(input_size_bytes=megabytes(256)), JobResourceProfile())
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.run()

    def test_submit_after_run_rejected(self):
        simulator = ClusterSimulator(paper_cluster(2), paper_scheduler(), seed=1)
        simulator.submit_job(JobConfig(input_size_bytes=megabytes(256)), JobResourceProfile())
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.submit_job(JobConfig(input_size_bytes=megabytes(256)), JobResourceProfile())


class TestSchedulers:
    def test_fair_scheduler_balances_response_times(self):
        cluster = paper_cluster(2)
        profile = wordcount_profile(duration_cv=0.0)
        job_config = profile.job_config(gigabytes(1), megabytes(128), 1)

        def run(scheduler_name):
            scheduler = SchedulerConfig(scheduler_name=scheduler_name)
            simulator = ClusterSimulator(cluster, scheduler, seed=13)
            for _ in range(2):
                simulator.submit_job(job_config, profile.simulator_profile())
            return simulator.run()

        fifo = run("capacity")
        fair = run("fair")
        fifo_spread = max(fifo.response_times) - min(fifo.response_times)
        fair_spread = max(fair.response_times) - min(fair.response_times)
        assert fair_spread <= fifo_spread + 1e-6
