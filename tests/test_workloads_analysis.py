"""Tests for the workload layer, the analysis helpers, and the CLI."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ascii_series_plot,
    format_series_table,
    format_table,
    relative_error,
    summarize_errors,
)
from repro.cli import main as cli_main
from repro.core import ModelInput, TaskClass
from repro.exceptions import ConfigurationError, ValidationError
from repro.hadoop import ClusterSimulator
from repro.units import gigabytes, megabytes
from repro.workloads import (
    WorkloadSpec,
    generate_concurrent_jobs,
    grep_profile,
    model_input_from_profile,
    model_input_from_trace,
    paper_cluster,
    paper_scheduler,
    terasort_profile,
    wordcount_profile,
)


class TestApplicationProfiles:
    def test_wordcount_selectivities(self):
        profile = wordcount_profile()
        assert profile.map_output_ratio == pytest.approx(0.4)
        assert profile.simulator_profile().map_cpu_seconds_per_mib > 0

    def test_terasort_is_shuffle_heavy(self):
        assert terasort_profile().map_output_ratio == pytest.approx(1.0)

    def test_grep_is_map_heavy(self):
        assert grep_profile().map_output_ratio < 0.1

    def test_job_config_generation(self):
        profile = wordcount_profile()
        config = profile.job_config(gigabytes(1), megabytes(128), 4)
        assert config.num_maps == 8
        assert config.map_output_ratio == profile.map_output_ratio

    def test_with_variability(self):
        assert wordcount_profile().with_variability(0.0).duration_cv == 0.0


class TestPaperConfiguration:
    def test_paper_cluster_containers_per_node(self):
        cluster = paper_cluster(4)
        assert cluster.maps_per_node() == 8
        assert cluster.num_nodes == 4

    def test_paper_scheduler_slowstart(self):
        scheduler = paper_scheduler()
        assert scheduler.slowstart_enabled
        assert scheduler.slowstart_completed_maps == pytest.approx(0.05)

    def test_workload_spec_jobs(self):
        spec = WorkloadSpec.wordcount(gigabytes(1), num_jobs=3)
        configs = spec.job_configs()
        assert len(configs) == 3
        assert all(config.submission_time == 0.0 for config in configs)

    def test_generate_concurrent_jobs_with_gap(self):
        configs = generate_concurrent_jobs(
            wordcount_profile(), gigabytes(1), megabytes(128), 2, num_jobs=3,
            submission_gap_seconds=10.0,
        )
        assert [config.submission_time for config in configs] == [0.0, 10.0, 20.0]

    def test_invalid_job_count_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_concurrent_jobs(wordcount_profile(), gigabytes(1), megabytes(128), 2, num_jobs=0)


class TestModelInputBuilders:
    def test_from_profile_has_all_classes(self):
        cluster = paper_cluster(4)
        profile = wordcount_profile()
        config = profile.job_config(gigabytes(1), megabytes(128), 4)
        model_input = model_input_from_profile(profile, cluster, config, num_jobs=2)
        assert isinstance(model_input, ModelInput)
        assert model_input.num_jobs == 2
        assert model_input.num_maps == 8
        for task_class in TaskClass:
            assert model_input.demands[task_class].total_seconds >= 0
        assert model_input.demands[TaskClass.SHUFFLE_SORT].network_seconds > 0

    def test_single_node_has_no_remote_shuffle(self):
        cluster = paper_cluster(1)
        profile = wordcount_profile()
        config = profile.job_config(gigabytes(1), megabytes(128), 4)
        model_input = model_input_from_profile(profile, cluster, config)
        assert model_input.demands[TaskClass.SHUFFLE_SORT].network_seconds == pytest.approx(0.0)

    def test_from_trace_round_trip(self):
        cluster = paper_cluster(4)
        profile = wordcount_profile()
        config = profile.job_config(gigabytes(1), megabytes(128), 4)
        simulator = ClusterSimulator(cluster, paper_scheduler(), seed=9)
        simulator.submit_job(config, profile.simulator_profile())
        trace = simulator.run().job_traces[0]
        model_input = model_input_from_trace(trace, cluster, num_jobs=1)
        assert model_input.num_maps == trace.num_maps
        assert model_input.initial_response_times[TaskClass.MAP] == pytest.approx(
            trace.average_map_duration()
        )
        assert model_input.demands[TaskClass.MAP].cpu_seconds > 0


class TestAnalysis:
    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.10)
        assert relative_error(90.0, 100.0) == pytest.approx(-0.10)
        with pytest.raises(ValidationError):
            relative_error(1.0, 0.0)

    def test_summarize_errors(self):
        summary = summarize_errors([0.1, -0.2, 0.3])
        assert summary.count == 3
        assert summary.mean_absolute == pytest.approx(0.2)
        assert summary.max_absolute == pytest.approx(0.3)
        assert summary.overestimates

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValidationError):
            summarize_errors([])

    def test_format_table_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2], [30, 40]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "bbb" in lines[0]

    def test_format_table_row_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            format_table(["a"], [[1, 2]])

    def test_format_series_table(self):
        text = format_series_table("nodes", [4, 6], {"measured": [1.0, 2.0], "model": [1.5, 2.5]})
        assert "measured" in text and "model" in text
        assert "4" in text and "6" in text

    def test_ascii_plot_contains_markers(self):
        plot = ascii_series_plot([1, 2, 3], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]})
        assert "o=a" in plot and "+=b" in plot

    def test_ascii_plot_validation(self):
        with pytest.raises(ValidationError):
            ascii_series_plot([1], {})


class TestCli:
    def test_list_command(self, capsys):
        assert cli_main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure10" in output and "figure15" in output

    def test_predict_command(self, capsys):
        assert cli_main(["predict", "--nodes", "4", "--input-size", "1GB", "--jobs", "1"]) == 0
        output = capsys.readouterr().out
        assert "mva-forkjoin" in output and "mva-tripathi" in output

    def test_simulate_command(self, capsys):
        assert cli_main(["simulate", "--nodes", "2", "--input-size", "512MB", "--reduces", "1"]) == 0
        output = capsys.readouterr().out
        assert "mean job response time" in output
