"""Equivalence tests: array-based placement vs. the scalar timeline path.

The batched backends rely on :mod:`repro.core.fast_timeline` producing the
*same placement* as :func:`repro.core.timeline.build_timeline` (Algorithm 1)
and overlap factors equal to :func:`repro.core.overlap.compute_overlap_factors`
up to floating-point summation order.  These tests sweep the parameter space
(cluster shapes, task counts, slow start, merge enforcement, degenerate
durations) and compare entry for entry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EstimatorKind, ModifiedMVASolver
from repro.core.fast_timeline import place_tasks
from repro.core.overlap import compute_overlap_factors
from repro.core.parameters import ModelInput, TaskClass, TaskClassDemands
from repro.core.timeline import build_timeline
from repro.exceptions import ModelError

#: (num_nodes, max_maps_per_node, max_reduces_per_node, num_maps, num_reduces).
SHAPES = [
    (1, 1, 1, 1, 1),
    (2, 2, 1, 7, 3),
    (3, 2, 2, 17, 5),
    (4, 8, 4, 40, 9),
    (5, 3, 2, 11, 4),
    (8, 2, 2, 64, 16),
]

#: (map, shuffle base, shuffle network, merge) duration quadruples.
DURATIONS = [
    (3.7, 2.1, 5.3, 1.9),
    (0.0, 0.0, 0.0, 0.0),
    (1e-3, 40.0, 0.1, 7.0),
    (12.5, 0.0, 9.0, 0.0),
]


def make_input(num_nodes, max_maps, max_reduces, num_maps, num_reduces, slow_start):
    demands = {cls: TaskClassDemands(cpu_seconds=1.0) for cls in TaskClass.ordered()}
    return ModelInput(
        num_nodes=num_nodes,
        max_maps_per_node=max_maps,
        max_reduces_per_node=max_reduces,
        num_maps=num_maps,
        num_reduces=num_reduces,
        demands=demands,
        slow_start=slow_start,
    )


def entry_tuples(timeline, task_class):
    return [
        (entry.instance.index, entry.node_id, entry.start, entry.end)
        for entry in timeline.entries_of_class(task_class)
    ]


class TestPlacementEquivalence:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("durations", DURATIONS)
    @pytest.mark.parametrize("slow_start", [True, False])
    @pytest.mark.parametrize("enforce", [True, False])
    def test_placement_matches_build_timeline_bit_for_bit(
        self, shape, durations, slow_start, enforce
    ):
        model_input = make_input(*shape, slow_start)
        reference = build_timeline(
            model_input, *durations, enforce_merge_after_last_map=enforce
        )
        placement = place_tasks(
            model_input, *durations, enforce_merge_after_last_map=enforce
        )
        materialised = placement.to_timeline()
        for task_class in TaskClass.ordered():
            assert entry_tuples(materialised, task_class) == entry_tuples(
                reference, task_class
            ), f"{task_class.value} entries differ"
        assert materialised.border == reference.border
        assert materialised.slow_start == reference.slow_start
        assert placement.makespan == reference.makespan
        assert placement.last_map_end == reference.last_map_end()

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("durations", DURATIONS[:2])
    def test_overlap_factors_match_scalar_path(self, shape, durations):
        model_input = make_input(*shape, True)
        reference = compute_overlap_factors(
            build_timeline(model_input, *durations)
        )
        fast = place_tasks(model_input, *durations).overlap_factors()
        assert fast.class_names == reference.class_names
        np.testing.assert_allclose(
            fast.intra_job, reference.intra_job, rtol=1e-12, atol=1e-12
        )
        np.testing.assert_allclose(
            fast.inter_job, reference.inter_job, rtol=1e-12, atol=1e-12
        )

    def test_negative_duration_rejected(self):
        model_input = make_input(2, 2, 2, 4, 2, True)
        with pytest.raises(ModelError, match="map_duration"):
            place_tasks(model_input, -1.0, 0.0, 0.0, 0.0)

    def test_wave_compression_counts(self):
        model_input = make_input(3, 2, 1, 14, 2, True)
        placement = place_tasks(model_input, 5.0, 1.0, 1.0, 1.0)
        # capacity 6 -> waves of 6, 6, 2 maps starting at 0, 5, 10.
        assert placement.map_wave_counts.tolist() == [6, 6, 2]
        assert placement.map_wave_starts.tolist() == [0.0, 5.0, 10.0]
        assert placement.map_starts().shape == (14,)


class TestFastSolverMode:
    @pytest.mark.parametrize("num_jobs", [1, 2])
    @pytest.mark.parametrize("kind", [EstimatorKind.FORK_JOIN, EstimatorKind.TRIPATHI])
    def test_fast_mode_matches_scalar_solve(self, num_jobs, kind):
        demands = {
            TaskClass.MAP: TaskClassDemands(cpu_seconds=8.0, disk_seconds=3.0),
            TaskClass.SHUFFLE_SORT: TaskClassDemands(
                cpu_seconds=0.0, disk_seconds=2.0, network_seconds=6.0
            ),
            TaskClass.MERGE: TaskClassDemands(cpu_seconds=5.0, disk_seconds=2.5),
        }
        model_input = ModelInput(
            num_nodes=4,
            max_maps_per_node=4,
            max_reduces_per_node=2,
            num_maps=24,
            num_reduces=8,
            num_jobs=num_jobs,
            demands=demands,
        )
        scalar = ModifiedMVASolver(estimator=kind).solve(model_input)
        fast = ModifiedMVASolver(estimator=kind, fast_timeline=True).solve(model_input)
        assert fast.converged == scalar.converged
        assert fast.job_response_time == pytest.approx(
            scalar.job_response_time, rel=1e-9
        )
        for task_class in TaskClass.ordered():
            assert fast.class_response_times[task_class] == pytest.approx(
                scalar.class_response_times[task_class], rel=1e-9
            )
        assert fast.final_residences is not None

    def test_warm_start_reaches_same_fixed_point(self):
        model_input = make_input(4, 4, 2, 24, 8, True)
        solver = ModifiedMVASolver()
        cold = solver.solve(model_input)
        warm = solver.solve(model_input, initial_residences=cold.final_residences)
        assert warm.job_response_time == pytest.approx(
            cold.job_response_time, abs=solver.epsilon
        )
        # Seeding with the converged state itself needs the minimum number of
        # iterations (one to confirm, one for the convergence test).
        assert warm.num_iterations <= max(2, cold.num_iterations)

    def test_warm_start_rejects_missing_class(self):
        model_input = make_input(2, 2, 2, 4, 2, True)
        with pytest.raises(ModelError, match="missing class"):
            ModifiedMVASolver().solve(
                model_input, initial_residences={TaskClass.MAP: {}}
            )
