"""Tests for the serving layer (:mod:`repro.serve`) and its service hooks.

Covers the PR's acceptance semantics end to end:

* in-flight coalescing — N concurrent identical evaluations share one
  backend call, counted by the first-class ``coalesced`` stat (and its
  ``delta()``), for direct service callers and through the daemon alike;
* ``ServiceStats`` / ``BreakerSnapshot`` JSON round-trips (the ``/stats``
  contract);
* admission control — queue-full answers 429 with ``Retry-After``, and
  observability endpoints bypass the gate so they keep answering while the
  daemon is saturated;
* streaming sweeps — NDJSON point-by-point delivery, and a mid-stream client
  disconnect that neither poisons the scheduler nor duplicates evaluations
  nor leaves the store inconsistent;
* lifecycle — drain rejects new work, completes in-flight requests, and a
  real SIGTERM to a ``repro serve`` subprocess exits 0 after flushing.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import (
    BreakerPolicy,
    PredictionService,
    Scenario,
    ScenarioSuite,
    ServiceStats,
)
from repro.api.backends import _REGISTRY
from repro.api.resilience import BREAKER_OPEN, BreakerSnapshot
from repro.api.results import PredictionResult
from repro.exceptions import TransientError, ValidationError
from repro.serve import ServeConfig, daemon_in_thread, resolve_policy
from repro.serve.daemon import retry_after_value
from repro.serve.http import HttpError
from repro.serve.loadgen import DaemonClient, percentile, run_predict_load
from repro.units import megabytes

REPO_ROOT = Path(__file__).resolve().parents[1]

SMALL = Scenario(
    workload="wordcount",
    input_size_bytes=megabytes(256),
    num_nodes=2,
    num_reduces=2,
    repetitions=1,
    seed=11,
)


def _result_for(name: str, scenario: Scenario) -> PredictionResult:
    return PredictionResult(
        backend=name,
        scenario=scenario,
        total_seconds=float(scenario.num_nodes),
        phases={"map": 1.0},
    )


@pytest.fixture
def temporary_backend():
    """Register throwaway backend classes; unregister them afterwards."""
    registered: list[str] = []

    def register(name: str, cls: type) -> type:
        cls.name = name
        _REGISTRY[name] = cls
        registered.append(name)
        return cls

    try:
        yield register
    finally:
        for name in registered:
            _REGISTRY.pop(name, None)


def _gated_backend_class(error: Exception | None = None):
    """A backend that blocks every call until ``release`` is set."""

    class GatedBackend:
        release = threading.Event()
        calls = 0
        lock = threading.Lock()

        def predict(self, scenario):
            with type(self).lock:
                type(self).calls += 1
            if not type(self).release.wait(timeout=30.0):
                raise TransientError("gate never released")
            if error is not None:
                raise error
            return _result_for(type(self).name, scenario)

    return GatedBackend


def _counting_backend_class(delay: float = 0.0):
    """A backend that counts calls per cache key (for dedup assertions)."""

    class CountingBackend:
        calls: dict[str, int] = {}
        lock = threading.Lock()

        def predict(self, scenario):
            key = scenario.cache_key()
            with type(self).lock:
                type(self).calls[key] = type(self).calls.get(key, 0) + 1
            if delay:
                time.sleep(delay)
            return _result_for(type(self).name, scenario)

    return CountingBackend


def _wait_until(predicate, timeout: float = 15.0, interval: float = 0.005) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestCoalescing:
    def test_concurrent_identical_evaluations_share_one_backend_call(
        self, temporary_backend
    ):
        gated = temporary_backend("gated-coalesce", _gated_backend_class())
        service = PredictionService(backends=["gated-coalesce"])
        results: list = []
        errors: list = []

        def call():
            try:
                results.append(service.evaluate(SMALL, "gated-coalesce"))
            except BaseException as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=call) for _ in range(5)]
        for thread in threads:
            thread.start()
        try:
            # All five are in the registry once coalesced hits 4: one owner
            # plus four joiners.
            assert _wait_until(lambda: service.stats().coalesced == 4)
        finally:
            gated.release.set()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        stats = service.stats()
        assert gated.calls == 1
        assert stats.evaluations == 1
        assert stats.coalesced == 4
        assert len({id(result) for result in results}) == 1

    def test_joiners_share_the_owners_terminal_failure(self, temporary_backend):
        boom = ValidationError("shared failure")
        gated = temporary_backend("gated-fail", _gated_backend_class(error=boom))
        service = PredictionService(backends=["gated-fail"])
        errors: list = []

        def call():
            try:
                service.evaluate(SMALL, "gated-fail")
            except ValidationError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=call) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            assert _wait_until(lambda: service.stats().coalesced == 2)
        finally:
            gated.release.set()
        for thread in threads:
            thread.join(timeout=30.0)
        # Everyone saw the owner's error; the backend was attempted once.
        assert len(errors) == 3
        assert all(error is boom for error in errors)
        assert gated.calls == 1
        assert service.stats().failures == 1

    def test_suite_duplicate_grid_cells_count_as_coalesced(self, temporary_backend):
        counting = temporary_backend("count-dupes", _counting_backend_class())
        service = PredictionService(backends=["count-dupes"])
        suite = ScenarioSuite(
            name="dupes", scenarios=(SMALL, SMALL, SMALL.with_updates(num_nodes=4))
        )
        result = service.evaluate_suite(suite, ["count-dupes"])
        assert len(result.rows) == 3
        stats = service.stats()
        assert stats.evaluations == 2
        assert stats.coalesced == 1
        assert max(counting.calls.values()) == 1

    def test_stats_delta_includes_coalesced(self):
        before = ServiceStats(coalesced=2, evaluations=5)
        after = ServiceStats(coalesced=7, evaluations=9)
        delta = after.delta(before)
        assert delta.coalesced == 5
        assert delta.evaluations == 4


class TestStatsSerialization:
    def test_service_stats_round_trips_through_json(self):
        stats = ServiceStats(
            memory_hits=1, store_hits=2, evaluations=3, coalesced=4, retries=5
        )
        encoded = json.dumps(stats.to_dict(), sort_keys=True)
        assert ServiceStats.from_dict(json.loads(encoded)) == stats

    def test_service_stats_rejects_unknown_and_non_mapping(self):
        with pytest.raises(ValidationError):
            ServiceStats.from_dict({"evaluations": 1, "bogus": 2})
        with pytest.raises(ValidationError):
            ServiceStats.from_dict([1, 2, 3])

    def test_breaker_snapshot_round_trips_through_json(self):
        snapshot = BreakerSnapshot(
            name="simulator",
            state=BREAKER_OPEN,
            trips=2,
            window_calls=4,
            window_failures=4,
            rejections=7,
        )
        encoded = json.dumps(snapshot.to_dict(), sort_keys=True)
        assert BreakerSnapshot.from_dict(json.loads(encoded)) == snapshot

    def test_breaker_snapshot_rejects_unknown_fields_and_states(self):
        snapshot = BreakerSnapshot(
            name="x", state=BREAKER_OPEN, trips=0,
            window_calls=0, window_failures=0, rejections=0,
        )
        data = snapshot.to_dict()
        with pytest.raises(ValidationError):
            BreakerSnapshot.from_dict({**data, "extra": 1})
        with pytest.raises(ValidationError):
            BreakerSnapshot.from_dict({**data, "state": "exploded"})


class TestResolvePolicy:
    CONFIG = ServeConfig(max_retries=3, max_timeout=10.0)

    def test_defaults(self):
        assert resolve_policy(None, self.CONFIG) == (None, None, "record")
        assert resolve_policy({}, self.CONFIG) == (None, None, "record")

    def test_values_pass_through_below_the_ceilings(self):
        retries, timeout, on_error = resolve_policy(
            {"retries": 2, "timeout": 5, "on_error": "raise"}, self.CONFIG
        )
        assert (retries, timeout, on_error) == (2, 5.0, "raise")

    def test_values_above_the_ceilings_are_clamped(self):
        retries, timeout, _ = resolve_policy(
            {"retries": 99, "timeout": 1e6}, self.CONFIG
        )
        assert retries == 3
        assert timeout == 10.0

    @pytest.mark.parametrize(
        "policy",
        [
            {"retries": -1},
            {"retries": True},
            {"retries": "two"},
            {"timeout": 0},
            {"timeout": "fast"},
            {"on_error": "explode"},
            {"unknown_knob": 1},
            "not-an-object",
        ],
    )
    def test_invalid_policies_are_rejected(self, policy):
        with pytest.raises(HttpError) as info:
            resolve_policy(policy, self.CONFIG)
        assert info.value.status == 400


class TestDaemonEndpoints:
    def test_healthz_stats_and_request_validation(self, temporary_backend):
        temporary_backend("serve-count", _counting_backend_class())
        service = PredictionService(backends=["serve-count"])
        with daemon_in_thread(service, ServeConfig(port=0)) as daemon:
            client = DaemonClient(daemon.host, daemon.port)
            status, body = client.get_json("/healthz")
            assert status == 200
            assert body["status"] == "ok"
            status, body = client.post_json(
                "/predict", {"scenario": SMALL.to_dict(), "backend": "serve-count"}
            )
            assert status == 200
            assert body["result"]["total_seconds"] == float(SMALL.num_nodes)
            status, body = client.get_json("/stats")
            assert status == 200
            assert ServiceStats.from_dict(body["service"]).evaluations == 1
            assert body["server"]["max_inflight"] == 4
            # Degradation counters surface as their own /stats section so
            # operators can spot graceful-degradation churn without diffing
            # the full service stats blob.
            assert body["degradation"] == {
                "pool_rebuilds": 0,
                "pool_fallbacks": 0,
                "batch_fallbacks": 0,
                "breaker_trips": 0,
                "declined": 0,
            }
            # Validation and routing errors.
            assert client.get_json("/nope")[0] == 404
            assert client.get_json("/predict")[0] == 405
            assert client.post_json("/predict", {"backend": "serve-count"})[0] == 400
            assert (
                client.post_json(
                    "/predict", {"scenario": SMALL.to_dict(), "backend": "bogus"}
                )[0]
                == 400
            )
            assert (
                client.post_json(
                    "/predict",
                    {
                        "scenario": SMALL.to_dict(),
                        "backend": "serve-count",
                        "policy": {"retries": "many"},
                    },
                )[0]
                == 400
            )

    def test_healthz_degrades_to_503_only_when_all_breakers_open(
        self, temporary_backend
    ):
        class FailingBackend:
            def predict(self, scenario):
                raise TransientError("always down")

        temporary_backend("serve-down", FailingBackend)
        service = PredictionService(
            backends=["serve-down"],
            breaker=BreakerPolicy(
                failure_threshold=0.5, window=2, min_calls=2, cooldown_seconds=3600.0
            ),
        )
        with daemon_in_thread(service, ServeConfig(port=0)) as daemon:
            client = DaemonClient(daemon.host, daemon.port)
            assert client.get_json("/healthz")[0] == 200
            for _ in range(2):
                status, body = client.post_json(
                    "/predict",
                    {"scenario": SMALL.to_dict(), "backend": "serve-down"},
                )
                assert status == 200
                assert body["result"]["failed"] is True
            status, body = client.get_json("/healthz")
            assert status == 503
            assert body["status"] == "unhealthy"
            assert body["open_breakers"] == ["serve-down"]

    def test_concurrent_identical_requests_evaluate_exactly_once(
        self, temporary_backend
    ):
        gated = temporary_backend("serve-gated", _gated_backend_class())
        service = PredictionService(backends=["serve-gated"])
        clients = 4
        with daemon_in_thread(
            service, ServeConfig(port=0, max_inflight=clients)
        ) as daemon:
            client = DaemonClient(daemon.host, daemon.port)
            statuses: list[int] = []
            totals: list[float] = []
            lock = threading.Lock()

            def call():
                status, body = client.post_json(
                    "/predict",
                    {"scenario": SMALL.to_dict(), "backend": "serve-gated"},
                )
                with lock:
                    statuses.append(status)
                    if status == 200:
                        totals.append(body["result"]["total_seconds"])

            threads = [threading.Thread(target=call) for _ in range(clients)]
            for thread in threads:
                thread.start()
            try:
                # /stats bypasses admission, so it observes the pile-up live.
                assert _wait_until(
                    lambda: service.stats().coalesced == clients - 1
                )
            finally:
                gated.release.set()
            for thread in threads:
                thread.join(timeout=30.0)
            assert statuses == [200] * clients
            assert len(set(totals)) == 1
        stats = service.stats()
        assert gated.calls == 1
        assert stats.evaluations == 1
        assert stats.coalesced == clients - 1

    def test_queue_full_answers_429_with_retry_after(self, temporary_backend):
        gated = temporary_backend("serve-full", _gated_backend_class())
        service = PredictionService(backends=["serve-full"])
        config = ServeConfig(port=0, max_inflight=1, queue_depth=1, retry_after=2.5)
        with daemon_in_thread(service, config) as daemon:
            client = DaemonClient(daemon.host, daemon.port)
            statuses: list[int] = []

            def call(nodes: int):
                scenario = SMALL.with_updates(num_nodes=nodes)
                status, _ = client.post_json(
                    "/predict",
                    {"scenario": scenario.to_dict(), "backend": "serve-full"},
                )
                statuses.append(status)

            first = threading.Thread(target=call, args=(2,))
            first.start()
            assert _wait_until(lambda: daemon.inflight == 1)
            second = threading.Thread(target=call, args=(3,))
            second.start()
            assert _wait_until(lambda: daemon.queued == 1)
            # Slot and queue are both taken: the third request bounces.
            connection = http.client.HTTPConnection(
                daemon.host, daemon.port, timeout=30.0
            )
            try:
                body = json.dumps(
                    {
                        "scenario": SMALL.with_updates(num_nodes=4).to_dict(),
                        "backend": "serve-full",
                    }
                )
                connection.request(
                    "POST", "/predict", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
                assert response.status == 429
                # RFC 9110 delay-seconds: a non-negative integer, fractional
                # configs rounded up so clients never retry early.
                retry_after = response.getheader("Retry-After")
                assert re.fullmatch(r"\d+", retry_after)
                assert retry_after == "3"
                assert "queue is full" in payload["error"]
            finally:
                connection.close()
            gated.release.set()
            first.join(timeout=30.0)
            second.join(timeout=30.0)
            assert statuses == [200, 200]

    def test_retry_after_is_rfc9110_integer_seconds(self):
        # RFC 9110 §10.2.3: Retry-After delay-seconds is a non-negative
        # decimal integer. Fractions round *up* (never invite an early
        # retry); negatives clamp to zero.
        assert retry_after_value(0.0) == "0"
        assert retry_after_value(0.5) == "1"
        assert retry_after_value(1.0) == "1"
        assert retry_after_value(2.5) == "3"
        assert retry_after_value(30.0) == "30"
        assert retry_after_value(-4.0) == "0"
        for seconds in (0.0, 0.1, 1.0, 2.5, 7.0):
            assert re.fullmatch(r"\d+", retry_after_value(seconds))

    def test_sweep_streams_points_and_replays_from_store(
        self, temporary_backend, tmp_path
    ):
        temporary_backend("serve-sweep", _counting_backend_class())
        service = PredictionService(
            backends=["serve-sweep"], store=tmp_path / "store"
        )
        suite = ScenarioSuite.from_sweep("serve-grid", SMALL, num_nodes=[2, 3, 4])
        with daemon_in_thread(service, ServeConfig(port=0)) as daemon:
            client = DaemonClient(daemon.host, daemon.port)
            payload = {"suite": suite.to_dict(), "backends": ["serve-sweep"]}
            lines = list(client.stream_ndjson("/sweep", payload))
            events = [line["event"] for line in lines]
            assert events[0] == "plan"
            assert events[-1] == "done"
            assert events.count("point") == 3
            assert lines[0]["plan"]["missing"] == 3
            done = lines[-1]["stats"]
            assert ServiceStats.from_dict(done).evaluations == 3
            points = [line for line in lines if line["event"] == "point"]
            assert {point["backend"] for point in points} == {"serve-sweep"}
            assert all(point["result"]["total_seconds"] > 0 for point in points)
            # Same sweep again: everything replays, nothing re-evaluates.
            lines = list(client.stream_ndjson("/sweep", payload))
            assert lines[0]["plan"]["missing"] == 0
            assert ServiceStats.from_dict(lines[-1]["stats"]).evaluations == 0

    def test_plan_endpoint_matches_direct_planner(self):
        from repro.plan import CapacityPlanner, Constraint, PlanSpec, SearchSpace

        spec = PlanSpec(
            scenario=Scenario(
                workload="wordcount",
                input_size_bytes=megabytes(512),
                num_jobs=2,
            ),
            constraint=Constraint(deadline_seconds=400.0),
            space=SearchSpace(num_nodes=(2, 4, 6, 8)),
        )
        direct = CapacityPlanner(PredictionService()).plan(spec)
        service = PredictionService()
        with daemon_in_thread(service, ServeConfig(port=0)) as daemon:
            client = DaemonClient(daemon.host, daemon.port)
            status, body = client.post_json("/plan", {"plan": spec.to_dict()})
            assert status == 200
            # The served report is the CLI/library report: same envelope,
            # bit-identical result section for the same spec.
            assert set(body) == {"result", "metadata", "failed"}
            assert body["result"] == direct.to_dict()["result"]
            # Validation and routing errors.
            assert client.post_json("/plan", {})[0] == 400
            assert client.post_json("/plan", {"plan": {"bogus": 1}})[0] == 400
            payload = spec.to_dict()
            payload["backend"] = "no-such-backend"
            assert client.post_json("/plan", {"plan": payload})[0] == 400
            assert client.get_json("/plan")[0] == 405

    def test_mid_sweep_disconnect_leaves_scheduler_and_store_consistent(
        self, temporary_backend, tmp_path
    ):
        counting = temporary_backend(
            "serve-abort", _counting_backend_class(delay=0.02)
        )
        service = PredictionService(
            backends=["serve-abort"], store=tmp_path / "store"
        )
        suite = ScenarioSuite.from_sweep(
            "abort-grid", SMALL, num_nodes=[2, 3, 4, 5, 6, 7, 8, 9]
        )
        with daemon_in_thread(service, ServeConfig(port=0)) as daemon:
            client = DaemonClient(daemon.host, daemon.port)
            payload = {"suite": suite.to_dict(), "backends": ["serve-abort"]}
            # Walk away after the plan line and one point.
            partial = list(client.stream_ndjson("/sweep", payload, max_lines=2))
            assert partial[0]["event"] == "plan"
            # The abandoned request eventually gives its slot back.
            assert _wait_until(lambda: daemon.inflight == 0 and daemon.queued == 0)
            # The daemon still serves; re-running the sweep completes it and
            # never re-evaluates a point the aborted run already finished.
            lines = list(client.stream_ndjson("/sweep", payload))
            assert lines[-1]["event"] == "done"
            assert [line["event"] for line in lines].count("point") == 8
        assert set(counting.calls.values()) == {1}
        assert len(counting.calls) == 8
        store_stats = service.store.refresh()
        assert store_stats.loaded == 8

    def test_drain_rejects_new_work_and_completes_inflight(self, temporary_backend):
        gated = temporary_backend("serve-drain", _gated_backend_class())
        service = PredictionService(backends=["serve-drain"])
        with daemon_in_thread(service, ServeConfig(port=0, max_inflight=2)) as daemon:
            client = DaemonClient(daemon.host, daemon.port)
            statuses: list[int] = []

            def call():
                status, _ = client.post_json(
                    "/predict",
                    {"scenario": SMALL.to_dict(), "backend": "serve-drain"},
                )
                statuses.append(status)

            inflight = threading.Thread(target=call)
            inflight.start()
            assert _wait_until(lambda: daemon.inflight == 1)
            daemon.shutdown_threadsafe()
            assert _wait_until(lambda: daemon.draining)
            # New work is rejected: either an explicit 503 (connection was
            # accepted before the listener closed) or a refused connection.
            try:
                connection = http.client.HTTPConnection(
                    daemon.host, daemon.port, timeout=30.0
                )
                try:
                    connection.request(
                        "POST",
                        "/predict",
                        body=json.dumps(
                            {"scenario": SMALL.to_dict(), "backend": "serve-drain"}
                        ),
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    response.read()
                    assert response.status == 503
                    # The drain 503 tells clients when to retry, in RFC 9110
                    # integer seconds like the 429 path.
                    assert re.fullmatch(
                        r"\d+", response.getheader("Retry-After")
                    )
                finally:
                    connection.close()
            except OSError:
                pass
            gated.release.set()
            inflight.join(timeout=30.0)
            # The admitted request survived the drain.
            assert statuses == [200]
        assert service.stats().evaluations == 1

    def test_sigterm_drains_flushes_store_and_exits_zero(self, tmp_path):
        store = tmp_path / "store"
        env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--backend", "mva-forkjoin",
                "--store", str(store),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            announce = process.stderr.readline()
            match = re.search(r"http://([\d.]+):(\d+)", announce)
            assert match, f"no serving announcement in {announce!r}"
            client = DaemonClient(match.group(1), int(match.group(2)))
            assert client.get_json("/healthz")[0] == 200
            status, body = client.post_json(
                "/predict",
                {"scenario": SMALL.to_dict(), "backend": "mva-forkjoin"},
            )
            assert status == 200
            process.send_signal(signal.SIGTERM)
            _, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert "drained:" in stderr
        # The store was flushed: the predict's record is on disk.
        assert any(store.rglob("*.json"))


class TestLoadgen:
    def test_percentile_interpolates_linearly(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0) == 10.0
        assert percentile(values, 100) == 40.0
        assert percentile(values, 50) == 25.0
        assert percentile([7.0], 99) == 7.0
        with pytest.raises(ValidationError):
            percentile([], 50)
        with pytest.raises(ValidationError):
            percentile(values, 101)

    def test_run_predict_load_reports_rates_and_latencies(self, temporary_backend):
        temporary_backend("serve-load", _counting_backend_class())
        service = PredictionService(backends=["serve-load"])
        with daemon_in_thread(service, ServeConfig(port=0)) as daemon:
            report = run_predict_load(
                daemon.host,
                daemon.port,
                scenarios=[SMALL.to_dict()],
                backend="serve-load",
                clients=2,
                requests_per_client=3,
            )
        assert report.requests == 6
        assert report.ok == 6
        assert report.rejected == 0
        assert report.failed == 0
        assert report.req_per_s > 0
        summary = report.to_dict()
        assert summary["p50_ms"] <= summary["p99_ms"]
        # One unique point: everything beyond the first call was answered by
        # the coalescing registry or the cache.
        stats = service.stats()
        assert stats.evaluations == 1
        assert stats.memory_hits + stats.coalesced == 5
