"""Tests for :mod:`repro.units`."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ValidationError
from repro.units import (
    GiB,
    KiB,
    MiB,
    format_seconds,
    format_size,
    gigabytes,
    megabytes,
    parse_size,
)


class TestConversions:
    def test_megabytes(self):
        assert megabytes(1) == MiB
        assert megabytes(128) == 128 * MiB

    def test_gigabytes(self):
        assert gigabytes(1) == GiB
        assert gigabytes(5) == 5 * GiB

    def test_fractional_megabytes_round(self):
        assert megabytes(0.5) == MiB // 2


class TestParseSize:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("128MB", 128 * MiB),
            ("128 MB", 128 * MiB),
            ("1gb", GiB),
            ("5 GiB", 5 * GiB),
            ("64mib", 64 * MiB),
            ("2048", 2048),
            (4096, 4096),
            ("10kb", 10 * KiB),
            ("1.5GB", GiB + GiB // 2),
            ("0.5 MiB", MiB // 2),
            ("2.25kb", int(round(2.25 * KiB))),
        ],
    )
    def test_valid_sizes(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["abc", "12XB", "", "MB"])
    def test_invalid_sizes(self, text):
        with pytest.raises(ValidationError):
            parse_size(text)

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            parse_size(-5)
        with pytest.raises(ValidationError):
            parse_size("-5MB")
        with pytest.raises(ValidationError):
            parse_size("-1.5GB")

    @pytest.mark.parametrize("value", [0, 0.0, "0", "0B", "0.0GB"])
    def test_zero_size_rejected(self, value):
        with pytest.raises(ValidationError):
            parse_size(value)

    @given(st.integers(min_value=1, max_value=10**15))
    def test_roundtrip_plain_integers(self, value):
        assert parse_size(str(value)) == value


class TestFormatting:
    def test_format_size_chooses_suffix(self):
        assert format_size(512) == "512 B"
        assert format_size(2 * KiB).endswith("KiB")
        assert format_size(3 * MiB).endswith("MiB")
        assert format_size(7 * GiB).endswith("GiB")

    def test_format_size_negative_rejected(self):
        with pytest.raises(ValidationError):
            format_size(-1)

    def test_format_seconds_ranges(self):
        assert format_seconds(0.5).endswith("ms")
        assert format_seconds(12.0).endswith("s")
        assert "min" in format_seconds(90.0)
        assert "h" in format_seconds(7200.0)

    def test_format_seconds_negative_rejected(self):
        with pytest.raises(ValidationError):
            format_seconds(-1.0)
