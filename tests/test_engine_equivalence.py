"""Equivalence tests for the incremental execution-engine core.

The incremental engine (cached stage indices, incrementally maintained
per-node demand counts, fused rate computation) must be *observationally
identical* to the straightforward rescan-everything engine it replaced:

* a golden-trace test replays fixed-seed scenarios and compares every task
  timestamp against values recorded from the seed implementation
  (``tests/data/golden_traces_seed.json``);
* a property test runs full simulations while cross-checking, on every
  event, that the incrementally maintained demand counts equal a
  from-scratch recount (which re-derives each attempt's current stage and
  shuffle stall state without any cached engine state).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.hadoop import ClusterSimulator
from repro.units import gigabytes, megabytes
from repro.workloads import paper_cluster, paper_scheduler, wordcount_profile

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_traces_seed.json"

#: The refactor must reproduce the seed's floating-point results exactly;
#: the tolerance only absorbs JSON round-tripping of the recorded values.
TOLERANCE = 1e-9


def load_golden() -> dict:
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


def run_scenario(spec: dict) -> "ClusterSimulator":
    profile = wordcount_profile(duration_cv=spec["duration_cv"])
    simulator = ClusterSimulator(
        paper_cluster(spec["num_nodes"]), paper_scheduler(), seed=spec["seed"]
    )
    job_config = profile.job_config(
        input_size_bytes=gigabytes(spec["input_gb"]),
        block_size_bytes=megabytes(128),
        num_reduces=spec["num_reduces"],
    )
    simulator.submit_job(job_config, profile.simulator_profile())
    return simulator


class TestGoldenTraces:
    @pytest.mark.parametrize("scenario", sorted(load_golden()))
    def test_traces_match_seed_implementation(self, scenario):
        spec = load_golden()[scenario]
        result = run_scenario(spec).run()

        assert result.makespan == pytest.approx(spec["makespan"], abs=TOLERANCE)
        assert result.response_times == pytest.approx(
            spec["response_times"], abs=TOLERANCE
        )

        recorded_tasks = spec["tasks"]
        simulated = {
            task.task_id: task
            for trace in result.job_traces
            for task in trace.tasks
        }
        assert simulated.keys() == recorded_tasks.keys()
        for task_id, recorded in recorded_tasks.items():
            task = simulated[task_id]
            for field in ("scheduled_at", "assigned_at", "started_at", "finished_at"):
                assert getattr(task, field) == pytest.approx(
                    recorded[field], abs=TOLERANCE
                ), f"{scenario}/{task_id}.{field}"
            assert task.shuffle_sort_duration == pytest.approx(
                recorded["shuffle_sort_duration"], abs=TOLERANCE
            ), f"{scenario}/{task_id}.shuffle_sort_duration"
            assert task.merge_duration == pytest.approx(
                recorded["merge_duration"], abs=TOLERANCE
            ), f"{scenario}/{task_id}.merge_duration"


class TestIncrementalDemandCounts:
    def check_demand_invariant(self, simulator: ClusterSimulator, min_events: int) -> None:
        """Run ``simulator`` asserting snapshot == recount on every event."""
        engine = simulator._engine
        original = engine.time_to_next_completion
        events = 0

        def checked() -> float:
            nonlocal events
            horizon = original()
            # After the call the engine's stall states are freshly refreshed,
            # so the incremental counts must equal a from-scratch recount.
            assert engine.demand_snapshot() == engine.recount_demand()
            events += 1
            return horizon

        engine.time_to_next_completion = checked  # type: ignore[method-assign]
        simulator.run()
        assert events >= min_events

    def test_single_job_demand_counts_always_match_recount(self):
        spec = {"num_nodes": 4, "input_gb": 1, "num_reduces": 2, "seed": 13, "duration_cv": 0.3}
        self.check_demand_invariant(run_scenario(spec), min_events=30)

    def test_concurrent_jobs_demand_counts_always_match_recount(self):
        # Two overlapping jobs exercise shuffle stalls (reducers racing the
        # map wave) and cross-job node contention.
        profile = wordcount_profile(duration_cv=0.3)
        simulator = ClusterSimulator(paper_cluster(4), paper_scheduler(), seed=17)
        job_config = profile.job_config(gigabytes(2), megabytes(128), 4)
        for _ in range(2):
            simulator.submit_job(job_config, profile.simulator_profile())
        self.check_demand_invariant(simulator, min_events=100)
