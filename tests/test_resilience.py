"""Tests for the resilience layer (:mod:`repro.api.resilience`).

Pins the retry policy's classification and deterministic backoff schedule,
the circuit breaker's closed/open/half-open lifecycle (driven by a fake
clock — no sleeping), and the service-level integration: flaky backends
recover under retries, fatal errors fail fast, deadlines surface as
timeouts, open breakers short-circuit, and the ``on_error`` contract turns
terminal failures into skipped or recorded cells instead of crashes.
"""

from __future__ import annotations

import math

import pytest

from repro.api import (
    NO_RETRY,
    BreakerPolicy,
    CircuitBreaker,
    FailedResult,
    PredictionService,
    RetryPolicy,
    Scenario,
    ScenarioSuite,
    ServiceStats,
)
from repro.api.backends import _REGISTRY
from repro.api.resilience import BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN
from repro.api.results import PredictionResult
from repro.exceptions import (
    CircuitOpenError,
    EvaluationTimeoutError,
    TransientError,
    ValidationError,
)
from repro.units import megabytes

SMALL = Scenario(
    workload="wordcount",
    input_size_bytes=megabytes(256),
    num_nodes=2,
    num_reduces=2,
    repetitions=1,
    seed=11,
)

SUITE = ScenarioSuite.from_sweep("resilience-grid", SMALL, num_nodes=[2, 3, 4, 5])

#: Zero-delay retry policy for tests that only care about attempt counts.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _result_for(name: str, scenario: Scenario) -> PredictionResult:
    return PredictionResult(
        backend=name,
        scenario=scenario,
        total_seconds=float(scenario.num_nodes),
        phases={"map": 1.0},
    )


@pytest.fixture
def temporary_backend():
    """Register throwaway backend classes; unregister them afterwards."""
    registered: list[str] = []

    def register(name: str, cls: type) -> type:
        cls.name = name
        _REGISTRY[name] = cls
        registered.append(name)
        return cls

    try:
        yield register
    finally:
        for name in registered:
            _REGISTRY.pop(name, None)


def _flaky_backend_class(failures_per_point: int, exc_type: type = TransientError):
    """A backend that fails the first N calls per point, then succeeds."""

    class FlakyBackend:
        calls: dict[str, int] = {}

        def predict(self, scenario):
            key = scenario.cache_key()
            seen = type(self).calls.get(key, 0)
            type(self).calls[key] = seen + 1
            if seen < failures_per_point:
                raise exc_type(f"induced failure #{seen + 1} for {key!r}")
            return _result_for(type(self).name, scenario)

    return FlakyBackend


class TestRetryPolicy:
    def test_resolve_none_and_zero_mean_no_retries(self):
        assert RetryPolicy.resolve(None) is NO_RETRY
        assert RetryPolicy.resolve(0) is NO_RETRY
        assert NO_RETRY.max_attempts == 1

    def test_resolve_int_is_extra_attempts(self):
        assert RetryPolicy.resolve(2).max_attempts == 3

    def test_resolve_passes_policies_through(self):
        policy = RetryPolicy(max_attempts=5)
        assert RetryPolicy.resolve(policy) is policy

    def test_resolve_rejects_bools_and_negatives(self):
        with pytest.raises(ValidationError):
            RetryPolicy.resolve(True)
        with pytest.raises(ValidationError):
            RetryPolicy.resolve(-1)

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientError("x"))
        assert policy.is_retryable(EvaluationTimeoutError("x"))
        assert policy.is_retryable(TimeoutError())
        assert policy.is_retryable(ConnectionError())
        assert not policy.is_retryable(ValidationError("x"))
        assert not policy.is_retryable(ValueError("x"))

    def test_fatal_wins_over_retryable(self):
        # CircuitOpenError must stay fatal even under a policy that would
        # otherwise retry every ReproError.
        from repro.exceptions import ReproError

        policy = RetryPolicy(retryable=(ReproError,))
        assert not policy.is_retryable(CircuitOpenError("open"))

    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, backoff_factor=2.0, max_delay=0.3, seed=7
        )
        first = [policy.delay(n, key="point-a") for n in (1, 2, 3, 4)]
        second = [policy.delay(n, key="point-a") for n in (1, 2, 3, 4)]
        assert first == second
        for attempt, delay in enumerate(first, start=1):
            base = min(0.3, 0.1 * 2.0 ** (attempt - 1))
            assert 0 < delay <= base

    def test_delay_jitter_desynchronises_points(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        assert policy.delay(1, key="a") != policy.delay(1, key="b")

    def test_zero_jitter_gives_exact_exponential_schedule(self):
        policy = RetryPolicy(base_delay=0.1, backoff_factor=2.0, max_delay=10.0, jitter=0.0)
        assert [policy.delay(n) for n in (1, 2, 3)] == [0.1, 0.2, 0.4]

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValidationError):
            RetryPolicy().delay(0)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    POLICY = BreakerPolicy(
        failure_threshold=0.5, window=4, min_calls=2, cooldown_seconds=10.0
    )

    def _breaker(self):
        clock = FakeClock()
        return CircuitBreaker(self.POLICY, name="stub", clock=clock), clock

    def test_stays_closed_below_min_calls(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.allow()  # does not raise

    def test_trips_at_failure_threshold(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        snapshot = breaker.snapshot()
        assert snapshot.trips == 1
        assert snapshot.rejections == 1

    def test_successes_dilute_the_failure_rate(self):
        breaker, _ = self._breaker()
        for _ in range(3):
            breaker.record_success()
        breaker.record_failure()  # 1 of 4 — under the 50% threshold
        assert breaker.state == BREAKER_CLOSED

    def test_cooldown_half_opens_and_probe_success_closes(self):
        breaker, clock = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.allow()  # first probe admitted
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # probe slots saturated
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        breaker.allow()

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        breaker, clock = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.snapshot().trips == 2
        clock.advance(5.0)  # half the new cooldown: still open
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_invalid_policies_are_rejected(self):
        with pytest.raises(ValidationError):
            BreakerPolicy(failure_threshold=0.0)
        with pytest.raises(ValidationError):
            BreakerPolicy(window=0)
        with pytest.raises(ValidationError):
            BreakerPolicy(cooldown_seconds=-1.0)


class TestServiceRetries:
    def test_flaky_backend_recovers_under_retries(self, temporary_backend):
        flaky = temporary_backend("flaky-stub", _flaky_backend_class(2))
        service = PredictionService(backends=[flaky.name], retry=FAST_RETRY)
        result = service.evaluate(SMALL, flaky.name)
        assert result.total_seconds == 2.0
        stats = service.stats()
        assert stats.retries == 2
        assert stats.evaluations == 1
        assert stats.failures == 0

    def test_retries_are_off_by_default(self, temporary_backend):
        flaky = temporary_backend("flaky-once-stub", _flaky_backend_class(1))
        service = PredictionService(backends=[flaky.name])
        with pytest.raises(TransientError):
            service.evaluate(SMALL, flaky.name)
        assert service.stats().retries == 0
        assert service.stats().failures == 1

    def test_fatal_errors_are_never_retried(self, temporary_backend):
        broken = temporary_backend(
            "fatal-stub", _flaky_backend_class(99, exc_type=ValidationError)
        )
        service = PredictionService(backends=[broken.name], retry=FAST_RETRY)
        with pytest.raises(ValidationError):
            service.evaluate(SMALL, broken.name)
        assert broken.calls[SMALL.cache_key()] == 1  # single attempt
        assert service.stats().retries == 0

    def test_exhausted_retries_raise_the_last_error(self, temporary_backend):
        hopeless = temporary_backend("hopeless-stub", _flaky_backend_class(99))
        service = PredictionService(backends=[hopeless.name], retry=FAST_RETRY)
        with pytest.raises(TransientError):
            service.evaluate(SMALL, hopeless.name)
        assert hopeless.calls[SMALL.cache_key()] == 3  # max_attempts
        stats = service.stats()
        assert stats.retries == 2
        assert stats.failures == 1

    def test_successful_result_is_cached_and_stored(self, temporary_backend, tmp_path):
        flaky = temporary_backend("flaky-store-stub", _flaky_backend_class(1))
        service = PredictionService(
            backends=[flaky.name], retry=FAST_RETRY, store=tmp_path / "store"
        )
        first = service.evaluate(SMALL, flaky.name)
        assert service.evaluate(SMALL, flaky.name) == first
        assert flaky.calls[SMALL.cache_key()] == 2  # 1 failure + 1 success, no more
        reopened = PredictionService(
            backends=[flaky.name], retry=FAST_RETRY, store=tmp_path / "store"
        )
        assert reopened.evaluate(SMALL, flaky.name) == first
        assert reopened.stats().store_hits == 1


class TestTimeouts:
    def test_slow_evaluation_times_out_cooperatively(self, temporary_backend):
        class SlowBackend:
            def predict(self, scenario):
                import time

                time.sleep(0.05)
                return _result_for(type(self).name, scenario)

        slow = temporary_backend("slow-stub", SlowBackend)
        service = PredictionService(backends=[slow.name], timeout=0.01)
        with pytest.raises(EvaluationTimeoutError):
            service.evaluate(SMALL, slow.name)
        stats = service.stats()
        assert stats.timeouts == 1
        assert stats.failures == 1

    def test_timeout_validation(self):
        with pytest.raises(ValidationError):
            PredictionService(timeout=0.0)


class TestOnErrorContract:
    def test_invalid_mode_is_rejected(self):
        with pytest.raises(ValidationError):
            PredictionService(on_error="ignore")
        with pytest.raises(ValidationError):
            PredictionService().evaluate_suite(SUITE, ["aria"], on_error="ignore")

    def test_skip_omits_failed_cells(self, temporary_backend):
        hopeless = temporary_backend("skip-stub", _flaky_backend_class(99))
        service = PredictionService(
            backends=[hopeless.name, "aria"], execution="serial"
        )
        result = service.evaluate_suite(
            SUITE, [hopeless.name, "aria"], on_error="skip"
        )
        assert not result.complete
        assert all(hopeless.name not in row for row in result.rows)
        assert all(math.isnan(x) for x in result.series(hopeless.name))
        assert all(x > 0 for x in result.series("aria"))

    def test_record_fills_failed_cells_with_structured_results(
        self, temporary_backend
    ):
        hopeless = temporary_backend("record-stub", _flaky_backend_class(99))
        service = PredictionService(
            backends=[hopeless.name], execution="serial", retry=FAST_RETRY
        )
        result = service.evaluate_suite(SUITE, on_error="record")
        failures = result.failures()
        assert len(failures) == len(SUITE.scenarios)
        for _, backend, failed in failures:
            assert backend == hopeless.name
            assert isinstance(failed, FailedResult)
            assert not failed.ok
            assert failed.error_type == "TransientError"
            assert failed.attempts == 3
            assert math.isnan(failed.total_seconds)
            assert failed.to_dict()["failed"] is True
            assert "FAILED after 3 attempt(s)" in failed.summary()

    def test_constructor_mode_is_the_suite_default(self, temporary_backend):
        hopeless = temporary_backend("default-mode-stub", _flaky_backend_class(99))
        service = PredictionService(
            backends=[hopeless.name], execution="serial", on_error="skip"
        )
        result = service.evaluate_suite(SUITE)
        assert result.rows == ({}, {}, {}, {})

    def test_raise_mode_still_propagates(self, temporary_backend):
        hopeless = temporary_backend("raise-stub", _flaky_backend_class(99))
        service = PredictionService(backends=[hopeless.name], execution="serial")
        with pytest.raises(TransientError):
            service.evaluate_suite(SUITE)

    def test_threaded_raise_mode_keeps_completed_points(self, temporary_backend):
        # The flush contract: a mid-sweep failure under on_error="raise"
        # must not lose the points that completed before it propagated.
        class OnePointFails:
            def predict(self, scenario):
                if scenario.num_nodes == 4:
                    raise ValueError("induced terminal failure")
                return _result_for(type(self).name, scenario)

        partial = temporary_backend("partial-stub", OnePointFails)
        service = PredictionService(backends=[partial.name], execution="thread")
        with pytest.raises(ValueError):
            service.evaluate_suite(SUITE)
        assert service.stats().evaluations == 3  # the other points landed
        assert service.cache_size() == 3


class TestBreakerIntegration:
    POLICY = BreakerPolicy(
        failure_threshold=1.0, window=4, min_calls=2, cooldown_seconds=1000.0
    )

    def test_persistent_failure_trips_and_fails_fast(self, temporary_backend):
        hopeless = temporary_backend("breaker-stub", _flaky_backend_class(99))
        service = PredictionService(
            backends=[hopeless.name],
            execution="serial",
            breaker=self.POLICY,
            on_error="record",
        )
        suite = ScenarioSuite.from_sweep(
            "breaker-grid", SMALL, num_nodes=[2, 3, 4, 5, 6, 7]
        )
        result = service.evaluate_suite(suite)
        error_types = [failed.error_type for _, _, failed in result.failures()]
        assert len(error_types) == 6
        assert error_types[:2] == ["TransientError", "TransientError"]
        assert set(error_types[2:]) == {"CircuitOpenError"}
        # The breaker absorbed the calls: the backend saw only the first two.
        assert sum(hopeless.calls.values()) == 2
        stats = service.stats()
        assert stats.breaker_trips == 1
        snapshot = service.breakers()[hopeless.name]
        assert snapshot.state == BREAKER_OPEN
        assert snapshot.rejections == 4

    def test_healthy_backend_keeps_its_breaker_closed(self):
        # batch=False forces the scalar path, which is what breakers guard.
        service = PredictionService(backends=["aria"], breaker=self.POLICY, batch=False)
        service.evaluate_suite(SUITE, ["aria"])
        assert service.breakers()["aria"].state == BREAKER_CLOSED
        assert service.stats().breaker_trips == 0

    def test_no_policy_means_no_breakers(self):
        service = PredictionService(backends=["aria"])
        service.evaluate(SMALL, "aria")
        assert service.breakers() == {}


class TestBatchFallback:
    def test_failed_batch_dispatch_degrades_to_scalar(self, temporary_backend):
        class BrokenBatch:
            def predict(self, scenario):
                return _result_for(type(self).name, scenario)

            def predict_batch(self, scenarios):
                raise TransientError("batch lane is down")

        backend = temporary_backend("broken-batch-stub", BrokenBatch)
        service = PredictionService(backends=[backend.name], execution="serial")
        result = service.evaluate_suite(SUITE)
        assert result.complete
        assert result.series(backend.name) == [2.0, 3.0, 4.0, 5.0]
        stats = service.stats()
        assert stats.batch_fallbacks == 1
        assert stats.batch_calls == 0
        assert stats.evaluations == 4


class TestServiceStatsDelta:
    def test_delta_subtracts_every_counter(self):
        before = ServiceStats(evaluations=2, retries=1)
        after = ServiceStats(evaluations=5, retries=4, timeouts=2)
        delta = after.delta(before)
        assert delta.evaluations == 3
        assert delta.retries == 3
        assert delta.timeouts == 2
        assert delta.memory_hits == 0
